#!/usr/bin/env python3
"""Smart spaces: the paper's other PeerHood applications (§4.4).

One simulated building, three PeerHood applications sharing the same
middleware instance per device:

* **Access control** — Alice's PTD unlocks the lab door; Mallory's
  is refused and audited.
* **Guidance** — a visitor asks guidance points the way to the lab
  and follows the hops.
* **Fitness** — after work, Alice streams a workout to the gym's
  treadmill and gets instant analysed feedback.

Run:
    python examples/smart_spaces.py
"""

from __future__ import annotations

from repro.apps.access_control import AccessControlledDoor, DoorKeyClient
from repro.apps.fitness import FitnessDevice, FitnessTracker
from repro.apps.guidance import GuidancePoint, GuidanceRouter, Traveler
from repro.eval.testbed import Testbed
from repro.mobility import PathFollower, Point


def main() -> None:
    bed = Testbed(seed=44, technologies=("bluetooth",))

    print("== Installing the building's PeerHood devices ==")
    router = GuidanceRouter()
    for name, position in (("entrance", Point(100, 100)),
                           ("corridor", Point(106, 100)),
                           ("gym", Point(106, 94)),
                           ("lab", Point(112, 100))):
        router.add_place(name, position)
        GuidancePoint(bed.add_device(f"gp-{name}", position=position).library,
                      router, name)
    router.connect_places("entrance", "corridor")
    router.connect_places("corridor", "lab")
    router.connect_places("corridor", "gym")

    door = AccessControlledDoor(
        bed.add_device("lab-door", position=Point(111, 100)).library,
        "ComLab room 6604", authorized={"alice"})
    treadmill = FitnessDevice(
        bed.add_device("treadmill", position=Point(106, 93)).library,
        "treadmill #1")

    alice = bed.add_device("alice", position=Point(101, 100))
    mallory = bed.add_device("mallory", position=Point(105, 101))
    bed.run(40.0)

    print("\n== Guidance: Alice asks the way to the lab ==")
    traveler = Traveler(alice.library)
    reply = bed.execute(traveler.ask_route("lab"))
    print(f"  at {reply['here']!r}: go to {reply['next']!r} "
          f"(full path: {reply['path']})")
    while reply["here"] != "lab":
        target = Point(*reply["next_position"])
        node = bed.world.node("alice")
        node.model = PathFollower([node.position, target], speed=1.5)
        bed.run(30.0)
        reply = bed.execute(traveler.ask_route("lab"))
        print(f"  now at {reply['here']!r}, next: {reply['next']!r}")

    print("\n== Access control at the lab door ==")
    decision = bed.execute(DoorKeyClient(alice.library)
                           .request_access("lab-door"))
    print(f"  alice: granted={decision['granted']} ({decision['reason']})")
    decision = bed.execute(DoorKeyClient(mallory.library)
                           .request_access("lab-door"))
    print(f"  mallory: granted={decision['granted']} ({decision['reason']})")
    print("  door audit log:")
    for entry in door.log:
        verdict = "GRANTED" if entry.granted else "REFUSED"
        print(f"    t={entry.time:6.1f}s {entry.device_id:8s} {verdict}: "
              f"{entry.reason}")

    print("\n== Fitness: a workout at the gym ==")
    node = bed.world.node("alice")
    node.model = PathFollower([node.position, Point(106, 94)], speed=1.5)
    bed.run(40.0)
    tracker = FitnessTracker(alice.library)
    print(f"  visible equipment: {tracker.visible_equipment()}")
    feedback = bed.execute(tracker.workout(
        "treadmill",
        [[95.0, 105.0, 112.0], [128.0, 136.0, 140.0], [152.0, 158.0]]))
    for item in feedback:
        print(f"    {item.samples} samples, mean {item.mean_bpm:.0f} bpm "
              f"({item.zone}): {item.encouragement}")
    print(f"  treadmill analysed {treadmill.batches_analysed} batches")

    bed.stop()
    print(f"\nDone at t={bed.env.now:.0f} virtual seconds.")


if __name__ == "__main__":
    main()
