#!/usr/bin/env python3
"""The reference application's text interface (Figure 10).

Recreates the paper's main user screen as an interactive menu driving a
live simulated neighbourhood.  Non-interactive runs (CI, piping) can
pass choices on the command line.

Run:
    python examples/interactive_menu.py            # interactive
    python examples/interactive_menu.py 1 2 4 0    # scripted choices
"""

from __future__ import annotations

import sys

from repro.eval.testbed import Testbed

MENU = """\
*********** PeerHood Community ***********
 1. View All Members
 2. View All Groups
 3. View Members of a Group (football)
 4. View Member Profile (bob)
 5. View Interest List
 6. Comment Bob's Profile
 7. Send Message to Bob
 8. View Bob's Shared Content
 9. View Bob's Trusted Friends
 0. Log out and exit
******************************************"""


def build_world() -> tuple[Testbed, object]:
    bed = Testbed(seed=10)
    alice = bed.add_member("alice", ["football", "music"])
    bob = bed.add_member("bob", ["football", "movies"])
    bed.add_member("carol", ["music", "movies"])
    bob.app.accept_trusted("alice")
    bob.app.share_file("playlist.m3u", 12_000)
    bed.run(30.0)
    return bed, alice


def run_choice(bed: Testbed, alice, choice: str) -> bool:
    """Execute one menu entry; returns False on exit."""
    app = alice.app
    if choice == "1":
        members = bed.execute(app.view_all_members())
        print("Online members:", [m["member_id"] for m in members])
    elif choice == "2":
        print("Groups here:", app.groups())
    elif choice == "3":
        print("football group:", app.group_members("football"))
    elif choice == "4":
        profile = bed.execute(app.view_member_profile("bob"))
        if profile is None:
            print("No such member around.")
        else:
            print(f"Profile of {profile['full_name']}: "
                  f"interests={profile['interests']}, "
                  f"comments={profile['comments']}")
    elif choice == "5":
        print("Interests available:", bed.execute(app.view_interest_list()))
    elif choice == "6":
        print("Comment result:",
              bed.execute(app.comment_profile("bob", "Hello from the menu!")))
    elif choice == "7":
        print("Send status:",
              bed.execute(app.send_message("bob", "hi", "from the menu")))
    elif choice == "8":
        print("Shared content:", bed.execute(app.view_shared_content("bob")))
    elif choice == "9":
        print("Trusted friends:",
              bed.execute(app.view_trusted_friends("bob")))
    elif choice == "0":
        app.logout()
        print("Logged out successfully.")
        return False
    else:
        print(f"Unknown choice {choice!r}.")
    return True


def main() -> None:
    bed, alice = build_world()
    scripted = sys.argv[1:]
    print(f"Logged in as {alice.member_id!r}; "
          f"neighbourhood discovered after {bed.env.now:.0f} virtual s.\n")
    while True:
        print(MENU)
        if scripted:
            choice = scripted.pop(0)
            print(f"Select Your Choice: {choice}")
        else:
            try:
                choice = input("Select Your Choice: ").strip()
            except EOFError:
                choice = "0"
        if not run_choice(bed, alice, choice):
            break
        print()
    bed.stop()


if __name__ == "__main__":
    main()
