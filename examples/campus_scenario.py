#!/usr/bin/env python3
"""Campus scenario: an instant local community (§5.1).

Twenty-five students wander a 70 m x 70 m campus square under
random-waypoint mobility.  Dynamic group discovery keeps each student's
interest groups tracking whoever is currently in radio range; the
script samples group membership over time and prints churn statistics
(how often the football group changed, average group size, and each
group's peak).

Run:
    python examples/campus_scenario.py
"""

from __future__ import annotations

from repro.eval.testbed import Testbed
from repro.eval.workloads import INTEREST_POOL, random_interests
from repro.mobility.geometry import Rect
from repro.mobility.models import RandomWaypoint


def main() -> None:
    bounds = Rect(0.0, 0.0, 70.0, 70.0)
    bed = Testbed(seed=42, bounds=bounds, technologies=("bluetooth",),
                  scan_interval=5.0)
    rng = bed.env.random.stream("campus")

    print("== Populating the campus (25 students, random waypoint) ==")
    students = []
    for index in range(25):
        interests = random_interests(rng)
        position = bounds.random_point(rng)
        model = RandomWaypoint(bounds, bed.env.random.stream(f"walk{index}"),
                               min_speed=0.8, max_speed=1.6, max_pause=20.0)
        students.append(bed.add_member(f"student{index:02d}", interests,
                                       position=position, model=model))
    observer = students[0]
    print(f"observer: {observer.member_id}, "
          f"interests: {observer.app.profile.interests.as_list()}")

    print("\n== Simulating 10 minutes of campus life ==")
    samples: list[tuple[float, dict[str, int]]] = []
    changes = 0
    last_view: dict[str, tuple[str, ...]] = {}
    for _ in range(60):  # sample every 10 s for 600 s
        bed.run(10.0)
        view = {name: tuple(observer.app.group_members(name))
                for name in observer.app.groups()}
        if view != last_view:
            changes += 1
            last_view = view
        samples.append((bed.env.now,
                        {name: len(members) for name, members in view.items()}))

    print(f"group-composition changes seen by the observer: {changes}")
    peak: dict[str, int] = {}
    total: dict[str, list[int]] = {}
    for _, sizes in samples:
        for name, size in sizes.items():
            peak[name] = max(peak.get(name, 0), size)
            total.setdefault(name, []).append(size)
    print(f"\n{'group':14s} {'peak':>4s} {'mean size':>9s}")
    for name in sorted(peak):
        sizes = total[name]
        print(f"{name:14s} {peak[name]:4d} {sum(sizes) / len(sizes):9.1f}")

    print("\n== Final membership around the observer ==")
    for name in observer.app.my_groups():
        print(f"  {name}: {observer.app.group_members(name)}")

    # Sanity: every interest in play has been seen somewhere.
    assert set(peak) <= {interest for interest in INTEREST_POOL} | set(
        observer.app.profile.interests)
    bed.stop()
    print(f"\nDone at t={bed.env.now:.0f} virtual seconds.")


if __name__ == "__main__":
    main()
