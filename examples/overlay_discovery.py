#!/usr/bin/env python3
"""Overlay dynamic group discovery: beyond radio range (§6 future work).

A lecture hall laid out as a 3x4 grid of students, seats 8 m apart —
so Bluetooth (10 m) only reaches seat neighbours.  Single-hop dynamic
group discovery (the thesis' implementation) finds just the adjacent
sharers; the multi-hop overlay relays the same PS_GETINTERESTLIST
probes across seats and pulls the whole hall into one group, at a
measurable per-hop latency cost.

Run:
    python examples/overlay_discovery.py
"""

from __future__ import annotations

from repro.adhoc import NeighborGraph, OverlayGroupDiscovery, RelayNode
from repro.eval.testbed import Testbed
from repro.mobility import Point
from repro.radio.standards import BLUETOOTH


def main() -> None:
    bed = Testbed(seed=12, technologies=("bluetooth",))

    print("== Seating the lecture hall (3x4 grid, 8 m pitch) ==")
    members = []
    for row in range(3):
        for col in range(4):
            name = f"seat{row}{col}"
            interests = ["distributed systems"]
            if (row + col) % 2 == 0:
                interests.append("ice hockey")
            member = bed.add_member(name, interests,
                                    position=Point(60.0 + col * 8.0,
                                                   90.0 + row * 8.0))
            RelayNode(bed.env, member.device.stack, BLUETOOTH)
            members.append(member)
    observer = members[0]  # seat00, front corner
    bed.run(40.0)

    print("\n== Single-hop (the thesis' radio-range groups) ==")
    in_range = observer.app.group_members("distributed systems")
    print(f"  seat00's group: {in_range}")

    print("\n== Overlay discovery at increasing hop limits ==")
    graph = NeighborGraph(bed.medium, "bluetooth")
    print(f"  {'k':>2s} {'members':>8s} {'discovery (s)':>14s} "
          f"{'mean probe (s)':>15s}")
    for k in (1, 2, 3, 5):
        overlay = OverlayGroupDiscovery(bed.env, observer.device.stack,
                                        graph, BLUETOOTH,
                                        observer.app.store)
        start = bed.env.now
        bed.execute(overlay.discover(k=k), timeout=1200.0)
        elapsed = bed.env.now - start
        group = overlay.members_of("distributed systems")
        print(f"  {k:2d} {len(group):8d} {elapsed:14.2f} "
              f"{overlay.mean_probe_latency():15.3f}")

    print("\n== The full-hall group at k=5 ==")
    overlay = OverlayGroupDiscovery(bed.env, observer.device.stack, graph,
                                    BLUETOOTH, observer.app.store)
    bed.execute(overlay.discover(k=5), timeout=1200.0)
    print(f"  distributed systems: "
          f"{overlay.members_of('distributed systems')}")
    print(f"  ice hockey:          {overlay.members_of('ice hockey')}")

    bed.stop()
    print(f"\nDone at t={bed.env.now:.0f} virtual seconds.")


if __name__ == "__main__":
    main()
