#!/usr/bin/env python3
"""Bus ride: a mobile community with seamless connectivity (§5.1).

Four passengers ride a bus around town while a fifth member stays at
the bus stop.  Because the passengers move together, their groups
persist for the whole ride — the "instantaneous social network" of the
thesis — while the member left behind drops out of range.  Meanwhile a
supervised connection between two passengers demonstrates PeerHood's
seamless-connectivity handover when one passenger's Bluetooth radio is
switched off mid-ride and traffic migrates to WLAN.

Run:
    python examples/bus_ride.py
"""

from __future__ import annotations

from repro.eval.testbed import Testbed
from repro.mobility.geometry import Point, Rect
from repro.mobility.models import BusRoute
from repro.peerhood.seamless import SeamlessConnectivityManager


def main() -> None:
    bed = Testbed(seed=99, bounds=Rect(0, 0, 1500, 1500))
    route = [Point(100, 100), Point(1200, 100), Point(1200, 1200),
             Point(100, 1200)]

    print("== Boarding the bus ==")
    passengers = []
    for index, interests in enumerate((["travel", "music"],
                                       ["travel", "books"],
                                       ["travel", "music"],
                                       ["travel", "gaming"])):
        passengers.append(bed.add_member(
            f"rider{index}", interests,
            position=Point(100 + 2.0 * index, 100),
            model=BusRoute(route, speed=9.0)))
    stayer = bed.add_member("stayer", ["travel"], position=Point(100, 106))

    print("== At the stop: everyone is one community ==")
    bed.run(40.0)
    print(f"  travel group at the stop: "
          f"{passengers[0].app.group_members('travel')}")

    print("\n== Supervising a passenger-to-passenger connection ==")
    manager = SeamlessConnectivityManager(passengers[0].device.daemon)
    bed.execute(passengers[0].app.view_all_members())
    connection = passengers[0].app.pool.connection_to("rider1")
    manager.supervise(connection)
    print(f"  rider0->rider1 over {connection.technology.name}")

    print("\n== The bus drives off (3 minutes) ==")
    bed.run(180.0)
    onboard = passengers[0].app.group_members("travel")
    print(f"  travel group on the moving bus: {onboard}")
    assert "stayer" not in onboard, "the stayer should have dropped out"
    print(f"  stayer's groups now: {stayer.groups()}")

    print("\n== rider1's Bluetooth dies; seamless handover to WLAN ==")
    bed.medium.adapter("rider1", "bluetooth").enabled = False
    bed.run(30.0)
    print(f"  rider0->rider1 now over {connection.technology.name} "
          f"(closed={connection.closed})")
    for record in manager.history:
        outcome = "ok" if record.succeeded else "failed"
        print(f"  handover at t={record.time:.0f}s: "
              f"{record.from_technology} -> {record.to_technology} "
              f"({record.reason}, {outcome})")

    status = bed.execute(passengers[0].app.send_message(
        "rider1", "next stop", "Shall we get off at the square?"))
    print(f"\n  message across the migrated link: {status}")

    bed.stop()
    print(f"\nDone at t={bed.env.now:.0f} virtual seconds.")


if __name__ == "__main__":
    main()
