#!/usr/bin/env python3
"""Quickstart: three phones meet, groups form, people interact.

Builds a Bluetooth+WLAN neighbourhood of three members, lets PeerHood
discover devices and services, watches dynamic group discovery form
interest groups, then exercises the headline social operations
(member list, profile view, comment, trust-gated file sharing,
messaging).

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro.eval.testbed import Testbed


def main() -> None:
    bed = Testbed(seed=7)

    print("== Setting up the neighbourhood ==")
    alice = bed.add_member("alice", interests=["football", "music"])
    bob = bed.add_member("bob", interests=["football", "movies"])
    carol = bed.add_member("carol", interests=["music", "movies"])
    print("devices: alice, bob, carol (all within Bluetooth range)")

    print("\n== Letting PeerHood discover (30 virtual seconds) ==")
    bed.run(30.0)
    for member in (alice, bob, carol):
        print(f"  {member.member_id} is in groups: {member.groups()}")

    print("\n== Dynamic groups (no search, no join step) ==")
    print(f"  football: {alice.app.group_members('football')}")
    print(f"  music:    {alice.app.group_members('music')}")
    print(f"  movies:   {bob.app.group_members('movies')}")

    print("\n== Social operations over the PS_* protocol ==")
    members = bed.execute(alice.app.view_all_members())
    print(f"  alice's member list: {[m['member_id'] for m in members]}")

    profile = bed.execute(alice.app.view_member_profile("bob"))
    print(f"  bob's profile: name={profile['full_name']!r}, "
          f"interests={profile['interests']}")

    bed.execute(alice.app.comment_profile("bob", "Nice to meet you!"))
    print(f"  bob's comments now: "
          f"{[(c.author, c.text) for c in bob.app.profile.comments]}")

    print("\n== Trust-gated file sharing ==")
    bob.app.share_file("match_highlights.mp4", 2_500_000)
    denied = bed.execute(carol.app.view_shared_content("bob"))
    print(f"  carol (not trusted) gets: {denied}")
    bob.app.accept_trusted("alice")
    files = bed.execute(alice.app.view_shared_content("bob"))
    print(f"  alice (trusted) gets: {files}")

    print("\n== Messaging ==")
    status = bed.execute(alice.app.send_message(
        "bob", "tickets", "I have a spare ticket for Saturday."))
    print(f"  send status: {status}")
    print(f"  bob's inbox: "
          f"{[(m.sender, m.subject) for m in bob.app.profile.inbox]}")

    bed.stop()
    print(f"\nDone at t={bed.env.now:.1f} virtual seconds.")


if __name__ == "__main__":
    main()
