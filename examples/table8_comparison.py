#!/usr/bin/env python3
"""Reproduce the paper's Table 8 and print it beside the original.

The headline experiment: searching, joining and browsing an interest
group through Facebook/Hi5 on 2008 Nokia handsets versus the PeerHood
Community reference application over Bluetooth.

Run:
    python examples/table8_comparison.py [trials]
"""

from __future__ import annotations

import sys

from repro.eval.table8 import PAPER_TABLE8, format_table8, run_table8


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    print(f"Measuring all five Table 8 columns ({trials} trials each)...\n")
    measured = run_table8(seed=0, trials=trials)
    print(format_table8(measured))

    phc = measured["PeerHood Community"]
    slowest = max((times.total_s, column) for column, times in measured.items()
                  if column != "PeerHood Community")
    print(f"\nPeerHood Community total: {phc.total_s:.0f} s "
          f"(paper: {PAPER_TABLE8['PeerHood Community'].total_s:.0f} s)")
    print(f"Slowest SNS column: {slowest[1]} at {slowest[0]:.0f} s "
          f"-> PeerHood is {slowest[0] / phc.total_s:.1f}x faster")
    print("Join time is zero by construction: dynamic group discovery has "
          "already formed the group before the user asks.")


if __name__ == "__main__":
    main()
