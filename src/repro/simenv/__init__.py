"""Discrete-event simulation kernel.

This package provides the virtual-time substrate every other subsystem
runs on: a simulation clock, an event queue, generator-based processes,
signals, timers and deterministic per-stream randomness.

The design is a deliberately small, explicit simpy-like kernel:

* :class:`~repro.simenv.environment.Environment` owns the clock, the
  event queue and the root random seed.
* Plain callbacks are scheduled with ``env.call_at`` / ``env.call_in``.
* Long-running behaviours (discovery loops, mobility, servers) are
  generator *processes* started with ``env.spawn`` that ``yield``
  :class:`~repro.simenv.process.Delay`,
  :class:`~repro.simenv.process.WaitSignal` or another process.

All time values are floats in **seconds** of virtual time.
"""

from repro.simenv.clock import SimClock
from repro.simenv.environment import Environment, SimulationError
from repro.simenv.events import Event, EventQueue
from repro.simenv.process import Delay, Process, ProcessKilled, WaitProcess, WaitSignal
from repro.simenv.rng import RandomStreams
from repro.simenv.signal import Signal
from repro.simenv.timers import PeriodicTimer

__all__ = [
    "Delay",
    "Environment",
    "Event",
    "EventQueue",
    "PeriodicTimer",
    "Process",
    "ProcessKilled",
    "RandomStreams",
    "Signal",
    "SimClock",
    "SimulationError",
    "WaitProcess",
    "WaitSignal",
]
