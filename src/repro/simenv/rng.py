"""Deterministic named random streams.

Every stochastic subsystem (mobility, radio timing, the SNS human
model...) draws from its *own* named stream derived from the root seed.
Independent streams keep subsystems reproducible in isolation: adding a
new consumer of randomness in one subsystem does not perturb another
subsystem's draws, so recorded traces and calibrated benches stay
stable.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """Factory of named, seed-derived ``random.Random`` instances."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """Root seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a stable hash of ``(root seed, name)`` so
        the mapping is identical across processes and Python versions.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> RandomStreams:
        """Derive a child factory, e.g. one per simulated device."""
        digest = hashlib.sha256(f"{self._seed}/{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
