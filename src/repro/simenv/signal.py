"""One-shot and broadcast signals for process synchronisation."""

from __future__ import annotations

from collections.abc import Callable
from typing import Any


class Signal:
    """A fire-once signal that processes can wait on.

    A :class:`Signal` carries an optional value.  Waiters registered
    before :meth:`fire` are called when it fires; waiters registered
    after it has fired are called immediately with the stored value.
    This "sticky" behaviour removes an entire class of races between a
    connection completing and a process starting to wait for it.
    """

    __slots__ = ("name", "_fired", "_value", "_waiters")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._fired = False
        self._value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        """Whether :meth:`fire` has been called."""
        return self._fired

    @property
    def value(self) -> Any:
        """Value passed to :meth:`fire` (``None`` before firing)."""
        return self._value

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the signal fires."""
        if self._fired:
            callback(self._value)
        else:
            self._waiters.append(callback)

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking all current waiters.

        Raises:
            RuntimeError: If the signal already fired; signals are
                one-shot by design.
        """
        if self._fired:
            raise RuntimeError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(value)

    def __repr__(self) -> str:
        state = "fired" if self._fired else f"{len(self._waiters)} waiter(s)"
        return f"Signal({self.name!r}, {state})"
