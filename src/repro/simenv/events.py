"""Event queue for the discrete-event kernel.

Events are ordered by ``(time, sequence)``.  The sequence number makes
ordering of simultaneous events deterministic: events scheduled earlier
fire earlier.  Determinism matters because the MSC reproduction tests
assert exact message orders.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: Virtual time at which the callback fires.
        sequence: Tie-breaker preserving scheduling order at equal times.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Cancelled events stay in the heap but are skipped.
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it (O(1); lazy deletion)."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at virtual ``time`` and return the event."""
        event = Event(time=time, sequence=self._sequence, callback=callback)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            IndexError: If the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise IndexError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
