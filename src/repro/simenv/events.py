"""Event queue for the discrete-event kernel.

Events are ordered by ``(time, sequence)``.  The sequence number makes
ordering of simultaneous events deterministic: events scheduled earlier
fire earlier.  Determinism matters because the MSC reproduction tests
assert exact message orders.

The heap stores bare ``(time, sequence, event)`` tuples so ordering
uses CPython's C-level tuple comparison; profiling showed the
dataclass-generated ``__lt__`` of an event object dominating kernel
time at 64-device scale.  Cancelled events are lazily deleted, with a
compaction pass once dead entries outnumber live ones, so a workload
that cancels heavily (retry timers, rediscovery probes) cannot grow
the heap without bound.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any

#: Process-wide count of fired events, summed over every queue ever
#: created.  The wall-clock bench harness reads deltas of this to
#: attribute event throughput to scenarios that build several
#: environments internally (Table 8, chaos replay).
events_popped_global = 0

#: Compaction triggers once at least this many cancelled entries are
#: buried in the heap *and* they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 64


class Event:
    """A single scheduled callback.

    Attributes:
        time: Virtual time at which the callback fires.
        sequence: Tie-breaker preserving scheduling order at equal times.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Cancelled events stay in the heap but are skipped.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled", "_queue")

    def __init__(self, time: float, sequence: int,
                 callback: Callable[[], Any]) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self._queue: EventQueue | None = None

    def cancel(self) -> None:
        """Mark the event so the loop skips it (O(1); lazy deletion)."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._note_cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.sequence}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._cancelled = 0
        #: Live events fired so far (cancelled pops excluded) — the
        #: denominator for wall-clock events/sec benchmarks.
        self.popped_total = 0

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def __bool__(self) -> bool:
        return len(self._heap) > self._cancelled

    def push(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at virtual ``time`` and return the event."""
        event = Event(time, self._sequence, callback)
        event._queue = self
        heapq.heappush(self._heap, (time, self._sequence, event))
        self._sequence += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            IndexError: If the queue holds no live events.
        """
        global events_popped_global
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                self.popped_total += 1
                events_popped_global += 1
                return event
            self._cancelled -= 1
        raise IndexError("pop from empty event queue")

    def pop_before(self, until: float | None) -> Event | None:
        """Pop the earliest live event at or before ``until``.

        Fused peek+pop for the environment's run loop: one heap scan
        per fired event instead of two.  Returns ``None`` when the
        queue is empty or the earliest live event lies beyond
        ``until`` (which is left in place).
        """
        global events_popped_global
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        if not heap or (until is not None and heap[0][0] > until):
            return None
        event = heapq.heappop(heap)[2]
        self.popped_total += 1
        events_popped_global += 1
        return event

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or ``None`` when empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        if not heap:
            return None
        return heap[0][0]

    def _note_cancel(self) -> None:
        """Account one lazy deletion; compact when the dead dominate."""
        self._cancelled += 1
        if (self._cancelled >= _COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (O(live))."""
        self._heap = [entry for entry in self._heap
                      if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
