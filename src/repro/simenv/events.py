"""Event queue for the discrete-event kernel.

Events are ordered by ``(time, sequence)``.  The sequence number makes
ordering of simultaneous events deterministic: events scheduled earlier
fire earlier.  Determinism matters because the MSC reproduction tests
assert exact message orders.

The queue is a *calendar queue*: virtual time is cut into fixed-width
buckets.  Only the earliest non-empty bucket (the "current" bucket) is
kept as a real binary heap of bare ``(time, sequence, event)`` tuples —
ordering uses CPython's C-level tuple comparison, and heap discipline
is only paid where it buys anything.  Later buckets are plain unsorted
lists: scheduling into the future is a single ``append`` instead of an
O(log n) sift, and a bucket is heapified once, when the clock reaches
it.  A side min-heap of bucket indexes finds the next non-empty bucket
in O(log buckets).

Two allocation disciplines keep the steady state churn-free (see
DESIGN.md §10): cancelled events are lazily deleted with per-bucket
dead counters and per-bucket compaction (a cancel-heavy workload —
retry timers, rediscovery probes — cannot grow any bucket without
bound), and fired events are recycled through a free list when the
run loop proves no one else holds a handle, so steady-state scheduling
reuses ``__slots__``-packed objects instead of allocating.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from collections.abc import Callable
from typing import Any

#: Process-wide count of fired events, summed over every queue ever
#: created.  The wall-clock bench harness reads deltas of this to
#: attribute event throughput to scenarios that build several
#: environments internally (Table 8, chaos replay).
events_popped_global = 0

#: Compaction triggers once at least this many cancelled entries are
#: buried in a bucket *and* they outnumber the live ones there.
_COMPACT_MIN_CANCELLED = 64

#: Seconds of virtual time per calendar bucket.  Scheduling less than
#: one bucket ahead degenerates to the classic single-heap behaviour;
#: anything further is an O(1) append.  Sized so periodic second-scale
#: work (discovery scans, retry backoff) lands past the current bucket.
DEFAULT_BUCKET_WIDTH = 0.5

#: Free-list cap: bounds how many fired events are kept for reuse.
_FREE_LIST_MAX = 2048


def _no_callback() -> None:  # pragma: no cover - never scheduled
    raise AssertionError("recycled event fired")


class Event:
    """A single scheduled callback.

    Attributes:
        time: Virtual time at which the callback fires.
        sequence: Tie-breaker preserving scheduling order at equal times.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Cancelled events stay queued but are skipped.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled", "_queue",
                 "_bucket")

    def __init__(self, time: float, sequence: int,
                 callback: Callable[[], Any]) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self._queue: EventQueue | None = None
        #: Calendar bucket index at scheduling time.  Compared against
        #: the queue's current index to attribute a lazy cancel to the
        #: right dead counter; promotion moves events without touching
        #: this (the comparison stays correct because the current index
        #: only grows).
        self._bucket = 0

    def cancel(self) -> None:
        """Mark the event so the loop skips it (O(1); lazy deletion)."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._note_cancel(self)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.sequence}, {state})"


class EventQueue:
    """Calendar queue of :class:`Event` with deterministic tie-breaking.

    Invariant: every entry in a future bucket has a strictly later
    bucket index than ``_current_index``, and bucket boundaries respect
    time order, so the current heap's minimum is always the global
    minimum.  Late schedules that land at or before the current bucket
    are heap-pushed into it directly, preserving the invariant.
    """

    def __init__(self, bucket_width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive: {bucket_width!r}")
        self._inv_width = 1.0 / bucket_width
        #: The earliest bucket, kept heapified.
        self._current: list[tuple[float, int, Event]] = []
        self._current_index = 0
        #: Later buckets, unsorted; heapified on promotion.
        self._future: dict[int, list[tuple[float, int, Event]]] = {}
        #: Min-heap of future bucket indexes (may hold stale duplicates;
        #: promotion skips indexes no longer present in ``_future``).
        self._bucket_heap: list[int] = []
        #: Cancelled-but-present counts: current bucket / per future bucket.
        self._cancelled = 0
        self._dead: dict[int, int] = {}
        self._sequence = 0
        self._live = 0
        self._free: list[Event] = []
        #: Live events fired so far (cancelled pops excluded) — the
        #: denominator for wall-clock events/sec benchmarks.
        self.popped_total = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at virtual ``time`` and return the event."""
        sequence = self._sequence
        self._sequence = sequence + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.sequence = sequence
            event.callback = callback
            event.cancelled = False
        else:
            event = Event(time, sequence, callback)
        event._queue = self
        index = int(time * self._inv_width)
        event._bucket = index
        self._live += 1
        if index <= self._current_index:
            heappush(self._current, (time, sequence, event))
        else:
            bucket = self._future.get(index)
            if bucket is None:
                self._future[index] = [(time, sequence, event)]
                heappush(self._bucket_heap, index)
            else:
                bucket.append((time, sequence, event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            IndexError: If the queue holds no live events.
        """
        event = self.pop_before(None)
        if event is None:
            raise IndexError("pop from empty event queue")
        return event

    def pop_before(self, until: float | None) -> Event | None:
        """Pop the earliest live event at or before ``until``.

        Fused peek+pop for the environment's run loop: one scan per
        fired event instead of two.  Returns ``None`` when the queue is
        empty or the earliest live event lies beyond ``until`` (which
        is left in place).
        """
        global events_popped_global
        heap = self._current
        while True:
            while heap:
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    heappop(heap)
                    self._cancelled -= 1
                    continue
                if until is not None and entry[0] > until:
                    return None
                heappop(heap)
                # Detach before firing: a cancel() on an already-popped
                # handle must not corrupt the dead counters, and a
                # recycled event must not pin its old queue.
                event._queue = None
                self._live -= 1
                self.popped_total += 1
                events_popped_global += 1
                return event
            if not self._promote():
                return None
            heap = self._current

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or ``None`` when empty."""
        heap = self._current
        while True:
            while heap and heap[0][2].cancelled:
                heappop(heap)
                self._cancelled -= 1
            if heap:
                return heap[0][0]
            if not self._promote():
                return None
            heap = self._current

    def release(self, event: Event) -> None:
        """Offer a fired event back to the free list.

        Only the run loop calls this, and only after proving (by
        refcount) that no other handle to the event survives — a stale
        handle could otherwise cancel a recycled event's *next*
        incarnation.
        """
        free = self._free
        if len(free) < _FREE_LIST_MAX:
            event.callback = _no_callback
            free.append(event)

    # -- internals ---------------------------------------------------------

    def _promote(self) -> bool:
        """Move the earliest future bucket into the current heap."""
        bucket_heap = self._bucket_heap
        future = self._future
        while bucket_heap:
            index = heappop(bucket_heap)
            bucket = future.pop(index, None)
            if bucket is None:
                continue  # stale duplicate or compacted-away bucket
            heapify(bucket)
            self._current = bucket
            self._current_index = index
            self._cancelled = self._dead.pop(index, 0)
            return True
        return False

    def _note_cancel(self, event: Event) -> None:
        """Account one lazy deletion; compact when the dead dominate."""
        self._live -= 1
        index = event._bucket
        if index > self._current_index:
            dead = self._dead
            count = dead.get(index, 0) + 1
            bucket = self._future[index]
            if (count >= _COMPACT_MIN_CANCELLED
                    and count * 2 > len(bucket)):
                alive = [entry for entry in bucket
                         if not entry[2].cancelled]
                if alive:
                    self._future[index] = alive
                    dead[index] = 0
                else:
                    # The stale index stays in _bucket_heap; promotion
                    # skips it once _future no longer holds it.
                    del self._future[index]
                    dead.pop(index, None)
            else:
                dead[index] = count
        else:
            count = self._cancelled + 1
            if (count >= _COMPACT_MIN_CANCELLED
                    and count * 2 > len(self._current)):
                self._current = [entry for entry in self._current
                                 if not entry[2].cancelled]
                heapify(self._current)
                self._cancelled = 0
            else:
                self._cancelled = count
