"""Generator-based simulation processes.

A process is a Python generator driven by the environment.  Each
``yield`` suspends the process until the yielded condition is met:

* ``yield Delay(seconds)`` — resume after virtual time passes.
* ``yield WaitSignal(signal)`` — resume when the signal fires; the
  signal's value becomes the result of the ``yield`` expression.
* ``yield WaitProcess(process)`` or ``yield process`` — resume when the
  child process finishes; its return value becomes the ``yield`` result.
  If the child failed, its exception is re-raised inside the waiter.

Processes return values with a plain ``return`` statement and propagate
exceptions to waiters, so simulation code reads like straight-line
code.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any

from repro.simenv.signal import Signal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simenv.environment import Environment

# The three yieldable wrappers are plain __slots__ classes: one is
# built per yield on the kernel's hottest path, where the frozen
# dataclasses they used to be pay object.__setattr__ per field.


class Delay:
    """Suspend the yielding process for ``seconds`` of virtual time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"delay must be non-negative, got {seconds!r}")
        self.seconds = seconds

    def __repr__(self) -> str:
        return f"Delay({self.seconds!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Delay) and other.seconds == self.seconds

    def __hash__(self) -> int:
        return hash((Delay, self.seconds))


class WaitSignal:
    """Suspend the yielding process until ``signal`` fires."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal) -> None:
        self.signal = signal

    def __repr__(self) -> str:
        return f"WaitSignal({self.signal!r})"


class WaitProcess:
    """Suspend the yielding process until ``process`` completes."""

    __slots__ = ("process",)

    def __init__(self, process: Process) -> None:
        self.process = process

    def __repr__(self) -> str:
        return f"WaitProcess({self.process!r})"


class ProcessKilled(Exception):
    """Raised inside a generator when its process is killed."""


class Process:
    """A running simulation process wrapping a generator."""

    __slots__ = ("_env", "_generator", "name", "_done", "_result",
                 "_exception", "_alive")

    def __init__(self, env: Environment, generator: Generator, name: str = "") -> None:
        self._env = env
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # The completion signal is built lazily: most processes (every
        # service query, probe and serve) finish with nobody waiting,
        # and tens of thousands of spawns per discovery round made the
        # eager Signal a measurable kernel cost.
        self._done: Signal | None = None
        self._result: Any = None
        self._exception: BaseException | None = None
        self._alive = True

    @property
    def done(self) -> Signal:
        """Signal fired with the process result when it finishes."""
        if self._done is None:
            self._done = Signal(f"{self.name}.done")
            if not self._alive:
                self._done.fire(self._result)
        return self._done

    @property
    def alive(self) -> bool:
        """Whether the process is still running."""
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator (valid once finished).

        Raises:
            RuntimeError: If the process has not finished.
            BaseException: The process' own exception if it failed.
        """
        if self._alive:
            raise RuntimeError(f"process {self.name!r} still running")
        if self._exception is not None:
            raise self._exception
        return self._result

    def kill(self) -> None:
        """Throw :class:`ProcessKilled` into the generator."""
        if not self._alive:
            return
        try:
            self._generator.throw(ProcessKilled())
        except (ProcessKilled, StopIteration):
            self._finish(None, None)
        except BaseException as exc:  # generator handled kill then failed
            self._finish(None, exc)
        else:
            # Generator swallowed the kill and yielded again; that is a
            # programming error in the generator.
            self._finish(None, RuntimeError(f"process {self.name!r} ignored kill"))

    # -- kernel interface ------------------------------------------------

    def _start(self) -> None:
        self._resume_with(None)

    def _step(self, advance: Any) -> None:
        """Advance the generator once and interpret what it yields."""
        if not self._alive or self._generator.gi_running:
            # gi_running: the resume arrived from *inside* the
            # generator's own execution — e.g. its finally clause (run
            # by close() during teardown) closed a connection whose
            # error path fires the signal this very process waits on.
            # Sending into a running generator is a ValueError; the
            # process is tearing down, so drop the resume.
            return
        try:
            yielded = advance()
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except ProcessKilled:
            self._finish(None, None)
            return
        except BaseException as exc:
            self._finish(None, exc)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if type(yielded) is Delay:
            # Most yields are Delays: push straight onto the queue
            # (the delay is validated non-negative by Delay.__init__)
            # instead of building a partial through ``call_in``.
            env = self._env
            env.queue.push(env.clock.now + yielded.seconds,
                           self._resume_none)
        elif isinstance(yielded, WaitSignal):
            yielded.signal.wait(self._resume_with)
        elif isinstance(yielded, (WaitProcess, Process)):
            child = yielded.process if isinstance(yielded, WaitProcess) else yielded
            child.done.wait(lambda _value: self._resume_after(child))
        else:
            self._step(
                lambda: self._generator.throw(
                    TypeError(f"process {self.name!r} yielded {yielded!r}")
                )
            )

    def _resume_none(self) -> None:
        self._resume_with(None)

    def _resume_with(self, value: Any) -> None:
        # The kernel's hottest path (every Delay/Signal resume lands
        # here): advance the generator directly instead of routing a
        # fresh closure through ``_step``.  The gi_running guard
        # mirrors ``_step``: never send into a generator mid-teardown.
        if not self._alive or self._generator.gi_running:
            return
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except ProcessKilled:
            self._finish(None, None)
            return
        except BaseException as exc:
            self._finish(None, exc)
            return
        self._wait_on(yielded)

    def _resume_after(self, child: Process) -> None:
        if child._exception is not None:
            exc = child._exception
            self._step(lambda: self._generator.throw(exc))
        else:
            self._step(lambda: self._generator.send(child._result))

    def _finish(self, result: Any, exception: BaseException | None) -> None:
        self._alive = False
        self._result = result
        self._exception = exception
        self._generator.close()
        if exception is not None and (self._done is None
                                      or not self._done._waiters):
            self._env._note_failure(self, exception)
        if self._done is not None:
            self._done.fire(result)

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"Process({self.name!r}, {state})"
