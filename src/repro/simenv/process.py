"""Generator-based simulation processes.

A process is a Python generator driven by the environment.  Each
``yield`` suspends the process until the yielded condition is met:

* ``yield Delay(seconds)`` — resume after virtual time passes.
* ``yield WaitSignal(signal)`` — resume when the signal fires; the
  signal's value becomes the result of the ``yield`` expression.
* ``yield WaitProcess(process)`` or ``yield process`` — resume when the
  child process finishes; its return value becomes the ``yield`` result.
  If the child failed, its exception is re-raised inside the waiter.

Processes return values with a plain ``return`` statement and propagate
exceptions to waiters, so simulation code reads like straight-line
code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.simenv.signal import Signal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simenv.environment import Environment


@dataclass(frozen=True)
class Delay:
    """Suspend the yielding process for ``seconds`` of virtual time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"delay must be non-negative, got {self.seconds!r}")


@dataclass(frozen=True)
class WaitSignal:
    """Suspend the yielding process until ``signal`` fires."""

    signal: Signal


@dataclass(frozen=True)
class WaitProcess:
    """Suspend the yielding process until ``process`` completes."""

    process: "Process"


class ProcessKilled(Exception):
    """Raised inside a generator when its process is killed."""


class Process:
    """A running simulation process wrapping a generator."""

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        self._env = env
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = Signal(f"{self.name}.done")
        self._result: Any = None
        self._exception: BaseException | None = None
        self._alive = True

    @property
    def alive(self) -> bool:
        """Whether the process is still running."""
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator (valid once finished).

        Raises:
            RuntimeError: If the process has not finished.
            BaseException: The process' own exception if it failed.
        """
        if self._alive:
            raise RuntimeError(f"process {self.name!r} still running")
        if self._exception is not None:
            raise self._exception
        return self._result

    def kill(self) -> None:
        """Throw :class:`ProcessKilled` into the generator."""
        if not self._alive:
            return
        try:
            self._generator.throw(ProcessKilled())
        except (ProcessKilled, StopIteration):
            self._finish(None, None)
        except BaseException as exc:  # generator handled kill then failed
            self._finish(None, exc)
        else:
            # Generator swallowed the kill and yielded again; that is a
            # programming error in the generator.
            self._finish(None, RuntimeError(f"process {self.name!r} ignored kill"))

    # -- kernel interface ------------------------------------------------

    def _start(self) -> None:
        self._step(lambda: self._generator.send(None))

    def _step(self, advance: Any) -> None:
        """Advance the generator once and interpret what it yields."""
        if not self._alive:
            return
        try:
            yielded = advance()
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except ProcessKilled:
            self._finish(None, None)
            return
        except BaseException as exc:
            self._finish(None, exc)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Delay):
            self._env.call_in(yielded.seconds, self._resume_with, None)
        elif isinstance(yielded, WaitSignal):
            yielded.signal.wait(self._resume_with)
        elif isinstance(yielded, (WaitProcess, Process)):
            child = yielded.process if isinstance(yielded, WaitProcess) else yielded
            child.done.wait(lambda _value: self._resume_after(child))
        else:
            self._step(
                lambda: self._generator.throw(
                    TypeError(f"process {self.name!r} yielded {yielded!r}")
                )
            )

    def _resume_with(self, value: Any) -> None:
        self._step(lambda: self._generator.send(value))

    def _resume_after(self, child: "Process") -> None:
        if child._exception is not None:
            exc = child._exception
            self._step(lambda: self._generator.throw(exc))
        else:
            self._step(lambda: self._generator.send(child._result))

    def _finish(self, result: Any, exception: BaseException | None) -> None:
        self._alive = False
        self._result = result
        self._exception = exception
        self._generator.close()
        if exception is not None and not self.done._waiters:
            self._env._note_failure(self, exception)
        self.done.fire(result)

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"Process({self.name!r}, {state})"
