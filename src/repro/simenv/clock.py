"""Virtual simulation clock.

The clock only ever moves forward, and only the event loop may advance
it.  Keeping it in its own object (rather than a float on the
environment) lets substrates hold a reference to the clock without
holding the whole environment.
"""

from __future__ import annotations


class SimClock:
    """Monotonic virtual clock measured in seconds.

    The clock starts at ``0.0``.  Advancing backwards raises
    ``ValueError`` — a simulation in which time regresses is always a
    kernel bug and should fail loudly.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock to ``when``.

        ``when`` may equal the current time (simultaneous events) but
        may never precede it.
        """
        if when < self._now:
            raise ValueError(
                f"cannot advance clock backwards: now={self._now!r}, target={when!r}"
            )
        self._now = float(when)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
