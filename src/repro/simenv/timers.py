"""Recurring timers built on the event queue."""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.simenv.environment import Environment
from repro.simenv.events import Event


class PeriodicTimer:
    """Calls ``callback()`` every ``interval`` seconds until stopped.

    Used by the PeerHood daemon for its discovery loops and by the
    mobility world for position updates.  Optional ``jitter`` draws a
    uniform offset in ``[-jitter, +jitter]`` from the named random
    stream so that many devices' timers do not fire in lockstep —
    matching how independent real daemons drift apart.
    """

    def __init__(
        self,
        env: Environment,
        interval: float,
        callback: Callable[[], Any],
        *,
        start_immediately: bool = False,
        jitter: float = 0.0,
        stream: str = "timer",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        if jitter < 0 or jitter >= interval:
            raise ValueError("jitter must satisfy 0 <= jitter < interval")
        self._env = env
        self._interval = interval
        self._callback = callback
        self._jitter = jitter
        self._stream = stream
        self._event: Event | None = None
        self._running = True
        self.fire_count = 0
        if start_immediately:
            self._event = env.call_in(0.0, self._fire)
        else:
            self._schedule_next()

    @property
    def running(self) -> bool:
        """Whether the timer will fire again."""
        return self._running

    @property
    def interval(self) -> float:
        """Seconds between firings (before jitter)."""
        return self._interval

    def stop(self) -> None:
        """Cancel the pending firing; the timer never fires again."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule_next(self) -> None:
        delay = self._interval
        if self._jitter:
            rng = self._env.random.stream(self._stream)
            delay += rng.uniform(-self._jitter, self._jitter)
        self._event = self._env.call_in(max(delay, 0.0), self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self.fire_count += 1
        self._callback()
        if self._running:
            self._schedule_next()
