"""The simulation environment: clock + event queue + processes + RNG."""

from __future__ import annotations

from functools import partial
from sys import getrefcount
from collections.abc import Callable, Generator
from typing import Any

from repro.simenv.clock import SimClock
from repro.simenv.events import Event, EventQueue
from repro.simenv.process import Process
from repro.simenv.rng import RandomStreams
from repro.simenv.signal import Signal


class SimulationError(RuntimeError):
    """Raised by :meth:`Environment.run` when an unobserved process failed."""


class Environment:
    """Owns virtual time and drives all scheduled work.

    Args:
        seed: Root seed for all named random streams.

    The environment is single-threaded and fully deterministic: two
    environments created with the same seed and fed the same schedule
    produce byte-identical traces.
    """

    def __init__(self, seed: int = 0) -> None:
        self.clock = SimClock()
        self.queue = EventQueue()
        self.random = RandomStreams(seed)
        self._failures: list[tuple[Process, BaseException]] = []

    # -- time --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Events fired since construction (wall-clock bench metric)."""
        return self.queue.popped_total

    # -- scheduling ----------------------------------------------------------

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self.clock.now:
            raise ValueError(f"cannot schedule in the past: "
                             f"now={self.clock.now}, when={when}")
        if args:
            callback = partial(callback, *args)
        return self.queue.push(when, callback)

    def call_in(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        if args:
            callback = partial(callback, *args)
        return self.queue.push(self.clock.now + delay, callback)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a generator process immediately (first step runs now)."""
        process = Process(self, generator, name=name)
        process._start()
        return process

    def spawn_at(self, when: float, generator: Generator, name: str = "") -> Process:
        """Create a process whose first step runs at virtual time ``when``."""
        process = Process(self, generator, name=name)
        self.call_at(when, process._start)
        return process

    def timeout_signal(self, delay: float, value: Any = None, name: str = "") -> Signal:
        """Return a signal that fires with ``value`` after ``delay`` seconds."""
        signal = Signal(name or f"timeout@{self.now + delay:.3f}")
        self.call_in(delay, signal.fire, value)
        return signal

    # -- running ---------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Run events until the queue empties or ``until`` is reached.

        Returns the virtual time at which the run stopped.  If any
        process died with an unobserved exception during the run, a
        :class:`SimulationError` chaining the first failure is raised —
        errors never pass silently.
        """
        self._raise_pending_failure()
        queue = self.queue
        clock = self.clock
        while True:
            event = queue.pop_before(until)
            if event is None:
                break
            clock.advance_to(event.time)
            event.callback()
            if self._failures:
                self._raise_pending_failure()
            # Recycle the fired event when nobody else holds a handle
            # (refcount 2 = the local + getrefcount's argument), so
            # steady-state scheduling stops allocating.
            if getrefcount(event) == 2:
                queue.release(event)
        if until is not None and clock.now < until:
            clock.advance_to(until)
        return clock.now

    def step(self) -> bool:
        """Execute exactly one event.  Returns ``False`` when idle."""
        self._raise_pending_failure()
        if not self.queue:
            return False
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        event.callback()
        self._raise_pending_failure()
        return True

    def _raise_pending_failure(self) -> None:
        if self._failures:
            process, exc = self._failures.pop(0)
            raise SimulationError(
                f"process {process.name!r} failed at t={self.now:.6f}: {exc!r}"
            ) from exc

    # -- kernel internals -----------------------------------------------------

    def _note_failure(self, process: Process, exception: BaseException) -> None:
        """Record a process failure nobody is waiting on (kernel use)."""
        self._failures.append((process, exception))

    def acknowledge_failure(self, process: Process) -> None:
        """Mark ``process``'s failure as observed by the caller.

        Harnesses that read ``process.result`` directly (and therefore
        re-raise the exception themselves) call this so the event loop
        does not raise :class:`SimulationError` for the same failure.
        """
        self._failures = [(failed, exc) for failed, exc in self._failures
                          if failed is not process]

    def __repr__(self) -> str:
        return f"Environment(now={self.now:.6f}, pending={len(self.queue)})"
