"""The centralized SNS server: pages over a database.

Every user action hits the central server ("users access the
centralized server through a web page", §3.2) and comes back as a
:class:`PageLoad` — the unit the access device turns into seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sns.database import SnsDatabase
from repro.sns.sites import SiteProfile


@dataclass(frozen=True)
class PageLoad:
    """One page served by the SNS.

    Attributes:
        description: What the page is (for workflow breakdowns).
        size_kb: Page weight.
        server_time_s: Server processing before first byte.
        cached: Whether the client has this page's assets cached.
        data: Content the workflow needs (search hits, member lists...).
    """

    description: str
    size_kb: float
    server_time_s: float
    cached: bool = False
    data: Any = None


class SnsServer:
    """One site's server: the four Table 8 flows as page sequences."""

    def __init__(self, site: SiteProfile, database: SnsDatabase) -> None:
        self.site = site
        self.database = database
        self.pages_served = 0

    def _page(self, description: str, size_kb: float, cached: bool = False,
              data: Any = None) -> PageLoad:
        self.pages_served += 1
        return PageLoad(description=description, size_kb=size_kb,
                        server_time_s=self.site.server_time_s,
                        cached=cached, data=data)

    # -- flows -------------------------------------------------------------

    def home_page(self) -> PageLoad:
        """The portal/login landing page (first visit: cold cache)."""
        return self._page("portal page", self.site.home_kb)

    def search_form(self) -> PageLoad:
        """The group-search entry page (assets now cached)."""
        return self._page("search form", self.site.search_form_kb, cached=True)

    def search(self, query: str) -> PageLoad:
        """Run a group search; data carries the result groups.

        Like the 2008 sites, a sparse result page is padded with
        related/popular groups up to the site's usual result count —
        the human scans the whole page either way.
        """
        limit = self.site.search_results
        hits = self.database.search_groups(query, limit=limit)
        if len(hits) < limit:
            for group in self.database.search_groups("", limit=limit * 2):
                if group not in hits:
                    hits.append(group)
                if len(hits) >= limit:
                    break
        return self._page(f"search results for {query!r}",
                          self.site.results_kb, cached=True, data=hits)

    def group_page(self, group_name: str) -> PageLoad:
        """A group's landing page."""
        group = self.database.group(group_name)
        return self._page(f"group page {group_name!r}",
                          self.site.group_page_kb, cached=True, data=group)

    def join_flow(self, group_name: str, user_id: str) -> list[PageLoad]:
        """The POST(s) that make ``user_id`` a member.

        Facebook 2008 needed one confirmation load; Hi5 two
        (:attr:`SiteProfile.join_pages`).
        """
        self.database.join_group(group_name, user_id)
        return [self._page(f"join confirmation {index + 1}",
                           self.site.join_confirm_kb, cached=True)
                for index in range(self.site.join_pages)]

    def members_page(self, group_name: str, page: int = 0) -> PageLoad:
        """One page of the group's member list."""
        members = self.database.members_of(group_name)
        per_page = self.site.members_per_page
        window = members[page * per_page:(page + 1) * per_page]
        return self._page(f"members of {group_name!r} page {page}",
                          self.site.members_page_kb, cached=True, data=window)

    def profile_page(self, user_id: str) -> PageLoad:
        """A member's profile page (Hi5's barely cache at all)."""
        user = self.database.user(user_id)
        return self._page(f"profile of {user_id!r}",
                          self.site.profile_page_kb,
                          cached=self.site.profile_cached, data=user)
