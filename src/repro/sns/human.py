"""The human driving a workflow.

The paper's Table 8 numbers are stopwatch times of a person performing
each task, so the human is part of the system under test.  This model
adds the person-dependent terms — thinking, typing, scanning lists —
with seeded jitter so repeated trials vary the way repeated manual
trials do.
"""

from __future__ import annotations

from random import Random


class HumanModel:
    """Seeded human-interaction timing.

    Args:
        rng: Random stream.
        speed: Multiplier on all times (1.0 = the average tester;
            smaller is faster).
        jitter: Relative spread of each action's duration.
    """

    def __init__(self, rng: Random, speed: float = 1.0,
                 jitter: float = 0.15) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed!r}")
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter!r}")
        self._rng = rng
        self.speed = speed
        self.jitter = jitter

    def _sample(self, mean: float) -> float:
        if mean <= 0:
            return 0.0
        spread = mean * self.jitter
        return max(0.0, self._rng.uniform(mean - spread, mean + spread)
                   * self.speed)

    def think(self, seconds: float = 1.5) -> float:
        """Decide what to do next."""
        return self._sample(seconds)

    def type_text(self, text: str, s_per_char: float) -> float:
        """Type ``text`` at the device's entry speed."""
        return self._sample(len(text) * s_per_char)

    def scan_list(self, items: int, s_per_item: float) -> float:
        """Read a list of ``items`` entries on the device's screen."""
        return self._sample(items * s_per_item)

    def navigate(self, nav_s: float) -> float:
        """Find and activate one link/button/menu entry."""
        return self._sample(nav_s)

    def read_page(self, seconds: float = 3.0) -> float:
        """Absorb a freshly loaded page before acting."""
        return self._sample(seconds)
