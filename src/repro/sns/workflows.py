"""The four Table 8 tasks, end to end, against a simulated SNS.

Each task returns the seconds a human on the given device needs,
combining page loads (network + render) with human actions (navigate,
type, scan, read).  The task boundaries follow the paper exactly:

1. **Group search** — from opening the site's search to having found
   the target group in the results.
2. **Group join** — open the group page and complete the join flow.
3. **View member list** — open the group's member list and scan it.
4. **View one member profile** — open one member's profile and read it.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.sns.devices import AccessDevice
from repro.sns.human import HumanModel
from repro.sns.server import PageLoad, SnsServer


@dataclass(frozen=True)
class TaskTimes:
    """Per-task seconds for one full workflow run (one Table 8 column)."""

    search_s: float
    join_s: float
    member_list_s: float
    profile_s: float

    @property
    def total_s(self) -> float:
        """Total time, as in Table 8's last row."""
        return self.search_s + self.join_s + self.member_list_s + self.profile_s


class SnsWorkflow:
    """Drives one (site, device, human) combination through the tasks."""

    def __init__(self, server: SnsServer, device: AccessDevice,
                 rng: Random, human_speed: float = 1.0) -> None:
        self.server = server
        self.device = device
        self.human = HumanModel(rng, speed=human_speed)
        self.page_log: list[tuple[str, float]] = []

    def _load(self, page: PageLoad) -> float:
        seconds = self.device.page_time(page.size_kb, page.server_time_s,
                                        page.cached)
        self.page_log.append((page.description, seconds))
        return seconds

    # -- tasks --------------------------------------------------------------

    def search_group(self, query: str) -> tuple[float, list]:
        """Task 1: find the interest group.  Returns (seconds, hits).

        Starts from a cold browser: portal/login page first (as the
        paper's testers did), then the search form, the typed query,
        the result page, and the scan for the target group.
        """
        human, device = self.human, self.device
        elapsed = self._load(self.server.home_page())
        elapsed += human.read_page(2.0)                   # orient on the portal
        elapsed += human.navigate(device.nav_s)           # to group search
        elapsed += self._load(self.server.search_form())
        elapsed += human.type_text(query, device.type_s_per_char)
        elapsed += human.think(1.0)                       # hit "search"
        results = self.server.search(query)
        elapsed += self._load(results)
        hits = results.data or []
        elapsed += human.scan_list(len(hits), device.scan_s_per_item)
        return elapsed, hits

    def join_group(self, group_name: str, user_id: str) -> float:
        """Task 2: join the found group."""
        human, device = self.human, self.device
        elapsed = human.navigate(device.nav_s)            # click the hit
        elapsed += self._load(self.server.group_page(group_name))
        elapsed += human.navigate(device.nav_s)           # find "join"
        for page in self.server.join_flow(group_name, user_id):
            elapsed += self._load(page)
            elapsed += human.think(1.0)
        return elapsed

    def view_member_list(self, group_name: str) -> tuple[float, list]:
        """Task 3: open and scan the group's member list."""
        human, device = self.human, self.device
        elapsed = human.navigate(device.nav_s)            # members tab
        page = self.server.members_page(group_name)
        elapsed += self._load(page)
        members = page.data or []
        elapsed += human.scan_list(len(members), device.scan_s_per_item)
        return elapsed, members

    def view_profile(self, user_id: str) -> float:
        """Task 4: open one member's profile and scroll through it."""
        human, device = self.human, self.device
        elapsed = human.navigate(device.nav_s)            # click the member
        elapsed += self._load(self.server.profile_page(user_id))
        elapsed += human.scan_list(self.server.site.profile_sections,
                                   device.scan_s_per_item)
        elapsed += human.read_page(2.0)
        return elapsed

    def run_table8_tasks(self, query: str, group_name: str,
                         user_id: str) -> TaskTimes:
        """All four tasks in the paper's order."""
        search_s, _ = self.search_group(query)
        join_s = self.join_group(group_name, user_id)
        member_list_s, members = self.view_member_list(group_name)
        target = members[0].user_id if members else user_id
        profile_s = self.view_profile(target)
        return TaskTimes(search_s, join_s, member_list_s, profile_s)
