"""Access-device profiles for the SNS workflows (Table 8's "Accessed
Through" row).

The paper used a Nokia N810 internet tablet (WLAN, larger touch screen,
stylus input) and a Nokia N95 smartphone (3G/HSDPA-era cellular, keypad
input, small screen).  A 2008 mobile page load is dominated by two
terms this profile captures: radio transfer (page bytes over the
device's effective bandwidth plus RTTs) and on-device rendering (the
OMAP/ARM11-class CPUs of these devices rendered big pages in tens of
seconds).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AccessDevice:
    """One handset accessing an SNS through a browser.

    Attributes:
        name: Device name as in Table 8.
        bandwidth_bps: Effective downstream bandwidth.
        rtt_s: Network round-trip time.
        round_trips_per_page: Request/redirect/asset RTTs per page.
        render_s_per_kb: On-device parse+layout+paint cost.
        cache_factor: Fraction of transfer+render paid on a repeat
            visit to same-site pages (CSS/JS already cached).
        type_s_per_char: Text-entry speed.
        scan_s_per_item: Time to read one result-list item on this
            screen size.
        nav_s: One UI navigation action (find and hit a link/button,
            including scrolling on small screens).
    """

    name: str
    bandwidth_bps: float
    rtt_s: float
    round_trips_per_page: int
    render_s_per_kb: float
    cache_factor: float
    type_s_per_char: float
    scan_s_per_item: float
    nav_s: float

    def page_time(self, size_kb: float, server_time_s: float,
                  cached: bool = False) -> float:
        """Seconds to fetch and render one page."""
        factor = self.cache_factor if cached else 1.0
        transfer = (size_kb * 1024.0 * 8.0 * factor) / self.bandwidth_bps
        render = size_kb * self.render_s_per_kb * factor
        return (self.rtt_s * self.round_trips_per_page
                + server_time_s + transfer + render)


#: Nokia N810 internet tablet on WLAN: fast network, slow-ish CPU,
#: comfortable stylus input on a 4.1" 800x480 screen.
NOKIA_N810 = AccessDevice(
    name="Nokia N810",
    bandwidth_bps=1_800_000.0,
    rtt_s=0.12,
    round_trips_per_page=4,
    render_s_per_kb=0.060,
    cache_factor=0.45,
    type_s_per_char=1.00,
    scan_s_per_item=0.15,
    nav_s=1.2,
)

#: Nokia N95 on 3.5G cellular: slower network, smaller screen (more
#: scrolling), T9 keypad typing.
NOKIA_N95 = AccessDevice(
    name="Nokia N95",
    bandwidth_bps=350_000.0,
    rtt_s=0.45,
    round_trips_per_page=4,
    render_s_per_kb=0.040,
    cache_factor=0.45,
    type_s_per_char=0.85,
    scan_s_per_item=1.24,
    nav_s=3.2,
)
