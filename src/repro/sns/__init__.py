"""Centralized social-networking-site baseline (Chapter 3, Table 8).

The paper measures Facebook and Hi5, accessed from Nokia N810/N95
handsets, against the PeerHood Community reference application.  Those
sites and handsets are simulated here:

* :mod:`repro.sns.database` / :mod:`repro.sns.server` — a centralized
  SNS with registered users, interest groups, search, join and profile
  pages ("SNS needs a centralized server and a centralized database
  system", §3.2).
* :mod:`repro.sns.devices` — access-device profiles (N810 on WLAN,
  N95 on 3G-era cellular) with network, rendering and input speeds.
* :mod:`repro.sns.human` — the human driving the workflow: typing,
  scanning result lists, deciding.
* :mod:`repro.sns.workflows` — the four Table 8 tasks end to end.
* :mod:`repro.sns.census` — Table 2's site census, regenerable.
"""

from repro.sns.census import CENSUS, SnsCensusRow, seed_database_from_census
from repro.sns.database import SnsDatabase, SnsUser
from repro.sns.devices import NOKIA_N810, NOKIA_N95, AccessDevice
from repro.sns.human import HumanModel
from repro.sns.server import PageLoad, SnsServer
from repro.sns.sites import FACEBOOK_2008, HI5_2008, SiteProfile
from repro.sns.workflows import SnsWorkflow, TaskTimes

__all__ = [
    "AccessDevice",
    "CENSUS",
    "FACEBOOK_2008",
    "HI5_2008",
    "HumanModel",
    "NOKIA_N810",
    "NOKIA_N95",
    "PageLoad",
    "SiteProfile",
    "SnsCensusRow",
    "SnsDatabase",
    "SnsServer",
    "SnsUser",
    "SnsWorkflow",
    "TaskTimes",
    "seed_database_from_census",
]
