"""The centralized SNS database (§3.2).

"SNS needs a centralized server and a centralized database system.
Users' registration and all other essential information are stored in
the centralized database and users access the centralized server
through a web page."

A deliberately straightforward in-memory store: users, interest
groups, memberships, and a substring group search.  Scale matters only
in so far as search cost grows with catalogue size (exercised by the
Table 2 bench); semantics match the workflows' needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SnsUser:
    """One registered SNS account."""

    user_id: str
    full_name: str
    interests: list[str] = field(default_factory=list)
    friends: set[str] = field(default_factory=set)


@dataclass
class SnsGroup:
    """One user-created interest group.

    Unlike PeerHood Community's dynamic groups, these exist only
    because someone created and advertised them (§3.2: "users need to
    create their interest group themselves and advertise it").
    """

    name: str
    description: str
    members: set[str] = field(default_factory=set)


class SnsDatabase:
    """In-memory centralized store behind one SNS."""

    def __init__(self) -> None:
        self._users: dict[str, SnsUser] = {}
        self._groups: dict[str, SnsGroup] = {}

    # -- users ---------------------------------------------------------------

    def register_user(self, user_id: str, full_name: str,
                      interests: list[str] | None = None) -> SnsUser:
        """Create an account; ids are unique."""
        if user_id in self._users:
            raise ValueError(f"user {user_id!r} already registered")
        user = SnsUser(user_id, full_name, list(interests or []))
        self._users[user_id] = user
        return user

    def user(self, user_id: str) -> SnsUser:
        """Look up an account; raises ``KeyError`` when absent."""
        return self._users[user_id]

    @property
    def user_count(self) -> int:
        """Registered accounts."""
        return len(self._users)

    # -- groups ---------------------------------------------------------------

    def create_group(self, name: str, description: str = "") -> SnsGroup:
        """Create a group (manual, as SNSs require)."""
        key = name.lower()
        if key in self._groups:
            raise ValueError(f"group {name!r} already exists")
        group = SnsGroup(name, description)
        self._groups[key] = group
        return group

    def group(self, name: str) -> SnsGroup:
        """Look up a group by exact name."""
        return self._groups[name.lower()]

    @property
    def group_count(self) -> int:
        """Groups in the catalogue."""
        return len(self._groups)

    def join_group(self, name: str, user_id: str) -> None:
        """Add a member to a group."""
        if user_id not in self._users:
            raise KeyError(f"unknown user {user_id!r}")
        self.group(name).members.add(user_id)

    def search_groups(self, query: str, limit: int = 20) -> list[SnsGroup]:
        """Substring search over group names, most members first.

        A linear scan — which is also why result counts (and the human
        time spent scanning them) grow with catalogue size.
        """
        needle = query.lower()
        hits = [group for key, group in self._groups.items() if needle in key]
        hits.sort(key=lambda group: (-len(group.members), group.name))
        return hits[:limit]

    def members_of(self, name: str) -> list[SnsUser]:
        """Member accounts of a group, alphabetically."""
        group = self.group(name)
        return sorted((self._users[user_id] for user_id in group.members
                       if user_id in self._users),
                      key=lambda user: user.user_id)
