"""Site profiles: what makes Facebook-2008 heavier than Hi5-2008.

Each profile describes the page weights (kilobytes) and server
processing of the pages the four Table 8 tasks touch, plus flow shape
(how many result items a search returns, whether joining needs a
confirmation page).  Values are calibrated so the simulated workflows
land near the paper's measured cells; EXPERIMENTS.md records
paper-vs-measured for every cell.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SiteProfile:
    """One 2008-era social networking site.

    Attributes:
        name: Site name as in Table 8.
        home_kb: The portal/login landing page (cold cache) opened at
            the start of the search task.
        search_form_kb / results_kb / group_page_kb / join_confirm_kb /
            members_page_kb / profile_page_kb: Page weights.
        server_time_s: Server-side processing per page.
        search_results: Result items a group search typically returns
            (the human scans these).
        join_pages: Page loads the join flow needs after the group page
            (Facebook 2008 joined with one POST; Hi5 interposed a
            confirmation page).
        members_per_page: Group-member entries shown per page.
        profile_cached: Whether profile pages benefit from the asset
            cache (Hi5's media-stuffed profiles largely did not).
        profile_sections: Profile sections the reader scrolls through.
    """

    name: str
    home_kb: float
    search_form_kb: float
    results_kb: float
    group_page_kb: float
    join_confirm_kb: float
    members_page_kb: float
    profile_page_kb: float
    server_time_s: float
    search_results: int
    join_pages: int
    members_per_page: int
    profile_cached: bool
    profile_sections: int


#: Facebook as of 2008: heavy portal, heavy pages, single-step join,
#: disciplined (cacheable) profile pages.
FACEBOOK_2008 = SiteProfile(
    name="Facebook",
    home_kb=300.0,
    search_form_kb=170.0,
    results_kb=260.0,
    group_page_kb=310.0,
    join_confirm_kb=150.0,
    members_page_kb=130.0,
    profile_page_kb=290.0,
    server_time_s=0.40,
    search_results=12,
    join_pages=1,
    members_per_page=20,
    profile_cached=True,
    profile_sections=6,
)

#: Facebook's 2008 mobile site (m.facebook.com): the same flows at a
#: fraction of the page weight.  Not part of Table 8 — the paper's
#: testers used the full sites — but the obvious what-if, exercised by
#: the mobile-site ablation bench.
FACEBOOK_MOBILE_2008 = SiteProfile(
    name="Facebook (mobile site)",
    home_kb=45.0,
    search_form_kb=25.0,
    results_kb=40.0,
    group_page_kb=50.0,
    join_confirm_kb=30.0,
    members_page_kb=35.0,
    profile_page_kb=55.0,
    server_time_s=0.40,
    search_results=10,
    join_pages=1,
    members_per_page=10,
    profile_cached=True,
    profile_sections=6,
)

#: Hi5 as of 2008: lighter portal and search, but a confirmation page
#: on join and media-stuffed, cache-hostile profile pages.
HI5_2008 = SiteProfile(
    name="HI5",
    home_kb=230.0,
    search_form_kb=140.0,
    results_kb=210.0,
    group_page_kb=260.0,
    join_confirm_kb=230.0,
    members_page_kb=300.0,
    profile_page_kb=360.0,
    server_time_s=0.55,
    search_results=14,
    join_pages=2,
    members_per_page=15,
    profile_cached=False,
    profile_sections=8,
)
