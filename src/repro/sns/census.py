"""Table 2: social networking sites and their registered users.

The census rows are the paper's (source: Weaver & Morrison, IEEE
Computer 2008).  :func:`seed_database_from_census` turns a row into a
synthetic population at a chosen scale so database-level benches can
exercise realistic relative sizes without 217 million dicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.sns.database import SnsDatabase

#: Interests used when synthesising populations; "football" mirrors the
#: paper's "England Football" test query.
_INTEREST_POOL = (
    "football", "england football", "music", "movies", "photography",
    "travel", "cooking", "gaming", "books", "hiking", "cycling",
    "biking", "tennis", "ice hockey", "blogging", "chess",
)


@dataclass(frozen=True)
class SnsCensusRow:
    """One row of Table 2."""

    site: str
    url: str
    focus: str
    registered_users: int


#: The eight rows of Table 2, verbatim.
CENSUS: tuple[SnsCensusRow, ...] = (
    SnsCensusRow("MySpace", "myspace.com",
                 "Videos, movies, IM, news, blogs, chat", 217_000_000),
    SnsCensusRow("Facebook", "facebook.com",
                 "Upload photoes, post videos, get news, tag friends",
                 58_000_000),
    SnsCensusRow("Friendster", "friendster.com",
                 "Search for and connect with friends and classmates",
                 50_000_000),
    SnsCensusRow("Classmates", "classmates.com",
                 "School, college, work and military groups", 40_000_000),
    SnsCensusRow("Windows Live Spaces", "spaces.live.com",
                 "Blogging", 40_000_000),
    SnsCensusRow("Broadcaster", "broadcaster.com",
                 "Video sharing and webcam chat", 26_000_000),
    SnsCensusRow("Fotolog", "fotolog.com",
                 "338 million photoes around the world", 12_695_007),
    SnsCensusRow("Flickr", "flickr.com", "Photo sharing", 4_000_000),
)


def census_row(site: str) -> SnsCensusRow:
    """Look up one census row by site name (case-insensitive)."""
    for row in CENSUS:
        if row.site.lower() == site.lower():
            return row
    raise KeyError(f"no census row for {site!r}")


def seed_database_from_census(database: SnsDatabase, row: SnsCensusRow,
                              rng: Random, scale: int = 100_000) -> int:
    """Populate ``database`` with ``registered_users / scale`` accounts.

    Users get 1-4 interests from the pool; one group per pool interest
    is created (plus an "England Football" group mirroring the paper's
    test target) and users join the groups of their interests.  Returns
    the number of accounts created.
    """
    population = max(10, row.registered_users // scale)
    for interest in _INTEREST_POOL:
        database.create_group(interest.title(),
                              description=f"{row.site} fans of {interest}")
    for index in range(population):
        count = rng.randint(1, 4)
        interests = rng.sample(_INTEREST_POOL, count)
        user = database.register_user(f"user{index:06d}",
                                      f"User {index:06d}", interests)
        for interest in interests:
            database.join_group(interest.title(), user.user_id)
    return population
