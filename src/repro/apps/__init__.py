"""Applications on mobile environment on top of PeerHood (§4.4).

The thesis grounds "applications on top of PeerHood" with three
systems built at ComLab before PeerHood Community:

* the **Access control system** — PTDs as wireless keys for
  Bluetooth-controlled doors;
* the **Guidance system** — guidance points steering travellers
  through a strange environment to a destination;
* the **Fitness system** — exercise devices offering instant analysed
  feedback as a PeerHood service.

Reimplementing them here does two jobs: it demonstrates that the
PeerHood middleware layer is a real substrate (three more applications
run on the same daemon/library/plugins), and it gives the examples and
tests richer scenarios than the social network alone.
"""

from repro.apps.access_control import AccessControlledDoor, AccessLogEntry, DoorKeyClient
from repro.apps.fitness import FitnessDevice, FitnessFeedback, FitnessTracker
from repro.apps.guidance import GuidancePoint, GuidanceRouter, Traveler

__all__ = [
    "AccessControlledDoor",
    "AccessLogEntry",
    "DoorKeyClient",
    "FitnessDevice",
    "FitnessFeedback",
    "FitnessTracker",
    "GuidancePoint",
    "GuidanceRouter",
    "Traveler",
]
