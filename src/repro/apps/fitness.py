"""Fitness system: instant analysed exercise feedback (§4.4).

"This application promotes physical exercise through encouragement and
motivates the users by providing instant analyzed feedback of the
exercise."  The exercise device (a gym machine or heart-rate belt) is
a PeerHood device registering the ``Fitness`` service; the user's PTD
streams exercise samples to it and receives analysed feedback —
heart-rate zone, averages, and encouragement — after each batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Generator

from repro.net.connection import Connection
from repro.peerhood.library import PeerHoodLibrary

SERVICE_NAME = "Fitness"

#: (zone name, lower bound bpm); evaluated from the highest down.
_ZONES = (
    ("maximum", 170.0),
    ("anaerobic", 150.0),
    ("aerobic", 130.0),
    ("fat burn", 110.0),
    ("warm up", 0.0),
)


def heart_rate_zone(bpm: float) -> str:
    """Classify a heart rate into a training zone."""
    if bpm < 0:
        raise ValueError(f"heart rate must be non-negative, got {bpm!r}")
    for name, lower in _ZONES:
        if bpm >= lower:
            return name
    return "warm up"


@dataclass(frozen=True)
class FitnessFeedback:
    """Instant analysed feedback for one batch of samples."""

    samples: int
    mean_bpm: float
    peak_bpm: float
    zone: str
    encouragement: str


def analyse(samples: list[float]) -> FitnessFeedback:
    """The device's analysis of one sample batch."""
    if not samples:
        raise ValueError("cannot analyse an empty batch")
    mean = sum(samples) / len(samples)
    peak = max(samples)
    zone = heart_rate_zone(mean)
    if zone in ("warm up", "fat burn"):
        cheer = "Nice and easy - you can push a little harder!"
    elif zone == "aerobic":
        cheer = "Great pace - right in the aerobic zone!"
    else:
        cheer = "Strong effort - remember to recover!"
    return FitnessFeedback(len(samples), mean, peak, zone, cheer)


class FitnessDevice:
    """The exercise-equipment side of the Fitness service."""

    def __init__(self, library: PeerHoodLibrary, equipment: str) -> None:
        self.library = library
        self.equipment = equipment
        self.env = library.daemon.env
        self.batches_analysed = 0
        library.register_service(SERVICE_NAME, {"equipment": equipment},
                                 self._accept)

    def _accept(self, connection: Connection) -> None:
        self.env.spawn(self._serve(connection),
                       name=f"fitness:{self.equipment}")

    def _serve(self, connection: Connection) -> Generator:
        while not connection.closed:
            request = yield connection.recv()
            if request is None:
                return None
            if not isinstance(request, dict) or request.get("op") != "batch":
                continue
            samples = [float(value) for value in request.get("samples", [])]
            if not samples:
                reply = {"ok": False, "error": "empty batch"}
            else:
                feedback = analyse(samples)
                self.batches_analysed += 1
                reply = {
                    "ok": True,
                    "samples": feedback.samples,
                    "mean_bpm": feedback.mean_bpm,
                    "peak_bpm": feedback.peak_bpm,
                    "zone": feedback.zone,
                    "encouragement": feedback.encouragement,
                }
            try:
                connection.send(reply)
            except (ConnectionError, OSError):
                return None
        return None


class FitnessTracker:
    """The user's PTD streaming exercise samples for feedback."""

    def __init__(self, library: PeerHoodLibrary) -> None:
        self.library = library
        self.session_feedback: list[FitnessFeedback] = []

    def visible_equipment(self) -> list[tuple[str, str]]:
        """``(device_id, equipment)`` of fitness devices in range."""
        equipment = []
        for service in self.library.get_service_listing():
            if service.name == SERVICE_NAME:
                equipment.append((service.device_id,
                                  service.attribute("equipment", "?")))
        return sorted(equipment)

    def workout(self, device_id: str,
                batches: list[list[float]]) -> Generator:
        """Stream batches of samples; returns the feedback list."""
        connection = yield from self.library.connect(device_id, SERVICE_NAME)
        feedback: list[FitnessFeedback] = []
        try:
            for batch in batches:
                connection.send({"op": "batch", "samples": batch})
                reply = yield connection.recv()
                if reply is None:
                    raise ConnectionError("fitness connection lost")
                if reply.get("ok"):
                    feedback.append(FitnessFeedback(
                        reply["samples"], reply["mean_bpm"],
                        reply["peak_bpm"], reply["zone"],
                        reply["encouragement"]))
        finally:
            connection.close()
        self.session_feedback.extend(feedback)
        return feedback
