"""Access control system: PTDs as wireless keys (§4.4).

"PTDs with wireless access control system can be used as keys for
locking or unlocking and provides access to locked resources and
places."  A door is a stationary PeerHood device registering the
``AccessControl`` service; a PTD within Bluetooth range requests an
unlock, the door checks its access list and proximity, opens, and
relocks automatically after a hold time.
"""

from __future__ import annotations

import contextlib
from collections.abc import Generator
from dataclasses import dataclass

from repro.net.connection import Connection
from repro.peerhood.library import PeerHoodLibrary

SERVICE_NAME = "AccessControl"


@dataclass(frozen=True)
class AccessLogEntry:
    """One audit-log line of a door."""

    time: float
    device_id: str
    granted: bool
    reason: str


class AccessControlledDoor:
    """A Bluetooth-controlled door offering the AccessControl service.

    Args:
        library: PeerHood library of the door's embedded device.
        resource: Human-readable name of what the door protects.
        authorized: Device ids allowed to unlock.
        hold_open_s: Seconds the door stays open per grant.
    """

    def __init__(self, library: PeerHoodLibrary, resource: str,
                 authorized: set[str] | None = None,
                 hold_open_s: float = 5.0) -> None:
        self.library = library
        self.resource = resource
        self.authorized: set[str] = set(authorized or ())
        self.hold_open_s = hold_open_s
        self.env = library.daemon.env
        self.is_open = False
        self.log: list[AccessLogEntry] = []
        library.register_service(SERVICE_NAME, {"resource": resource},
                                 self._accept)

    # -- administration -------------------------------------------------------

    def grant(self, device_id: str) -> None:
        """Add a device to the access list."""
        self.authorized.add(device_id)

    def revoke(self, device_id: str) -> None:
        """Remove a device from the access list."""
        self.authorized.discard(device_id)

    # -- request handling -----------------------------------------------------

    def _accept(self, connection: Connection) -> None:
        self.env.spawn(self._serve(connection),
                       name=f"door:{self.library.device_id}")

    def _serve(self, connection: Connection) -> Generator:
        request = yield connection.recv()
        if not isinstance(request, dict) or request.get("op") != "unlock":
            return None
        requester = connection.remote_id
        granted, reason = self._decide(requester)
        self.log.append(AccessLogEntry(self.env.now, requester, granted,
                                       reason))
        if granted:
            self.is_open = True
            self.env.call_in(self.hold_open_s, self._relock)
        with contextlib.suppress(ConnectionError, OSError):
            connection.send({"granted": granted, "reason": reason,
                             "resource": self.resource})
        return None

    def _decide(self, requester: str) -> tuple[bool, str]:
        if requester not in self.authorized:
            return False, "not authorized"
        # Proximity double-check: the radio link existing implies
        # range, but a door demands the key be *at* the door, not at
        # the far edge of WLAN coverage.
        quality = self.library.daemon.medium.link_quality(
            self.library.device_id, requester, "bluetooth")
        if quality <= 0.0:
            return False, "key not within Bluetooth proximity"
        return True, "authorized key in proximity"

    def _relock(self) -> None:
        self.is_open = False


class DoorKeyClient:
    """The PTD side: find nearby doors and request access."""

    def __init__(self, library: PeerHoodLibrary) -> None:
        self.library = library

    def nearby_doors(self) -> list[tuple[str, str]]:
        """``(device_id, resource)`` of doors in the neighbourhood."""
        doors = []
        for service in self.library.get_service_listing():
            if service.name == SERVICE_NAME \
                    and service.device_id != self.library.device_id:
                doors.append((service.device_id,
                              service.attribute("resource", "?")))
        return sorted(doors)

    def request_access(self, door_device_id: str) -> Generator:
        """Process generator: ask one door to unlock.

        Returns the door's decision dict
        (``{"granted": bool, "reason": str, "resource": str}``).
        """
        connection = yield from self.library.connect(door_device_id,
                                                     SERVICE_NAME)
        try:
            connection.send({"op": "unlock"})
            reply = yield connection.recv()
        finally:
            connection.close()
        if reply is None:
            raise ConnectionError("door connection lost")
        return reply
