"""Guidance system: location-aware routing to a destination (§4.4).

"The guidance system offers guidance to travelers in some strange
environment into some selected destinations."  Guidance points are
stationary PeerHood devices at known places; each registers the
``Guidance`` service and shares a place graph.  A traveller asks the
*nearest* guidance point for the route to a destination; the point
answers with the next hop (and the remaining path), computed over the
graph with networkx; the traveller walks hop to hop until arrival —
exactly the predictive-Bluetooth guidance of the cited WAWC'04 work,
in simulation.
"""

from __future__ import annotations

import contextlib
from collections.abc import Generator

import networkx as nx

from repro.mobility.geometry import Point, distance
from repro.net.connection import Connection
from repro.peerhood.library import PeerHoodLibrary

SERVICE_NAME = "Guidance"


class GuidanceRouter:
    """The shared place graph all guidance points of one site use."""

    def __init__(self) -> None:
        self.graph = nx.Graph()

    def add_place(self, name: str, position: Point) -> None:
        """Register a named place."""
        self.graph.add_node(name, position=position)

    def connect_places(self, a: str, b: str) -> None:
        """Declare a walkable corridor between two places."""
        weight = distance(self.graph.nodes[a]["position"],
                          self.graph.nodes[b]["position"])
        self.graph.add_edge(a, b, weight=weight)

    def position_of(self, name: str) -> Point:
        """Where a place is."""
        return self.graph.nodes[name]["position"]

    def route(self, origin: str, destination: str) -> list[str]:
        """Shortest walking route between two places.

        Raises ``nx.NetworkXNoPath``/``nx.NodeNotFound`` when the
        destination is unknown or unreachable.
        """
        return nx.shortest_path(self.graph, origin, destination,
                                weight="weight")


class GuidancePoint:
    """A stationary device at one place, serving route queries."""

    def __init__(self, library: PeerHoodLibrary, router: GuidanceRouter,
                 place: str) -> None:
        self.library = library
        self.router = router
        self.place = place
        self.env = library.daemon.env
        self.queries_served = 0
        library.register_service(SERVICE_NAME, {"place": place},
                                 self._accept)

    def _accept(self, connection: Connection) -> None:
        self.env.spawn(self._serve(connection),
                       name=f"guidance:{self.place}")

    def _serve(self, connection: Connection) -> Generator:
        request = yield connection.recv()
        if not isinstance(request, dict) or request.get("op") != "route":
            return None
        destination = request.get("destination", "")
        try:
            path = self.router.route(self.place, destination)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            reply = {"ok": False, "error": f"no route to {destination!r}"}
        else:
            next_place = path[1] if len(path) > 1 else self.place
            reply = {
                "ok": True,
                "here": self.place,
                "destination": destination,
                "next": next_place,
                "path": path,
                "next_position": [self.router.position_of(next_place).x,
                                  self.router.position_of(next_place).y],
            }
            self.queries_served += 1
        with contextlib.suppress(ConnectionError, OSError):
            connection.send(reply)
        return None


class Traveler:
    """The traveller's PTD: ask the nearest point, walk, repeat."""

    def __init__(self, library: PeerHoodLibrary) -> None:
        self.library = library
        self.asked: list[str] = []

    def visible_points(self) -> list[tuple[str, str]]:
        """``(device_id, place)`` of guidance points in range."""
        points = []
        for service in self.library.get_service_listing():
            if service.name == SERVICE_NAME:
                points.append((service.device_id,
                               service.attribute("place", "?")))
        return sorted(points)

    def nearest_point(self) -> tuple[str, str]:
        """The in-range guidance point with the strongest signal.

        Signal strength is the PTD's only distance proxy — the same
        trick the cited predictive-Bluetooth guidance system used.
        Raises ``LookupError`` when no point is in range.
        """
        points = self.visible_points()
        if not points:
            raise LookupError("no guidance point in range")
        medium = self.library.daemon.medium
        own = self.library.device_id

        def quality(entry: tuple[str, str]) -> float:
            device_id, _ = entry
            return max(medium.link_quality(own, device_id, name)
                       for name in ("bluetooth", "wlan", "gprs"))

        return max(points, key=quality)

    def ask_route(self, destination: str) -> Generator:
        """Query the nearest visible guidance point for the route.

        Returns the point's reply dict; raises ``LookupError`` when no
        guidance point is in range.
        """
        device_id, place = self.nearest_point()
        self.asked.append(place)
        connection = yield from self.library.connect(device_id, SERVICE_NAME)
        try:
            connection.send({"op": "route", "destination": destination})
            reply = yield connection.recv()
        finally:
            connection.close()
        if reply is None:
            raise ConnectionError("guidance connection lost")
        return reply
