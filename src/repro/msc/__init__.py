"""Message sequence chart capture and rendering.

The paper documents every client-server operation as an MSC (Figures
11-17).  This package records the actual messages exchanged by the
simulated client and servers and renders them as ASCII charts, so each
figure is *regenerated from a live run* rather than redrawn.
"""

from repro.msc.render import render_msc
from repro.msc.trace import MscEvent, MscRecorder

__all__ = ["MscEvent", "MscRecorder", "render_msc"]
