"""Recording message sequences from live simulation runs."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable


@dataclass(frozen=True)
class MscEvent:
    """One element of a message sequence chart.

    Attributes:
        time: Virtual time of the event.
        kind: ``"message"`` (arrow), ``"action"`` (box on one
            lifeline) or ``"note"`` (annotation on one lifeline).
        source: Originating entity.
        target: Receiving entity (same as source for action/note).
        label: Text on the arrow or in the box.
    """

    time: float
    kind: str
    source: str
    target: str
    label: str


class MscRecorder:
    """Collects :class:`MscEvent` records during a run."""

    def __init__(self) -> None:
        self.events: list[MscEvent] = []
        self.enabled = True

    def message(self, time: float, source: str, target: str, label: str) -> None:
        """Record a message arrow ``source -> target``."""
        if self.enabled:
            self.events.append(MscEvent(time, "message", source, target, label))

    def action(self, time: float, entity: str, label: str) -> None:
        """Record a local action (e.g. "writes comment to profile")."""
        if self.enabled:
            self.events.append(MscEvent(time, "action", entity, entity, label))

    def note(self, time: float, entity: str, label: str) -> None:
        """Record an annotation on one lifeline."""
        if self.enabled:
            self.events.append(MscEvent(time, "note", entity, entity, label))

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self.events.clear()

    def participants(self) -> list[str]:
        """Entities in order of first appearance."""
        seen: dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.source, None)
            seen.setdefault(event.target, None)
        return list(seen)

    def messages_between(self, a: str, b: str) -> list[MscEvent]:
        """All message arrows exchanged between two entities."""
        return [event for event in self.events
                if event.kind == "message"
                and {event.source, event.target} == {a, b}]

    def labels(self, kind: str | None = None) -> list[str]:
        """Event labels in order, optionally filtered by kind."""
        return [event.label for event in self.events
                if kind is None or event.kind == kind]

    def subchart(self, participants: Iterable[str]) -> MscRecorder:
        """A recorder view containing only events among ``participants``."""
        wanted = set(participants)
        view = MscRecorder()
        view.events = [event for event in self.events
                       if event.source in wanted and event.target in wanted]
        return view
