"""ASCII rendering of recorded message sequence charts.

Output format (one lifeline per participant)::

        client         server-bob
           |                |
           |--PS_GETPROFILE-->|
           |<-------OK-------|
           |                |

Good enough to eyeball against the paper's Figures 11-17 and stable
enough for golden tests.
"""

from __future__ import annotations

from repro.msc.trace import MscRecorder

_MIN_GAP = 6


def render_msc(recorder: MscRecorder, title: str = "") -> str:
    """Render the recorder's events as an ASCII chart."""
    participants = recorder.participants()
    if not participants:
        return f"(empty MSC{': ' + title if title else ''})"

    widest_label = max((len(event.label) for event in recorder.events),
                       default=0)
    column_gap = max(_MIN_GAP + widest_label,
                     max(len(name) for name in participants) + 2)
    centers = {name: index * column_gap + column_gap // 2
               for index, name in enumerate(participants)}
    width = len(participants) * column_gap

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * min(len(title), width))

    header = [" "] * width
    for name in participants:
        start = max(0, centers[name] - len(name) // 2)
        for offset, char in enumerate(name):
            if start + offset < width:
                header[start + offset] = char
    lines.append("".join(header).rstrip())
    lines.append(_lifelines(centers, width))

    for event in recorder.events:
        if event.kind == "message":
            lines.append(_arrow(centers, width, event.source, event.target,
                                event.label))
        else:
            marker = f"[{event.label}]" if event.kind == "action" else f"({event.label})"
            lines.append(_annotation(centers, width, event.source, marker))
        lines.append(_lifelines(centers, width))
    return "\n".join(lines)


def _lifelines(centers: dict[str, int], width: int) -> str:
    row = [" "] * width
    for center in centers.values():
        row[center] = "|"
    return "".join(row).rstrip()


def _arrow(centers: dict[str, int], width: int, source: str, target: str,
           label: str) -> str:
    row = [" "] * width
    for center in centers.values():
        row[center] = "|"
    src, dst = centers[source], centers[target]
    if src == dst:  # self-message: render as annotation
        return _annotation(centers, width, source, f"[{label}]")
    left, right = min(src, dst), max(src, dst)
    for position in range(left + 1, right):
        row[position] = "-"
    if dst > src:
        row[right - 1] = ">"
    else:
        row[left + 1] = "<"
    # Centre the label inside the arrow body.
    body = right - left - 3
    if body > 0 and label:
        text = label[:body]
        start = left + 2 + (body - len(text)) // 2
        for offset, char in enumerate(text):
            row[start + offset] = char
    return "".join(row).rstrip()


def _annotation(centers: dict[str, int], width: int, entity: str,
                marker: str) -> str:
    row = [" "] * width
    for center in centers.values():
        row[center] = "|"
    center = centers[entity]
    start = max(0, center - len(marker) // 2)
    for offset, char in enumerate(marker):
        if start + offset < width:
            row[start + offset] = char
    return "".join(row).rstrip()
