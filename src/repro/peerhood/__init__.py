"""PeerHood: peer-to-peer neighbourhood middleware (Chapter 4).

Three entities, as in Figure 4:

* :class:`~repro.peerhood.daemon.PeerHoodDaemon` — the always-running
  background process doing device and service discovery.
* :class:`~repro.peerhood.library.PeerHoodLibrary` — the API
  applications link against.
* Plugins (:mod:`repro.peerhood.plugins`) — one per technology.

Plus the cross-cutting features of Table 3:
:class:`~repro.peerhood.monitor.DeviceMonitor` (active monitoring) and
:class:`~repro.peerhood.seamless.SeamlessConnectivityManager`
(seamless connectivity).
"""

from repro.peerhood.daemon import DEFAULT_PREFERENCE, PHD_PORT, PeerHoodDaemon
from repro.peerhood.device import NeighborDevice, ServiceInfo
from repro.peerhood.errors import (
    DeviceNotFoundError,
    NoCommonTechnologyError,
    PeerHoodError,
    ServiceExistsError,
    ServiceNotFoundError,
)
from repro.peerhood.library import PeerHoodLibrary
from repro.peerhood.monitor import DeviceMonitor
from repro.peerhood.plugins import BTPlugin, GPRSPlugin, Plugin, WLANPlugin
from repro.peerhood.seamless import HandoverRecord, SeamlessConnectivityManager

__all__ = [
    "BTPlugin",
    "DEFAULT_PREFERENCE",
    "DeviceMonitor",
    "DeviceNotFoundError",
    "GPRSPlugin",
    "HandoverRecord",
    "NeighborDevice",
    "NoCommonTechnologyError",
    "PHD_PORT",
    "PeerHoodDaemon",
    "PeerHoodError",
    "PeerHoodLibrary",
    "Plugin",
    "SeamlessConnectivityManager",
    "ServiceExistsError",
    "ServiceInfo",
    "ServiceNotFoundError",
    "WLANPlugin",
]
