"""The PeerHood Daemon (PHD).

"PHD performs the major operations of PeerHood.  It is an independent
application which always runs on background and keeps tracks of other
wireless device discovery and service discovery in those devices.  It
maintains a list of neighbor devices as well as list of local and
remote services.  Services through PeerHood-enabled applications are
registered in PHD and PHD handles the service requests." (§4.2.1)

Concretely the daemon here:

* runs one periodic discovery loop per plugin (staggered by jitter);
* merges scan results into a neighbourhood table of
  :class:`~repro.peerhood.device.NeighborDevice` records;
* queries newly-seen devices for their registered services over a
  control channel (the ``_phd`` port) and answers such queries from
  peers — Table 3's "Service Discovery";
* fires ``device_found`` / ``device_lost`` / ``services_updated``
  events that the monitoring API and the social middleware build on.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Generator, Iterable

from repro.net.connection import Connection
from repro.net.stack import NetworkStack
from repro.peerhood.device import NeighborDevice, ServiceInfo
from repro.peerhood.errors import ServiceExistsError
from repro.peerhood.plugins.base import Plugin
from repro.radio.medium import Medium, NotReachableError
from repro.simenv import Delay, Environment

#: Control port every daemon listens on, on every technology.
PHD_PORT = "_phd"

#: Cheapest-first technology preference (§5.1: Bluetooth and WLAN are
#: "primely used"; GPRS costs money and is the fallback).
DEFAULT_PREFERENCE = ("bluetooth", "wlan", "gprs")


class PeerHoodDaemon:
    """Per-device background process maintaining the neighbourhood."""

    def __init__(self, env: Environment, medium: Medium, stack: NetworkStack,
                 device_id: str, plugins: Iterable[Plugin], *,
                 scan_interval: float = 10.0,
                 preference: tuple[str, ...] = DEFAULT_PREFERENCE) -> None:
        self.env = env
        self.medium = medium
        self.stack = stack
        self.device_id = device_id
        self.plugins: dict[str, Plugin] = {plugin.name: plugin
                                           for plugin in plugins}
        self.scan_interval = scan_interval
        self.preference = preference
        self.neighbors: dict[str, NeighborDevice] = {}
        self.local_services: dict[str, ServiceInfo] = {}
        self._found_callbacks: list[Callable[[str], None]] = []
        self._lost_callbacks: list[Callable[[str], None]] = []
        self._services_callbacks: list[Callable[[str], None]] = []
        self._running = False
        self._loop_processes = []
        #: Out-of-cycle scans run after a device disappeared (flap
        #: recovery); devices being probed right now.
        self.rediscovery_probes = 0
        self.stale_connections_dropped = 0
        self._rediscovering: set[str] = set()
        #: Devices with a service query in flight — dedupes the
        #: per-round retry of still-unfresh neighbours.
        self._querying: set[str] = set()
        #: Per-technology result of the latest scan — equals
        #: ``{d for d in neighbors if tech in neighbors[d].technologies}``
        #: at all times, letting a steady-state merge skip the
        #: walk over the whole neighbourhood table.
        self._seen_by_tech: dict[str, set[str]] = {}
        #: Reused between rounds: the loop delay is identical each time.
        self._interval_delay = Delay(scan_interval)
        stack.listen(PHD_PORT, self._accept_control)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Begin the per-plugin discovery loops."""
        if self._running:
            return
        self._running = True
        for index, plugin in enumerate(self.plugins.values()):
            # Stagger plugin loops slightly so scans do not align.
            offset = 0.05 * index
            process = self.env.spawn_at(
                self.env.now + offset,
                self._discovery_loop(plugin),
                name=f"phd:{self.device_id}:{plugin.name}")
            self._loop_processes.append(process)

    def stop(self) -> None:
        """Stop discovery; the neighbourhood table freezes."""
        self._running = False

    @property
    def running(self) -> bool:
        """Whether discovery loops are active."""
        return self._running

    # -- service registry (local) -----------------------------------------------

    def register_service(self, name: str, attributes: dict[str, str] | None,
                         on_connection: Callable[[Connection], None]) -> ServiceInfo:
        """Register a local service and start accepting connections.

        Raises :class:`ServiceExistsError` for duplicate names — the
        paper's daemon owns a flat per-device service namespace.
        """
        if name in self.local_services:
            raise ServiceExistsError(f"service {name!r} already registered "
                                     f"on {self.device_id!r}")
        info = ServiceInfo.make(name, self.device_id, attributes)
        self.local_services[name] = info
        self.stack.listen(name, on_connection)
        return info

    def unregister_service(self, name: str) -> None:
        """Remove a local service registration."""
        self.local_services.pop(name, None)
        self.stack.unlisten(name)

    # -- neighbourhood queries ---------------------------------------------------

    def device_listing(self) -> list[NeighborDevice]:
        """Snapshot of currently-known neighbour devices (sorted)."""
        return [self.neighbors[device_id]
                for device_id in sorted(self.neighbors)]

    def service_listing(self, device_id: str | None = None) -> list[ServiceInfo]:
        """Local + remote services, optionally restricted to one device."""
        services: list[ServiceInfo] = []
        if device_id is None or device_id == self.device_id:
            services.extend(self.local_services.values())
        for neighbor in self.device_listing():
            if device_id is None or neighbor.device_id == device_id:
                services.extend(neighbor.services)
        return services

    def knows(self, device_id: str) -> bool:
        """Whether the device is currently in the neighbourhood table."""
        return device_id in self.neighbors

    # -- events -----------------------------------------------------------------

    def on_device_found(self, callback: Callable[[str], None]) -> None:
        """Call ``callback(device_id)`` when a device first appears."""
        self._found_callbacks.append(callback)

    def on_device_lost(self, callback: Callable[[str], None]) -> None:
        """Call ``callback(device_id)`` when a device disappears."""
        self._lost_callbacks.append(callback)

    def on_services_updated(self, callback: Callable[[str], None]) -> None:
        """Call ``callback(device_id)`` when a device's services refresh."""
        self._services_callbacks.append(callback)

    # -- connections ----------------------------------------------------------

    def plugin_for(self, remote_id: str) -> Plugin | None:
        """Best plugin for reaching ``remote_id`` right now.

        Prefers the cheapest technology (per :attr:`preference`) over
        which the peer is actually reachable.
        """
        for name in self.preference:
            plugin = self.plugins.get(name)
            if plugin is None:
                continue
            if self.medium.reachable(self.device_id, remote_id, name):
                return plugin
        return None

    def connect(self, remote_id: str, service_name: str) -> Generator:
        """Process generator connecting to a service on a neighbour.

        Raises :class:`NotReachableError` when no technology reaches
        the peer.
        """
        plugin = self.plugin_for(remote_id)
        if plugin is None:
            raise NotReachableError(
                f"no technology reaches {remote_id!r} from {self.device_id!r}")
        connection = yield from plugin.connect(remote_id, service_name)
        return connection

    # -- discovery internals -------------------------------------------------

    def _discovery_loop(self, plugin: Plugin) -> Generator:
        plugin_name = plugin.name
        while self._running:
            found = yield from plugin.discover()
            self._merge_scan(plugin_name, set(found))
            delay = self._interval_delay
            if delay.seconds != self.scan_interval:
                delay = self._interval_delay = Delay(self.scan_interval)
            yield delay

    def _merge_scan(self, technology_name: str, found: set[str]) -> None:
        now = self.env.now
        neighbors = self.neighbors
        new_devices: list[str] = []
        unfresh: list[str] = []
        for device_id in sorted(found):
            neighbor = neighbors.get(device_id)
            if neighbor is None:
                neighbor = NeighborDevice(device_id=device_id)
                neighbors[device_id] = neighbor
                new_devices.append(device_id)
            elif not neighbor.services_fresh:
                unfresh.append(device_id)
            neighbor.technologies.add(technology_name)
            neighbor.last_seen = now
        # Devices previously visible on this technology but now absent.
        # The table walk preserves the historical (insertion-order)
        # loss sequence but is skipped entirely in the steady state,
        # where the previous scan saw a subset of this one.
        lost_devices: list[str] = []
        seen = self._seen_by_tech.get(technology_name)
        if seen is not None and not seen.issubset(found):
            for device_id, neighbor in list(neighbors.items()):
                if (technology_name in neighbor.technologies
                        and device_id not in found):
                    neighbor.technologies.discard(technology_name)
                    if not neighbor.technologies:
                        del neighbors[device_id]
                        lost_devices.append(device_id)
        self._seen_by_tech[technology_name] = found
        for device_id in new_devices:
            for callback in list(self._found_callbacks):
                callback(device_id)
            self._start_service_query(device_id)
        # A neighbour whose service query failed (e.g. its link was
        # still settling at first contact) would otherwise stay
        # serviceless forever: only *new* devices are queried, and a
        # continuously-visible device never becomes new again.  Retry
        # unfresh neighbours each round until a query lands.
        for device_id in unfresh:
            self._start_service_query(device_id)
        for device_id in lost_devices:
            # An abrupt disappearance (flap, walk-away) must not leave
            # half-open connections behind: closing them wakes every
            # process blocked on recv (it resumes with None) and clears
            # the stack's registry entries.
            self.stale_connections_dropped += self.stack.drop_peer(device_id)
            for callback in list(self._lost_callbacks):
                callback(device_id)
            if self._running and device_id not in self._rediscovering:
                # Churn is often a flap, not a departure: probe again
                # at short backoffs instead of waiting a full scan
                # interval, so re-association is quick (§5.1 churn).
                self._rediscovering.add(device_id)
                self.env.spawn(self._rediscovery_probe(device_id),
                               name=f"phd:{self.device_id}:rediscover:{device_id}")

    def _rediscovery_probe(self, device_id: str) -> Generator:
        """Short-backoff scans trying to re-find a just-lost device.

        A flapped device comes back within seconds; waiting for the
        next periodic scan would leave the neighbourhood (and every
        layer above it) blind for up to ``scan_interval``.  Three
        escalating probes cover the common flap window; a device that
        stays gone is left to the periodic loop.
        """
        self.rediscovery_probes += 1
        try:
            for delay in (1.0, 2.0, 4.0):
                yield Delay(delay)
                if not self._running or device_id in self.neighbors:
                    return None
                for plugin in list(self.plugins.values()):
                    found = yield from plugin.discover()
                    if device_id in found:
                        self._merge_scan(plugin.name, set(found))
                        return None
            return None
        finally:
            self._rediscovering.discard(device_id)

    def _start_service_query(self, device_id: str) -> None:
        if device_id in self._querying:
            return
        self._querying.add(device_id)
        self.env.spawn(self._query_services(device_id),
                       name=f"phd:{self.device_id}:svcq:{device_id}")

    def _query_services(self, device_id: str) -> Generator:
        """Fetch the remote daemon's service list over the control port.

        One immediate retry covers the window where the peer was
        discovered but its link is still settling; a device whose query
        keeps failing stays serviceless (``services_fresh`` False)
        until the next discovery round retries it.
        """
        try:
            for attempt in (1, 2):
                plugin = self.plugin_for(device_id)
                if plugin is None:
                    return None
                try:
                    connection = yield from plugin.connect(device_id, PHD_PORT)
                except (ConnectionError, OSError):
                    if attempt == 1:
                        yield Delay(1.0)
                        continue
                    return None
                try:
                    connection.send({"op": "get_services"})
                    reply = yield connection.recv()
                except (ConnectionError, OSError):
                    reply = None
                finally:
                    connection.close()
                if isinstance(reply, dict) and "services" in reply:
                    break
                if attempt == 1:
                    yield Delay(1.0)
        finally:
            self._querying.discard(device_id)
        neighbor = self.neighbors.get(device_id)
        if neighbor is None or not isinstance(reply, dict):
            return None
        neighbor.services = [
            ServiceInfo.make(entry["name"], device_id,
                             dict(entry.get("attributes", [])))
            for entry in reply.get("services", [])
        ]
        neighbor.services_fresh = True
        for callback in list(self._services_callbacks):
            callback(device_id)
        return neighbor.services

    def _accept_control(self, connection: Connection) -> None:
        self.env.spawn(self._serve_control(connection),
                       name=f"phd:{self.device_id}:ctl")

    def _serve_control(self, connection: Connection) -> Generator:
        try:
            request = yield connection.recv()
        except (ConnectionError, OSError):
            return None
        replied = False
        operation = request.get("op") if isinstance(request, dict) else None
        if operation == "get_services":
            services = [{"name": info.name,
                         "attributes": [list(pair) for pair in info.attributes]}
                        for info in self.local_services.values()]
            with contextlib.suppress(ConnectionError, OSError):
                connection.send({"services": services})
                replied = True
        elif operation == "get_neighbors":
            # Share our current neighbourhood table — the primitive
            # gossip-based overlay expansion builds on (repro.adhoc).
            with contextlib.suppress(ConnectionError, OSError):
                connection.send({"neighbors": sorted(self.neighbors)})
                replied = True
        if not replied:
            # A request we could not answer (malformed — e.g. corrupted
            # in flight — or the reply send failed) must not leave the
            # peer blocked on recv: closing wakes it with ``None`` so
            # its retry logic runs.  On success the *requester* closes,
            # because closing here would discard the in-flight reply.
            connection.close()
        return None
