"""PeerHood middleware exceptions."""

from __future__ import annotations


class PeerHoodError(Exception):
    """Base class for all PeerHood middleware errors."""


class DeviceNotFoundError(PeerHoodError):
    """The requested device is not in the current neighbourhood."""


class ServiceNotFoundError(PeerHoodError):
    """The requested service is not registered on the target device."""


class ServiceExistsError(PeerHoodError):
    """A service with this name is already registered locally."""


class NoCommonTechnologyError(PeerHoodError):
    """No technology connects the local device to the target device."""
