"""Active monitoring of devices (Table 3).

"PeerHood supports active monitoring of devices, i.e. when the
monitored device goes out of range than application is notified of its
disappearance.  Also, the application is notified when the monitored
device approaches the range."
"""

from __future__ import annotations

from collections.abc import Callable

from repro.peerhood.daemon import PeerHoodDaemon


class DeviceMonitor:
    """Watches one device id through the daemon's event stream.

    Args:
        daemon: The local daemon whose neighbourhood is watched.
        device_id: Device to monitor.
        on_appear: Called with the device id when it enters range.
        on_disappear: Called with the device id when it leaves range.
    """

    def __init__(self, daemon: PeerHoodDaemon, device_id: str, *,
                 on_appear: Callable[[str], None] | None = None,
                 on_disappear: Callable[[str], None] | None = None) -> None:
        self.daemon = daemon
        self.device_id = device_id
        self._on_appear = on_appear
        self._on_disappear = on_disappear
        self.active = True
        self.appearances = 0
        self.disappearances = 0
        daemon.on_device_found(self._handle_found)
        daemon.on_device_lost(self._handle_lost)

    @property
    def visible(self) -> bool:
        """Whether the monitored device is currently in range."""
        return self.daemon.knows(self.device_id)

    def cancel(self) -> None:
        """Stop delivering notifications (listener stays registered but
        inert; daemons live for the whole simulation)."""
        self.active = False

    def _handle_found(self, device_id: str) -> None:
        if not self.active or device_id != self.device_id:
            return
        self.appearances += 1
        if self._on_appear is not None:
            self._on_appear(device_id)

    def _handle_lost(self, device_id: str) -> None:
        if not self.active or device_id != self.device_id:
            return
        self.disappearances += 1
        if self._on_disappear is not None:
            self._on_disappear(device_id)
