"""Data model: devices and services as PeerHood sees them.

These are the records the daemon keeps about the neighbourhood —
"PeerHood monitors the immediate neighbors of a PTD, collects
information and stores it for possible future usage" (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ServiceInfo:
    """A service registered on some (local or remote) device.

    Attributes:
        name: Service name, e.g. ``"PeerHoodCommunity"``.
        device_id: Device the service runs on.
        attributes: Free-form descriptive attributes the registering
            application supplied (the paper's service attributes,
            Table 3 "Service Discovery").
    """

    name: str
    device_id: str
    attributes: tuple[tuple[str, str], ...] = ()

    def attribute(self, key: str, default: str | None = None) -> str | None:
        """Look up one attribute value."""
        for attr_key, attr_value in self.attributes:
            if attr_key == key:
                return attr_value
        return default

    @staticmethod
    def make(name: str, device_id: str,
             attributes: dict[str, str] | None = None) -> ServiceInfo:
        """Build a :class:`ServiceInfo` from a plain dict of attributes."""
        items = tuple(sorted((attributes or {}).items()))
        return ServiceInfo(name=name, device_id=device_id, attributes=items)


@dataclass
class NeighborDevice:
    """What the local daemon currently knows about one remote device.

    Attributes:
        device_id: Remote device identifier.
        technologies: Technology names the device was seen on.
        last_seen: Virtual time of the most recent sighting.
        services: Remote services, populated by service discovery.
        services_fresh: Whether ``services`` reflects a completed query.
    """

    device_id: str
    technologies: set[str] = field(default_factory=set)
    last_seen: float = 0.0
    services: list[ServiceInfo] = field(default_factory=list)
    services_fresh: bool = False

    def best_technology(self, preference: tuple[str, ...]) -> str | None:
        """The most preferred technology this device is visible on."""
        for name in preference:
            if name in self.technologies:
                return name
        return None
