"""PeerHood plugins: one per network technology (§4.2.3).

Plugins are "loaded dynamically by PHD and/or PeerHood Library" in the
paper; here the daemon is handed a list of plugin instances.  Each
plugin owns discovery and connection establishment for its technology.
"""

from repro.peerhood.plugins.base import Plugin
from repro.peerhood.plugins.bt import BTPlugin
from repro.peerhood.plugins.gprs import GPRSPlugin
from repro.peerhood.plugins.wlan import WLANPlugin

__all__ = ["BTPlugin", "GPRSPlugin", "Plugin", "WLANPlugin"]
