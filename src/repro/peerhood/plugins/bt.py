"""Bluetooth plugin: L2CAP-style connections, inquiry-based discovery.

"BTPlugin provide L2CAP operation for Bluetooth connectivity in
PeerHood, avoids the overhead caused by the BNEP or RFCOMM and PPP and
it offers ordered and reliable data delivery" (§4.2.3).  The simulated
connection is ordered and reliable by construction; what this plugin
adds is inquiry timing and piconet capacity.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.net.stack import NetworkStack
from repro.radio.bluetooth import BluetoothAdapter
from repro.radio.medium import Medium
from repro.radio.standards import BLUETOOTH
from repro.peerhood.plugins.base import Plugin
from repro.simenv import Environment


class BTPlugin(Plugin):
    """PeerHood's Bluetooth plugin."""

    technology = BLUETOOTH

    def __init__(self, env: Environment, medium: Medium, stack: NetworkStack,
                 device_id: str) -> None:
        super().__init__(env, medium, stack, device_id)
        self.bt = BluetoothAdapter(
            device_id, env.random.stream(f"bt:{device_id}"))

    def scan_duration(self, responders: int) -> float:
        """Inquiry time grows with the number of responding devices."""
        return self.bt.inquiry_duration(responders)

    def connect(self, remote_id: str, port: str) -> Generator:
        """Page the remote device and open an L2CAP-style channel.

        The local device becomes (or already is) master of its piconet;
        the connection occupies one slave slot until closed.  Raises
        :class:`~repro.radio.bluetooth.PiconetFullError` at capacity.
        """
        self.bt.piconet.add_slave(remote_id)
        try:
            connection = yield from self.stack.connect(
                remote_id, port, self.technology, None)
        except BaseException:
            self.bt.piconet.remove_slave(remote_id)
            raise
        original_close = connection.close

        def close_and_release() -> None:
            self.bt.piconet.remove_slave(remote_id)
            original_close()

        connection.close = close_and_release  # type: ignore[method-assign]
        return connection
