"""Plugin interface shared by BT/WLAN/GPRS plugins."""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.net.connection import Connection
from repro.net.stack import NetworkStack
from repro.radio.medium import Medium
from repro.radio.technology import Technology
from repro.simenv import Delay, Environment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.gprs import GprsGateway


class Plugin:
    """Base class for technology plugins.

    A plugin binds one device to one technology and provides:

    * ``discover()`` — a process generator returning the device ids
      found by one scan, taking the technology's realistic scan time.
    * ``connect(remote_id, port)`` — a process generator returning an
      established :class:`Connection`.

    Subclasses set :attr:`technology` and may override timing.
    """

    technology: Technology

    def __init__(self, env: Environment, medium: Medium, stack: NetworkStack,
                 device_id: str) -> None:
        self.env = env
        self.medium = medium
        self.stack = stack
        self.device_id = device_id
        self.scan_count = 0
        #: Scan delays repeat the same duration almost always; reuse
        #: the (immutable) Delay instead of allocating one per scan.
        self._scan_delay: Delay | None = None

    @property
    def name(self) -> str:
        """Technology name this plugin serves."""
        return self.technology.name

    def available(self) -> bool:
        """Whether the local device has a live adapter for the technology."""
        adapter = self.medium.adapter(self.device_id, self.technology.name)
        return adapter is not None and adapter.enabled

    def scan_duration(self, responders: int) -> float:
        """Seconds one discovery scan takes given ``responders`` peers."""
        return self.technology.discovery_time_s

    def gateway(self) -> GprsGateway | None:
        """Gateway used for relayed connections (``None`` for local radios)."""
        return None

    def discover(self) -> Generator:
        """Process generator: one discovery scan.

        Returns the list of device ids currently reachable over this
        plugin's technology, after the scan's virtual-time cost.
        """
        if not self.available():
            return []
        technology_name = self.technology.name
        found = self.medium.neighbors(self.device_id, technology_name)
        self.scan_count += 1
        duration = self.scan_duration(len(found))
        delay = self._scan_delay
        if delay is None or delay.seconds != duration:
            delay = self._scan_delay = Delay(duration)
        yield delay
        # Re-read after the scan: devices may have moved during it.
        return self.medium.neighbors(self.device_id, technology_name)

    def connect(self, remote_id: str, port: str) -> Generator:
        """Process generator: connect to ``port`` on ``remote_id``.

        Returns the local :class:`Connection` half.
        """
        connection = yield from self.stack.connect(
            remote_id, port, self.technology, self.gateway())
        return connection
