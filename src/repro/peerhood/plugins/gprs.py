"""GPRS plugin: discovery and connections through the operator proxy.

"GPRSPlugin also operates over IP connections and uses proxy device as
a bridge or an intermediate device" (§4.2.3).  Discovery is a registry
lookup at the gateway, and every connection's traffic is relayed (and
billed) by the :class:`~repro.radio.gprs.GprsGateway`.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.net.stack import NetworkStack
from repro.radio.gprs import GprsGateway
from repro.radio.medium import Medium
from repro.radio.standards import GPRS
from repro.peerhood.plugins.base import Plugin
from repro.simenv import Delay, Environment


class GPRSPlugin(Plugin):
    """PeerHood's GPRS plugin."""

    technology = GPRS

    def __init__(self, env: Environment, medium: Medium, stack: NetworkStack,
                 device_id: str, gateway: GprsGateway) -> None:
        super().__init__(env, medium, stack, device_id)
        self._gateway = gateway
        gateway.register(device_id)

    def gateway(self) -> GprsGateway:
        """The operator gateway relaying this plugin's traffic."""
        return self._gateway

    def discover(self) -> Generator:
        """Query the proxy's registry instead of scanning the air."""
        if not self.available():
            return []
        self.scan_count += 1
        yield Delay(self.technology.discovery_time_s)
        visible = self._gateway.lookup(self.device_id)
        # The medium still arbitrates (adapters may be disabled).
        return [device_id for device_id in visible
                if self.medium.reachable(self.device_id, device_id,
                                         self.technology.name)]
