"""WLAN plugin: broadcast discovery over direct IP connections.

"WLANPlugin operates over IP connections and uses broadcast-based
service discovery.  It offers direct connection between communicating
devices without any intermediate devices or bridges" (§4.2.3).
"""

from __future__ import annotations

from repro.radio.standards import WLAN
from repro.radio.technology import Technology
from repro.peerhood.plugins.base import Plugin


class WLANPlugin(Plugin):
    """PeerHood's WLAN plugin (802.11b ad-hoc by default).

    A different 802.11 variant from the Table 1 registry can be
    injected for the standards bench by assigning ``technology`` on the
    instance.
    """

    technology: Technology = WLAN

    def scan_duration(self, responders: int) -> float:
        """One broadcast round; replies arrive within the reply window.

        Unlike Bluetooth inquiry, the broadcast probe's cost is flat:
        all peers answer within the same window regardless of count.
        """
        return self.technology.discovery_time_s
