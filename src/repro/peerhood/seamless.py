"""Seamless connectivity: migrate weakening links to better technologies.

"When PeerHood senses the breaking or weakening of the established
connection, it tries to find the best possible alternative for that
breaking connection, maintaining the connectivity." (Table 3)

The manager polls each supervised connection's link quality.  When the
quality drops below the handover threshold, it looks for the *best*
currently-available alternative technology (by quality, then by the
daemon's cheapest-first preference), pays the new technology's setup
time, and migrates the connection in place — make-before-break, so the
old link keeps carrying traffic during the handover unless it has
already died.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Generator

from repro.net.connection import Connection
from repro.peerhood.daemon import PeerHoodDaemon
from repro.simenv import Delay, PeriodicTimer


@dataclass
class HandoverRecord:
    """One completed or failed handover, for analysis benches."""

    time: float
    connection_repr: str
    from_technology: str
    to_technology: str | None
    reason: str
    succeeded: bool


@dataclass
class _Supervised:
    connection: Connection
    in_handover: bool = False
    handovers: int = 0
    callbacks: list[Callable[[Connection, str], None]] = field(default_factory=list)


class SeamlessConnectivityManager:
    """Supervises connections of one device's daemon."""

    def __init__(self, daemon: PeerHoodDaemon, *,
                 check_interval: float = 1.0,
                 quality_threshold: float = 0.15) -> None:
        self.daemon = daemon
        self.quality_threshold = quality_threshold
        self._supervised: list[_Supervised] = []
        self.history: list[HandoverRecord] = []
        self._timer = PeriodicTimer(daemon.env, check_interval, self._check_all)

    def supervise(self, connection: Connection,
                  on_handover: Callable[[Connection, str], None] | None = None
                  ) -> None:
        """Begin watching ``connection`` for weakening links.

        ``on_handover(connection, new_technology_name)`` fires after a
        successful migration.
        """
        entry = _Supervised(connection=connection)
        if on_handover is not None:
            entry.callbacks.append(on_handover)
        self._supervised.append(entry)

    def stop(self) -> None:
        """Stop supervising (existing connections keep working)."""
        self._timer.stop()

    @property
    def supervised_count(self) -> int:
        """Connections currently supervised (closed ones are pruned)."""
        return len(self._supervised)

    # -- internals -------------------------------------------------------------

    def _check_all(self) -> None:
        medium = self.daemon.medium
        still_open = []
        for entry in self._supervised:
            connection = entry.connection
            if connection.closed:
                continue
            still_open.append(entry)
            if entry.in_handover:
                continue
            quality = medium.link_quality(connection.local_id,
                                          connection.remote_id,
                                          connection.technology.name)
            if quality < self.quality_threshold:
                reason = "link broken" if quality == 0.0 else "link weakening"
                self.daemon.env.spawn(
                    self._handover(entry, reason),
                    name=f"seamless:{connection.local_id}->{connection.remote_id}")
        self._supervised = still_open

    def _best_alternative(self, connection: Connection) -> str | None:
        medium = self.daemon.medium
        best_name: str | None = None
        best_quality = 0.0
        for name in self.daemon.preference:
            if name == connection.technology.name:
                continue
            if name not in self.daemon.plugins:
                continue
            quality = medium.link_quality(connection.local_id,
                                          connection.remote_id, name)
            if quality > max(best_quality, self.quality_threshold):
                best_name = name
                best_quality = quality
        return best_name

    def _handover(self, entry: _Supervised, reason: str) -> Generator:
        connection = entry.connection
        entry.in_handover = True
        old_name = connection.technology.name
        try:
            target = self._best_alternative(connection)
            if target is None:
                self.history.append(HandoverRecord(
                    time=self.daemon.env.now,
                    connection_repr=repr(connection),
                    from_technology=old_name,
                    to_technology=None,
                    reason=reason,
                    succeeded=False))
                return None
            plugin = self.daemon.plugins[target]
            yield Delay(plugin.technology.setup_time_s)
            # The world may have changed during setup; re-validate.
            quality = self.daemon.medium.link_quality(
                connection.local_id, connection.remote_id, target)
            if connection.closed or quality <= 0.0:
                self.history.append(HandoverRecord(
                    time=self.daemon.env.now,
                    connection_repr=repr(connection),
                    from_technology=old_name,
                    to_technology=target,
                    reason=reason,
                    succeeded=False))
                return None
            connection.migrate(plugin.technology, plugin.gateway())
            entry.handovers += 1
            self.history.append(HandoverRecord(
                time=self.daemon.env.now,
                connection_repr=repr(connection),
                from_technology=old_name,
                to_technology=target,
                reason=reason,
                succeeded=True))
            for callback in entry.callbacks:
                callback(connection, target)
            return target
        finally:
            entry.in_handover = False
