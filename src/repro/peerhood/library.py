"""The PeerHood Library: the application-facing API (§4.2.2).

"PeerHood library provides a local socket interface which could be
used in handling communication between PHD and PeerHood-enabled
applications.  This library is used by the applications to request
information from PHD and to request for connecting to remote
services."

The C++ library talks to the daemon over a local socket; a local IPC
hop is microseconds against the radio's milliseconds, so the simulated
library calls the daemon in-process while charging a small fixed IPC
latency on the operations that cross it in the real system.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

from repro.net.connection import Connection
from repro.peerhood.daemon import PeerHoodDaemon
from repro.peerhood.device import NeighborDevice, ServiceInfo
from repro.peerhood.errors import ServiceNotFoundError
from repro.peerhood.monitor import DeviceMonitor
from repro.simenv import Delay

#: One local-socket round trip between application and daemon.
LOCAL_IPC_LATENCY_S = 0.0005


class PeerHoodLibrary:
    """Facade applications use; one instance per application."""

    def __init__(self, daemon: PeerHoodDaemon) -> None:
        self.daemon = daemon

    @property
    def device_id(self) -> str:
        """Identifier of the device this library instance runs on."""
        return self.daemon.device_id

    # -- service registration ----------------------------------------------

    def register_service(self, name: str, attributes: dict[str, str] | None,
                         on_connection: Callable[[Connection], None]
                         ) -> ServiceInfo:
        """Register a service into the PHD (Figure 8's pattern)."""
        return self.daemon.register_service(name, attributes, on_connection)

    def unregister_service(self, name: str) -> None:
        """Remove a previously registered service."""
        self.daemon.unregister_service(name)

    # -- neighbourhood information -------------------------------------------

    def get_device_listing(self) -> list[NeighborDevice]:
        """All PeerHood-capable devices currently in the neighbourhood.

        This is the call Figure 9's client makes before iterating
        "all nearby PeerHood Capable devices".
        """
        return self.daemon.device_listing()

    def get_service_listing(self, device_id: str | None = None
                            ) -> list[ServiceInfo]:
        """Local and remote services known to the daemon."""
        return self.daemon.service_listing(device_id)

    def devices_with_service(self, service_name: str) -> list[str]:
        """Device ids in the neighbourhood advertising ``service_name``."""
        return sorted({service.device_id
                       for service in self.daemon.service_listing()
                       if service.name == service_name
                       and service.device_id != self.device_id})

    # -- connections ---------------------------------------------------------

    def connect(self, device_id: str, service_name: str,
                require_advertised: bool = False) -> Generator:
        """Process generator: connect to a remote service.

        Args:
            device_id: Target device.
            service_name: Remote service name.
            require_advertised: Refuse (with
                :class:`ServiceNotFoundError`) unless service discovery
                has already listed the service on that device.
        """
        if require_advertised:
            advertised = any(service.name == service_name
                             for service in self.daemon.service_listing(device_id))
            if not advertised:
                raise ServiceNotFoundError(
                    f"{device_id!r} does not advertise {service_name!r}")
        yield Delay(LOCAL_IPC_LATENCY_S)
        connection = yield from self.daemon.connect(device_id, service_name)
        return connection

    # -- monitoring ------------------------------------------------------------

    def monitor(self, device_id: str, *,
                on_appear: Callable[[str], None] | None = None,
                on_disappear: Callable[[str], None] | None = None
                ) -> DeviceMonitor:
        """Actively monitor a device's presence (Table 3)."""
        return DeviceMonitor(self.daemon, device_id,
                             on_appear=on_appear, on_disappear=on_disappear)
