"""Store-and-forward messaging for members who walked away.

§5.1 names the core weakness of an instantaneous social network:
"as it is not operated from any centralized servers, some long
distance traveling members could never be together again".  Short of a
server, the practical mitigation is an outbox: messages to a member
who is *not currently around* are queued on the sender's device and
flushed automatically the next time dynamic group discovery sees that
member again.

The queue hooks the engine's probe log: a successful probe of a device
means its member is online and reachable, which is exactly the moment
to deliver.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Generator

from repro.community import protocol
from repro.community.app import CommunityApp
from repro.net.retry import is_degraded


@dataclass(frozen=True)
class QueuedMessage:
    """One message awaiting its recipient's return."""

    member_id: str
    subject: str
    body: str
    queued_at: float


@dataclass
class DeliveryReceipt:
    """Outcome of one flush attempt."""

    message: QueuedMessage
    delivered_at: float
    status: str


class OfflineOutbox:
    """Per-device queue of messages to currently-absent members."""

    def __init__(self, app: CommunityApp) -> None:
        self.app = app
        self.env = app.library.daemon.env
        self.pending: list[QueuedMessage] = []
        self.receipts: list[DeliveryReceipt] = []
        self._installed = False

    def install(self) -> None:
        """Hook member-reappearance events (idempotent)."""
        if self._installed:
            return
        self._installed = True
        self.app.library.daemon.on_services_updated(self._on_services_updated)

    # -- sending -------------------------------------------------------------

    def send_or_queue(self, member_id: str, subject: str,
                      body: str) -> Generator:
        """Try to send now; queue for later delivery when the member is
        not around.  Returns ``"QUEUED"`` or the live send status.

        A degraded send (every neighbour's link failed despite retries)
        queues too: from the sender's perspective the member is as good
        as absent, and the flush-on-reappearance machinery is exactly
        the right recovery path.
        """
        status = yield from self.app.client.send_message(member_id, subject,
                                                         body)
        if status == protocol.NO_MEMBERS_YET or is_degraded(status):
            self.pending.append(QueuedMessage(member_id, subject, body,
                                              self.env.now))
            return "QUEUED"
        return status

    def queued_for(self, member_id: str) -> list[QueuedMessage]:
        """Messages currently waiting for one member."""
        return [message for message in self.pending
                if message.member_id == member_id]

    # -- flushing -------------------------------------------------------------

    def _on_services_updated(self, device_id: str) -> None:
        if not self.pending:
            return
        # The probe that follows service discovery identifies the
        # member, and takes a connection setup plus a round trip; try
        # the flush a few times so one firing is enough however slow
        # the probe is.
        for delay in (1.0, 5.0, 12.0):
            self.env.call_in(delay, self._flush_known_members)

    def _flush_known_members(self) -> None:
        if not self.pending:
            return
        online = {entry.member_id
                  for entry in self.app.engine.directory.values()}
        due = [message for message in self.pending
               if message.member_id in online]
        if due:
            self.env.spawn(self._deliver(due),
                           name=f"outbox:{self.app.device_id}")

    def _deliver(self, due: list[QueuedMessage]) -> Generator:
        for message in due:
            if message not in self.pending:
                continue  # a concurrent flush beat us to it
            status = yield from self.app.client.send_message(
                message.member_id, message.subject, message.body)
            if status == protocol.SUCCESSFULLY_WRITTEN:
                self.pending.remove(message)
                self.receipts.append(DeliveryReceipt(message, self.env.now,
                                                     status))
            # On any other status the message stays queued for the
            # next reappearance.
        return None
