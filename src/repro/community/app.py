"""The PeerHood Community application: one facade per device.

Bundles the pieces the paper's reference implementation runs on every
PTD — the always-on server, the user-driven client, and the dynamic
group discovery engine — behind the menu-level operations of Figure 10
and Table 7.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

from repro.community.client import CommunityClient
from repro.community.connections import PeerConnectionPool
from repro.community.discovery import DynamicGroupEngine
from repro.community.filetransfer import FileDownloader
from repro.community.profile import Profile, ProfileStore
from repro.community.semantics import ExactMatcher, SemanticMatcher
from repro.community.server import SERVICE_NAME, CommunityServer
from repro.msc.trace import MscRecorder
from repro.net.retry import Degraded, RetryPolicy, is_degraded
from repro.peerhood.library import PeerHoodLibrary


class CommunityApp:
    """Everything PeerHood Community on a single device.

    Args:
        library: The device's PeerHood library.
        recorder: Optional shared MSC recorder.
        semantic: Use a teachable :class:`SemanticMatcher` instead of
            the paper's default exact matching.
        trust_policy: Server-side policy for inbound trust requests.
        retry_policy: Retry/timeout/backoff policy the client-side
            exchanges run under (``None`` = layer defaults).
    """

    def __init__(self, library: PeerHoodLibrary,
                 recorder: MscRecorder | None = None,
                 *, semantic: bool = False,
                 trust_policy: Callable[[str], bool] | None = None,
                 retry_policy: RetryPolicy | None = None) -> None:
        self.library = library
        self.store = ProfileStore()
        self.recorder = recorder
        self.pool = PeerConnectionPool(library, SERVICE_NAME)
        matcher = SemanticMatcher() if semantic else ExactMatcher()
        self.server = CommunityServer(library, self.store, recorder,
                                      trust_policy)
        self.client = CommunityClient(library, self.store, self.pool, recorder,
                                      retry_policy=retry_policy)
        self.engine = DynamicGroupEngine(library, self.store, self.pool,
                                         matcher)
        self.downloader = FileDownloader(self.store, self.pool,
                                         retry_policy=retry_policy)

    @property
    def device_id(self) -> str:
        """Device this application instance runs on."""
        return self.library.device_id

    @property
    def profile(self) -> Profile | None:
        """The logged-in profile, if any."""
        return self.store.active

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Register the service and hook discovery (server always runs)."""
        self.server.start()
        self.engine.start()

    def stop(self) -> None:
        """Unregister the service and drop connections."""
        self.server.stop()
        self.pool.close_all()

    # -- account management (Table 7: Profiles) -------------------------------

    def create_profile(self, member_id: str, username: str, password: str,
                       full_name: str = "",
                       interests: list[str] | None = None) -> Profile:
        """Create a local profile (Add/Edit Profile)."""
        return self.store.create_profile(member_id, username, password,
                                         full_name, interests)

    def login(self, username: str, password: str) -> Profile:
        """Log in; the member becomes visible to the neighbourhood."""
        profile = self.store.login(username, password)
        self.engine.refresh()
        return profile

    def logout(self) -> None:
        """Log out; remote requests answer ``NO_MEMBERS_YET`` again."""
        self.store.logout()
        self.engine.refresh()

    # -- group operations (Table 7: Dynamic Groups) -----------------------------

    def groups(self) -> list[str]:
        """View all (non-empty) groups known here."""
        return self.engine.group_names()

    def my_groups(self) -> list[str]:
        """Groups the local member is in right now."""
        return self.engine.my_groups()

    def group_members(self, interest: str) -> list[str]:
        """View members of one group."""
        return self.engine.members_of(interest)

    def join_group(self, interest: str) -> None:
        """Manual group join."""
        self.engine.join_group(interest)

    def leave_group(self, interest: str) -> None:
        """Manual group leave."""
        self.engine.leave_group(interest)

    # -- trust (Table 7: Trusted Friends) ------------------------------------

    def accept_trusted(self, member_id: str) -> None:
        """Accept a member as trusted friend (owner-side action)."""
        if self.store.active is None:
            raise PermissionError("no member logged in")
        self.store.active.add_trusted(member_id)

    def remove_trusted(self, member_id: str) -> None:
        """Revoke a trusted friend."""
        if self.store.active is None:
            raise PermissionError("no member logged in")
        self.store.active.remove_trusted(member_id)

    # -- content ---------------------------------------------------------------

    def share_file(self, name: str, size_bytes: int) -> None:
        """Publish a file to trusted friends (Table 7: File Sharing)."""
        if self.store.active is None:
            raise PermissionError("no member logged in")
        self.store.active.share_file(name, size_bytes)

    # -- client operations, re-exported for discoverability ----------------------

    def view_all_members(self) -> Generator:
        """Figure 11 (View All Members)."""
        return self.client.get_online_members()

    def view_interest_list(self) -> Generator:
        """Figure 12."""
        return self.client.get_interest_list()

    def view_member_profile(self, member_id: str) -> Generator:
        """Figure 13 (View Other Members Profile)."""
        return self.client.view_profile(member_id)

    def comment_profile(self, member_id: str, comment: str) -> Generator:
        """Figure 14."""
        return self.client.put_profile_comment(member_id, comment)

    def view_trusted_friends(self, member_id: str) -> Generator:
        """Figure 15."""
        return self.client.view_trusted_friends(member_id)

    def view_shared_content(self, member_id: str) -> Generator:
        """Figure 16."""
        return self.client.view_shared_content(member_id)

    def send_message(self, member_id: str, subject: str, body: str) -> Generator:
        """Figure 17 (Send/Receive Messages)."""
        return self.client.send_message(member_id, subject, body)

    def send_group_message(self, interest: str, subject: str,
                           body: str) -> Generator:
        """Message every current member of one interest group.

        The "interact with each other easily" promise of §3.3, applied
        group-wide: one PS_MSG per member, skipping ourselves.
        Membership is resolved live (local registry merged with a
        ``PS_GETINTERESTEDMEMBERLIST`` broadcast) so that a manually
        joined group — whose interest we do not hold, and which the
        local engine therefore never populated — still reaches the
        members who do hold it.  Returns ``{member_id: status}``.
        """
        active = self.store.active
        if active is None:
            raise PermissionError("no member logged in")
        recipients = set(self.engine.members_of(interest))
        interested = yield from self.client.get_interested_members(interest)
        if not is_degraded(interested):
            recipients.update(member["member_id"] for member in interested)
        recipients.discard(active.member_id)
        outcomes: dict[str, str] = {}
        for member_id in sorted(recipients):
            status = yield from self.client.send_message(member_id, subject,
                                                         body)
            outcomes[member_id] = status
        return outcomes

    def download_file(self, member_id: str, name: str) -> Generator:
        """Fetch one shared file from a trusted friend, chunk by chunk.

        §1: the trusted peer "can view what files the accepting peer
        has shared and use them if needed" — this is the using part.
        Locates the member's device first, then drives the chunked
        download; returns the final
        :class:`~repro.community.filetransfer.TransferProgress`.
        """
        device_id = yield from self.client.check_member_location(member_id)
        if is_degraded(device_id):
            # Location broadcast never completed; hand the typed
            # degraded result to the caller rather than guessing.
            return device_id
        if device_id is None:
            report = self.client.last_exchange
            if report is not None and report.failed:
                # Some peers never answered — the member may well be on
                # one of them, so "not found" is not trustworthy.
                self.client.retry_counters.record_degraded()
                return Degraded(
                    operation=report.operation,
                    reason=f"member {member_id!r} not located; "
                           f"{len(report.failed)} peers unreachable",
                    attempts=report.attempts,
                    failed_peers=report.failed)
            raise LookupError(f"no neighbouring device hosts {member_id!r}")
        progress = yield from self.downloader.download(
            device_id, member_id, name, self.library.daemon.env)
        return progress
