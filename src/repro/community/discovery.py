"""Dynamic group discovery — the paper's core contribution (Figure 6).

The algorithm, straight from the figure:

1. Collect the active user's personal interests.
2. Get the list of all nearby devices (from PeerHood).
3. For each personal interest, compare it with every nearby member's
   interests; on a match, both the active user and the matching member
   are listed in that interest's group.

The engine runs this *reactively*: whenever PeerHood's service
discovery reports a neighbour advertising the PeerHoodCommunity
service, the engine fetches that member's interest list over the
``PS_GETINTERESTLIST`` operation and folds it into the group registry.
When PeerHood reports the device lost, the member leaves every group
("if any remote device is unreachable, than that remote device is
considered as disconnected and removed from all associated interest
groups", §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Generator

from repro.community import protocol
from repro.community.connections import PeerConnectionPool
from repro.community.groups import GroupRegistry
from repro.community.profile import ProfileStore
from repro.community.semantics import ExactMatcher, SemanticMatcher
from repro.peerhood.library import PeerHoodLibrary


@dataclass(frozen=True)
class ProbeRecord:
    """One completed interest probe of a neighbour (for benches).

    Attributes:
        device_id: Probed device.
        started_at / finished_at: Virtual-time window of the probe.
        member_id: Member found on the device (``None`` if nobody was
            logged in).
        matched: Interests that matched and formed/extended groups.
    """

    device_id: str
    started_at: float
    finished_at: float
    member_id: str | None
    matched: tuple[str, ...]


@dataclass
class _PeerEntry:
    member_id: str
    interests: list[str]


class DynamicGroupEngine:
    """Maintains the local device's dynamic interest groups."""

    def __init__(self, library: PeerHoodLibrary, store: ProfileStore,
                 pool: PeerConnectionPool,
                 matcher: ExactMatcher | SemanticMatcher | None = None,
                 *, retry_interval: float = 15.0, max_retries: int = 3,
                 reconcile_interval: float = 30.0) -> None:
        self.library = library
        self.store = store
        self.pool = pool
        self.matcher = matcher if matcher is not None else ExactMatcher()
        self.env = library.daemon.env
        self.groups = GroupRegistry()
        self.directory: dict[str, _PeerEntry] = {}
        self.probe_log: list[ProbeRecord] = []
        self.retry_interval = retry_interval
        self.max_retries = max_retries
        self.reconcile_interval = reconcile_interval
        self.reconcile_probes = 0
        self._probing: set[str] = set()
        self._started = False

    def start(self) -> None:
        """Hook into PeerHood's discovery events."""
        if self._started:
            return
        self._started = True
        daemon = self.library.daemon
        daemon.on_services_updated(self._handle_services_updated)
        daemon.on_device_lost(self._handle_device_lost)
        # Neighbours discovered before the engine started still count.
        for neighbor in daemon.device_listing():
            if neighbor.services_fresh:
                self._handle_services_updated(neighbor.device_id)
        if self.reconcile_interval > 0:
            self.env.spawn(self._reconcile_loop(),
                           name=f"dgd:{self.library.device_id}:reconcile")

    # -- event handlers -------------------------------------------------------

    def _handle_services_updated(self, device_id: str) -> None:
        if not self._started:
            return
        services = self.library.get_service_listing(device_id)
        if not any(service.name == self.pool.service_name
                   for service in services):
            return
        if device_id in self._probing:
            return
        self._probing.add(device_id)
        self.env.spawn(self._probe(device_id, attempt=0),
                       name=f"dgd:{self.library.device_id}:probe:{device_id}")

    def _handle_device_lost(self, device_id: str) -> None:
        self.pool.drop(device_id)
        entry = self.directory.pop(device_id, None)
        self._probing.discard(device_id)
        if entry is None:
            return
        # The member leaves every group *unless the same member is still
        # present via another device* (multi-device users).
        if any(other.member_id == entry.member_id
               for other in self.directory.values()):
            return
        self.groups.remove_member_everywhere(entry.member_id, self.env.now,
                                             reason="departed")

    # -- probing --------------------------------------------------------------

    def _probe(self, device_id: str, attempt: int) -> Generator:
        started = self.env.now
        request = protocol.make_request(protocol.PS_GETINTERESTLIST)
        try:
            connection = yield from self.pool.ensure(device_id)
            connection.send(request)
            payload = yield connection.recv()
        except (ConnectionError, OSError):
            # Transient link failure: the peer is probably still there
            # (churn, flap).  Retry like the nobody-logged-in case
            # instead of silently forgetting the device.
            self.pool.drop(device_id)
            self._probing.discard(device_id)
            if attempt < self.max_retries:
                self.env.call_in(self.retry_interval,
                                 self._retry_probe, device_id, attempt + 1)
            return None
        if payload is None:
            self._probing.discard(device_id)
            if attempt < self.max_retries:
                self.env.call_in(self.retry_interval,
                                 self._retry_probe, device_id, attempt + 1)
            return None
        try:
            status = protocol.response_status(payload)
        except protocol.ProtocolError:
            # Corrupted-in-flight reply; same treatment as a lost one.
            self.pool.drop(device_id)
            self._probing.discard(device_id)
            if attempt < self.max_retries:
                self.env.call_in(self.retry_interval,
                                 self._retry_probe, device_id, attempt + 1)
            return None
        if status == protocol.NO_MEMBERS_YET:
            # Nobody logged in over there yet; retry a few times.
            self._probing.discard(device_id)
            if attempt < self.max_retries:
                self.env.call_in(self.retry_interval,
                                 self._retry_probe, device_id, attempt + 1)
            return None
        if status != protocol.STATUS_OK:
            self._probing.discard(device_id)
            if status == protocol.BAD_REQUEST and attempt < self.max_retries:
                # Our request corrupted en route; the probe is worth
                # repeating — the peer itself is fine.
                self.env.call_in(self.retry_interval,
                                 self._retry_probe, device_id, attempt + 1)
            return None
        member_id = payload["member_id"]
        interests = list(payload.get("interests", []))
        self.directory[device_id] = _PeerEntry(member_id, interests)
        matched = self._match_member(member_id, interests)
        self.probe_log.append(ProbeRecord(
            device_id=device_id, started_at=started,
            finished_at=self.env.now, member_id=member_id,
            matched=tuple(matched)))
        self._probing.discard(device_id)
        return matched

    def reconcile(self) -> int:
        """Probe service-advertising neighbours missing from the directory.

        Anti-entropy pass for the fault-injected world: a probe chain
        that exhausted its retries during a bad patch leaves a visible
        neighbour with no directory entry — and no event will ever
        re-probe it, because ``services_updated`` fires once per
        (re)discovery.  Returns the number of probes started.
        """
        started = 0
        for neighbor in self.library.daemon.device_listing():
            device_id = neighbor.device_id
            if device_id in self.directory or device_id in self._probing:
                continue
            services = self.library.get_service_listing(device_id)
            if not any(service.name == self.pool.service_name
                       for service in services):
                continue
            self._probing.add(device_id)
            self.reconcile_probes += 1
            started += 1
            self.env.spawn(
                self._probe(device_id, attempt=0),
                name=f"dgd:{self.library.device_id}:reconcile:{device_id}")
        return started

    def _reconcile_loop(self) -> Generator:
        from repro.simenv import Delay
        while self._started and self.library.daemon.running:
            yield Delay(self.reconcile_interval)
            if not self._started or not self.library.daemon.running:
                break
            self.reconcile()
        return None

    def _retry_probe(self, device_id: str, attempt: int) -> None:
        if device_id in self._probing or device_id in self.directory:
            return
        if not self.library.daemon.knows(device_id):
            return
        self._probing.add(device_id)
        self.env.spawn(self._probe(device_id, attempt),
                       name=f"dgd:{self.library.device_id}:reprobe:{device_id}")

    # -- the Figure 6 algorithm ------------------------------------------------

    def _match_member(self, member_id: str, interests: list[str]) -> list[str]:
        """Compare one member's interests with ours; update groups."""
        active = self.store.active
        if active is None:
            return []
        own_member = active.member_id
        matched: list[str] = []
        for own_interest in active.interests:
            canonical = self.matcher.canonical(own_interest)
            for remote_interest in interests:
                if self.matcher.same(own_interest, remote_interest):
                    group = self.groups.ensure(canonical, self.env.now)
                    group.add(member_id, self.env.now, reason="dynamic")
                    group.add(own_member, self.env.now, reason="dynamic")
                    matched.append(canonical)
                    break
        return matched

    def refresh(self) -> None:
        """Re-run matching over every known neighbour.

        Needed after the local user edits their interests or after
        semantics teaching changed canonical forms.  Manual memberships
        survive; dynamic memberships are recomputed.
        """
        active = self.store.active
        now = self.env.now
        for group_name in self.groups.names():
            group = self.groups.get(group_name)
            if group is None:
                continue
            for member_id in list(group.members):
                if member_id not in group.manual_members:
                    group.remove(member_id, now, reason="dynamic")
        if active is None:
            return
        for entry in self.directory.values():
            self._match_member(entry.member_id, entry.interests)

    # -- user-facing group operations (Table 7) ---------------------------------

    def group_names(self) -> list[str]:
        """View All Groups."""
        return [group.interest for group in self.groups.non_empty()]

    def members_of(self, interest: str) -> list[str]:
        """View Members of Group."""
        group = self.groups.get(self.matcher.canonical(interest))
        if group is None:
            return []
        return sorted(group.members)

    def my_groups(self) -> list[str]:
        """Groups the local member currently belongs to."""
        active = self.store.active
        if active is None:
            return []
        return [name for name in self.groups.groups_of(active.member_id)
                if self.groups.get(name) is not None
                and len(self.groups.get(name)) > 0]

    def join_group(self, interest: str) -> None:
        """Join a group manually (Table 7: Join/Leave Manually)."""
        active = self.store.active
        if active is None:
            raise PermissionError("no member logged in")
        canonical = self.matcher.canonical(interest)
        group = self.groups.ensure(canonical, self.env.now)
        group.add(active.member_id, self.env.now, reason="manual")

    def leave_group(self, interest: str) -> None:
        """Leave a group manually."""
        active = self.store.active
        if active is None:
            raise PermissionError("no member logged in")
        group = self.groups.get(self.matcher.canonical(interest))
        if group is not None:
            group.remove(active.member_id, self.env.now, reason="manual")

    def teach_semantics(self, term_a: str, term_b: str) -> None:
        """Combine two interest terms meaning the same issue (§5.1).

        Only meaningful with a :class:`SemanticMatcher`; merges the two
        terms' groups and re-runs matching so previously-split groups
        (the biking/cycling problem of §5.2.6) become one.
        """
        if not isinstance(self.matcher, SemanticMatcher):
            raise TypeError("semantic teaching requires a SemanticMatcher")
        self.matcher.teach(term_a, term_b)
        # Any existing group whose name is no longer canonical folds
        # into the canonical group.
        for name in self.groups.names():
            canonical = self.matcher.canonical(name)
            if canonical != name:
                self.groups.merge(name, canonical, self.env.now)
        self.refresh()
