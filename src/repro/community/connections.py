"""Persistent connections from one client to nearby community servers.

The paper's MSCs all begin with the client already holding connections
to "all the connected servers" and sending each request "to all the
connected servers simultaneously".  The pool maintains those
connections: it opens one per neighbour advertising the service, reuses
it across requests, and drops it when the peer disappears or the link
dies.

Bluetooth adds a hard ceiling the paper's four-device tests never hit:
a piconet master supports at most seven active slaves, and a pool
holding seven open links starves every *other* Bluetooth consumer on
the device — most damagingly the PeerHood daemon's transient service
queries, which then fail forever and leave visible neighbours
permanently serviceless.  The pool therefore caps its pooled Bluetooth
links below the piconet limit and releases the least-recently-used one
when the cap is hit; an evicted neighbour just pays connection setup
again on its next request.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.net.connection import Connection
from repro.peerhood.library import PeerHoodLibrary
from repro.radio.bluetooth import Piconet

#: Pooled Bluetooth links kept open at once.  Two of the piconet's
#: seven slots stay free for transient traffic (PHD control queries,
#: file transfers) so the pool can never wedge the whole radio.
BLUETOOTH_POOL_CAP = Piconet.MAX_ACTIVE_SLAVES - 2


class PeerConnectionPool:
    """Connection cache keyed by remote device id."""

    def __init__(self, library: PeerHoodLibrary, service_name: str) -> None:
        self.library = library
        self.service_name = service_name
        #: Insertion order doubles as recency: reused connections are
        #: re-inserted, so iteration starts at the least recently used.
        self._connections: dict[str, Connection] = {}
        self.opened_total = 0
        self.evicted_total = 0

    # -- maintenance ------------------------------------------------------

    def ensure(self, device_id: str) -> Generator:
        """Process generator returning an open connection to the device.

        Reuses a live cached connection; otherwise establishes a new
        one (paying connection setup time), evicting the least recently
        used Bluetooth link first when the Bluetooth cap is reached.
        Propagates connection errors to the caller.
        """
        cached = self._connections.pop(device_id, None)
        if cached is not None and not cached.closed:
            self._connections[device_id] = cached  # re-insert: now MRU
            return cached
        self._make_bluetooth_room()
        connection = yield from self.library.connect(device_id, self.service_name)
        self._connections[device_id] = connection
        self.opened_total += 1
        if connection.technology.name == "bluetooth":
            self._make_bluetooth_room(keep=device_id)
        return connection

    def _make_bluetooth_room(self, keep: str | None = None) -> None:
        """Evict LRU Bluetooth links until below :data:`BLUETOOTH_POOL_CAP`.

        Run *before* connecting (a full piconet would refuse the page
        outright) and again after (the new link itself may be the one
        over Bluetooth).  ``keep`` shields the just-opened connection.
        """
        while True:
            bluetooth_ids = [
                device_id for device_id, connection
                in self._connections.items()
                if not connection.closed
                and connection.technology.name == "bluetooth"]
            limit = BLUETOOTH_POOL_CAP + (1 if keep in bluetooth_ids else 0)
            if len(bluetooth_ids) < limit:
                return
            victim = next(device_id for device_id in bluetooth_ids
                          if device_id != keep)
            self.evicted_total += 1
            self.drop(victim)

    def drop(self, device_id: str) -> None:
        """Close and forget the connection to one device."""
        connection = self._connections.pop(device_id, None)
        if connection is not None:
            connection.close()

    def close_all(self) -> None:
        """Close every pooled connection (application shutdown)."""
        for device_id in list(self._connections):
            self.drop(device_id)

    # -- queries --------------------------------------------------------------

    def connection_to(self, device_id: str) -> Connection | None:
        """The live cached connection, or ``None``."""
        connection = self._connections.get(device_id)
        if connection is not None and connection.closed:
            del self._connections[device_id]
            return None
        return connection

    def connected_ids(self) -> list[str]:
        """Devices with live pooled connections, sorted."""
        return sorted(device_id for device_id, connection
                      in list(self._connections.items())
                      if not connection.closed)

    def __len__(self) -> int:
        return len(self.connected_ids())
