"""Persistent connections from one client to nearby community servers.

The paper's MSCs all begin with the client already holding connections
to "all the connected servers" and sending each request "to all the
connected servers simultaneously".  The pool maintains those
connections: it opens one per neighbour advertising the service, reuses
it across requests, and drops it when the peer disappears or the link
dies.
"""

from __future__ import annotations

from typing import Generator

from repro.net.connection import Connection
from repro.peerhood.library import PeerHoodLibrary


class PeerConnectionPool:
    """Connection cache keyed by remote device id."""

    def __init__(self, library: PeerHoodLibrary, service_name: str) -> None:
        self.library = library
        self.service_name = service_name
        self._connections: dict[str, Connection] = {}
        self.opened_total = 0

    # -- maintenance ------------------------------------------------------

    def ensure(self, device_id: str) -> Generator:
        """Process generator returning an open connection to the device.

        Reuses a live cached connection; otherwise establishes a new
        one (paying connection setup time).  Propagates connection
        errors to the caller.
        """
        cached = self._connections.get(device_id)
        if cached is not None and not cached.closed:
            return cached
        connection = yield from self.library.connect(device_id, self.service_name)
        self._connections[device_id] = connection
        self.opened_total += 1
        return connection

    def drop(self, device_id: str) -> None:
        """Close and forget the connection to one device."""
        connection = self._connections.pop(device_id, None)
        if connection is not None:
            connection.close()

    def close_all(self) -> None:
        """Close every pooled connection (application shutdown)."""
        for device_id in list(self._connections):
            self.drop(device_id)

    # -- queries --------------------------------------------------------------

    def connection_to(self, device_id: str) -> Connection | None:
        """The live cached connection, or ``None``."""
        connection = self._connections.get(device_id)
        if connection is not None and connection.closed:
            del self._connections[device_id]
            return None
        return connection

    def connected_ids(self) -> list[str]:
        """Devices with live pooled connections, sorted."""
        return sorted(device_id for device_id, connection
                      in list(self._connections.items())
                      if not connection.closed)

    def __len__(self) -> int:
        return len(self.connected_ids())
