"""Canonical PS_* exchange scripts for transport conformance.

``tests/conformance`` replays each script below through every transport
backend against an identically prepared server and asserts the captured
wire transcripts are byte-identical frame-for-frame.  The scripts are
*data*, not test code, and they live in the source tree on purpose: the
PROTO002 analyzer rule reads this module and fails the build when a
declared PS_* operation is missing from the scripts — a new protocol
operation therefore cannot ship without cross-backend wire coverage.

A script is a sequence of steps against one server device:

* :class:`Send` — transmit one request payload, await the response,
  optionally assert its status;
* :class:`Mutate` — apply a local state change to the *server's*
  profile store between requests (logins, trust grants, interest
  edits — things the paper's UI does off-protocol);
* :class:`Reconnect` — drop the connection and dial a fresh one,
  modelling the churn that makes resume-from-offset matter.

Every exchange runs against a **fresh** :func:`build_server_store`, so
scripts are order-independent and each transcript is a deterministic
function of the script alone.  No response payload embeds timestamps
(``Profile.public_view`` strips them), which is what makes the
byte-identical assertion possible across backends with different
clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.community import protocol
from repro.community.filetransfer import PS_GETFILECHUNK
from repro.community.profile import ProfileStore

#: The member served by the conformance server.
SERVER_MEMBER = "bob"
#: A second, initially logged-out profile on the same device.
OFFLINE_MEMBER = "dave"
#: The remote member driving every script.
CLIENT_MEMBER = "alice"

#: Chunk size used by the file-transfer script: 60 kB / 24 kB = three
#: chunks, the third short and flagged ``eof``.
CONFORMANCE_CHUNK_BYTES = 24 * 1024

_MIXTAPE_BYTES = 60_000
_NOTES_BYTES = 2_000
_PASSWORD = "pw"


def build_server_store() -> ProfileStore:
    """The server-side profile store every script starts from."""
    store = ProfileStore()
    store.create_profile(SERVER_MEMBER, SERVER_MEMBER, _PASSWORD,
                         full_name="Bob B.",
                         interests=["football", "music"])
    store.create_profile(OFFLINE_MEMBER, OFFLINE_MEMBER, _PASSWORD,
                         full_name="Dave D.")
    profile = store.login(SERVER_MEMBER, _PASSWORD)
    profile.share_file("mixtape.mp3", _MIXTAPE_BYTES)
    profile.share_file("notes.txt", _NOTES_BYTES)
    return store


@dataclass(frozen=True)
class Send:
    """Send one request payload; optionally assert the reply status."""

    request: dict
    expect_status: str | None = None


@dataclass(frozen=True)
class Mutate:
    """Apply a server-side state change between requests."""

    label: str
    apply: Callable[[ProfileStore], None]


@dataclass(frozen=True)
class Reconnect:
    """Drop the connection and dial a fresh one before continuing."""


Step = Send | Mutate | Reconnect


@dataclass(frozen=True)
class Exchange:
    """One named conformance script."""

    name: str
    steps: tuple[Step, ...] = field(default_factory=tuple)


def _trust_client(store: ProfileStore) -> None:
    active = store.active
    assert active is not None
    active.add_trusted(CLIENT_MEMBER)


def _login_offline_member(store: ProfileStore) -> None:
    store.login(OFFLINE_MEMBER, _PASSWORD)


def _add_chess_interest(store: ProfileStore) -> None:
    active = store.active
    assert active is not None
    active.add_interest("chess")


def _remove_chess_interest(store: ProfileStore) -> None:
    active = store.active
    assert active is not None
    active.remove_interest("chess")


def _chunk_request(offset: object) -> dict:
    return protocol.make_request(
        PS_GETFILECHUNK, member_id=SERVER_MEMBER, requester=CLIENT_MEMBER,
        name="mixtape.mp3", offset=offset, length=CONFORMANCE_CHUNK_BYTES)


DISCOVERY_HANDSHAKE = Exchange("discovery_handshake", (
    Send(protocol.make_request(protocol.PS_GETINTERESTLIST),
         expect_status=protocol.STATUS_OK),
    Send(protocol.make_request(protocol.PS_GETONLINEMEMBERLIST),
         expect_status=protocol.STATUS_OK),
    Send(protocol.make_request(protocol.PS_CHECKMEMBERID,
                               member_id=SERVER_MEMBER),
         expect_status=protocol.STATUS_OK),
    Send(protocol.make_request(protocol.PS_CHECKMEMBERID,
                               member_id="zoe"),
         expect_status=protocol.STATUS_OK),
))

PROFILE_EXCHANGE = Exchange("profile_exchange", (
    Send(protocol.make_request(protocol.PS_GETPROFILE,
                               member_id=SERVER_MEMBER,
                               requester=CLIENT_MEMBER),
         expect_status=protocol.STATUS_OK),
    Send(protocol.make_request(protocol.PS_ADDPROFILECOMMENT,
                               member_id=SERVER_MEMBER,
                               requester=CLIENT_MEMBER,
                               comment="nice mixtape"),
         expect_status=protocol.SUCCESSFULLY_WRITTEN),
    # The second fetch proves the comment round-trips through state.
    Send(protocol.make_request(protocol.PS_GETPROFILE,
                               member_id=SERVER_MEMBER,
                               requester=CLIENT_MEMBER),
         expect_status=protocol.STATUS_OK),
    Send(protocol.make_request(protocol.PS_GETTRUSTEDFRIEND,
                               member_id=SERVER_MEMBER),
         expect_status=protocol.STATUS_OK),
    Send(protocol.make_request(protocol.PS_GETPROFILE,
                               member_id="zoe", requester=CLIENT_MEMBER),
         expect_status=protocol.NO_MEMBERS_YET),
))

GROUP_JOIN_LEAVE = Exchange("group_join_leave", (
    Send(protocol.make_request(protocol.PS_GETINTERESTEDMEMBERLIST,
                               interest="football"),
         expect_status=protocol.STATUS_OK),
    Send(protocol.make_request(protocol.PS_GETINTERESTEDMEMBERLIST,
                               interest="chess"),
         expect_status=protocol.STATUS_OK),
    Mutate("bob joins the chess group", _add_chess_interest),
    Send(protocol.make_request(protocol.PS_GETINTERESTEDMEMBERLIST,
                               interest="chess"),
         expect_status=protocol.STATUS_OK),
    Mutate("bob leaves the chess group", _remove_chess_interest),
    Send(protocol.make_request(protocol.PS_GETINTERESTEDMEMBERLIST,
                               interest="chess"),
         expect_status=protocol.STATUS_OK),
))

TRUST_AND_SHARED_CONTENT = Exchange("trust_and_shared_content", (
    Send(protocol.make_request(protocol.PS_CHECKTRUSTED,
                               member_id=SERVER_MEMBER,
                               requester=CLIENT_MEMBER),
         expect_status=protocol.NOT_TRUSTED_YET),
    # Default policy: trust is granted by the owner, never claimed.
    Send(protocol.make_request(protocol.PS_ADDTRUSTED,
                               member_id=SERVER_MEMBER,
                               requester=CLIENT_MEMBER),
         expect_status=protocol.UNSUCCESSFULL),
    Mutate("bob trusts alice", _trust_client),
    Send(protocol.make_request(protocol.PS_CHECKTRUSTED,
                               member_id=SERVER_MEMBER,
                               requester=CLIENT_MEMBER),
         expect_status=protocol.STATUS_OK),
    Send(protocol.make_request(protocol.PS_GETSHAREDCONTENT,
                               member_id=SERVER_MEMBER,
                               requester=CLIENT_MEMBER),
         expect_status=protocol.STATUS_OK),
))

BROWSE_SHARED_CONTENT = Exchange("browse_shared_content", (
    Send(protocol.make_request(protocol.PS_SHAREDCONTENT,
                               requester=CLIENT_MEMBER),
         expect_status=protocol.NOT_TRUSTED_YET),
    Mutate("bob trusts alice", _trust_client),
    Send(protocol.make_request(protocol.PS_SHAREDCONTENT,
                               requester=CLIENT_MEMBER),
         expect_status=protocol.STATUS_OK),
))

FILE_TRANSFER_RESUME = Exchange("file_transfer_resume", (
    Mutate("bob trusts alice", _trust_client),
    Send(_chunk_request(offset=0), expect_status=protocol.STATUS_OK),
    # The link drops mid-download; the downloader re-attaches and
    # resumes from the current offset instead of starting over.
    Reconnect(),
    Send(_chunk_request(offset=CONFORMANCE_CHUNK_BYTES),
         expect_status=protocol.STATUS_OK),
    Send(_chunk_request(offset=2 * CONFORMANCE_CHUNK_BYTES),
         expect_status=protocol.STATUS_OK),
    Send(_chunk_request(offset=-1), expect_status=protocol.UNSUCCESSFULL),
))

OFFLINE_QUEUE_DRAIN = Exchange("offline_queue_drain", (
    Send(protocol.make_request(protocol.PS_MSG,
                               receiver=OFFLINE_MEMBER,
                               sender=CLIENT_MEMBER,
                               subject="ping", body="are you there?"),
         expect_status=protocol.NO_MEMBERS_YET),
    Mutate("dave comes online", _login_offline_member),
    # The queued message is re-sent once the member is reachable.
    Send(protocol.make_request(protocol.PS_MSG,
                               receiver=OFFLINE_MEMBER,
                               sender=CLIENT_MEMBER,
                               subject="ping", body="are you there?"),
         expect_status=protocol.SUCCESSFULLY_WRITTEN),
    Send(protocol.make_request(protocol.PS_MSG,
                               receiver="zoe", sender=CLIENT_MEMBER,
                               subject="ping", body="anyone?"),
         expect_status=protocol.NO_MEMBERS_YET),
))

MALFORMED_REQUESTS = Exchange("malformed_requests", (
    # Raw payloads bypass make_request validation on purpose: the
    # server must answer BAD_REQUEST identically on every backend.
    Send({"op": "PS_BOGUS"}, expect_status=protocol.BAD_REQUEST),
    Send({"no_op": 1}, expect_status=protocol.BAD_REQUEST),
    # Fields present but of the wrong shape (offset not an int); trust
    # is granted first so the request reaches the range parser.
    Mutate("bob trusts alice", _trust_client),
    Send(_chunk_request(offset="x"), expect_status=protocol.BAD_REQUEST),
    # The connection still serves valid requests afterwards.
    Send(protocol.make_request(protocol.PS_GETONLINEMEMBERLIST),
         expect_status=protocol.STATUS_OK),
))

#: Every conformance script, in replay order.
CONFORMANCE_EXCHANGES: tuple[Exchange, ...] = (
    DISCOVERY_HANDSHAKE,
    PROFILE_EXCHANGE,
    GROUP_JOIN_LEAVE,
    TRUST_AND_SHARED_CONTENT,
    BROWSE_SHARED_CONTENT,
    FILE_TRANSFER_RESUME,
    OFFLINE_QUEUE_DRAIN,
    MALFORMED_REQUESTS,
)


def exchange_named(name: str) -> Exchange:
    """Look up one script by name (test parametrisation helper)."""
    for exchange in CONFORMANCE_EXCHANGES:
        if exchange.name == name:
            return exchange
    raise KeyError(f"no conformance exchange named {name!r}")
