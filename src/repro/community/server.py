"""The PeerHood Community server (§5.2.3.1).

"Every PTD must contain the application server and server must run
continuously.  As the server is started, it registers the service named
'PeerHoodCommunity' into the Peerhood Daemon.  The server always stays
in the listening state for any request from the remote clients."

The request/response core is transport-free: :class:`CommunityService`
maps one request payload to one response payload (the Table 6
dispatch), and any backend can pump it — the simulated
:class:`CommunityServer` below registers it with the PeerHood daemon
and loops over a simulated connection, while :class:`repro.net.tcp.TcpServer`
drives the same ``handle_request`` over real sockets.  Keeping the core
identical on both paths is what makes the conformance suite's
byte-identical-transcript assertion meaningful.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

from repro.community import protocol
from repro.community.filetransfer import PS_GETFILECHUNK, FileTransferService
from repro.community.profile import MailMessage, Profile, ProfileStore
from repro.msc.trace import MscRecorder
from repro.net.connection import Connection
from repro.peerhood.library import PeerHoodLibrary

#: The service name of Figure 8.
SERVICE_NAME = "PeerHoodCommunity"


class CommunityService:
    """Transport-free request/response core of the community server.

    Args:
        store: The device's profile store; the *active* profile is what
            remote peers see as the online member.
        device_id: Label for this endpoint in traces.
        clock: Source of the timestamps written into profile state
            (visit times, mail ``sent_at``).  ``None`` pins the clock
            to 0.0 — fine for backends with no time model, since no
            response payload ever embeds a timestamp.
        recorder: Optional MSC recorder shared with clients.
        trust_policy: Decides whether a ``PS_ADDTRUSTED`` request from
            a given member is accepted; defaults to rejecting, matching
            the paper where trust is granted by the owner, not claimed
            by the requester.
    """

    def __init__(self, store: ProfileStore, *, device_id: str = "server",
                 clock: Callable[[], float] | None = None,
                 recorder: MscRecorder | None = None,
                 trust_policy: Callable[[str], bool] | None = None) -> None:
        self.store = store
        self.device_id = device_id
        self.recorder = recorder
        self.trust_policy = trust_policy
        self.requests_served = 0
        #: Requests that failed protocol validation (malformed or
        #: corrupted-in-flight frames answered with ``BAD_REQUEST``).
        self.bad_requests = 0
        #: Replies we could not deliver because the link died first.
        self.send_failures = 0
        self.file_service = FileTransferService(store)
        self._clock = clock

    def now(self) -> float:
        """Timestamp for profile-state writes (never sent on the wire)."""
        return 0.0 if self._clock is None else self._clock()

    # -- the request/response pump core --------------------------------------

    def handle_request(self, payload: Any, remote_id: str = "?") -> dict:
        """Map one request payload to one response payload.

        Every transport backend funnels through here, so the counter
        semantics are identical everywhere: a payload that fails
        protocol validation counts as a bad request only; a request
        whose handler rejects its parameter *values* counts as both
        served and bad; a remote peer can never crash the pump.
        """
        self._trace_in(remote_id, payload)
        try:
            op, params = protocol.parse_request(payload)
        except protocol.ProtocolError:
            self.bad_requests += 1
            response = protocol.make_response(protocol.BAD_REQUEST)
        else:
            try:
                response = self._dispatch(op, params)
            except (TypeError, ValueError, KeyError):
                # Required fields present but of the wrong shape
                # (e.g. a list where a string belongs).  A remote
                # peer must never be able to crash the server.
                self.bad_requests += 1
                response = protocol.make_response(protocol.BAD_REQUEST)
            self.requests_served += 1
        self._trace_out(remote_id, response)
        return response

    # -- dispatch (Table 6) -------------------------------------------------------

    def _dispatch(self, op: str, params: dict) -> dict:
        handlers = {
            protocol.PS_GETONLINEMEMBERLIST: self._handle_online_members,
            protocol.PS_GETINTERESTLIST: self._handle_interest_list,
            protocol.PS_GETINTERESTEDMEMBERLIST: self._handle_interested_members,
            protocol.PS_GETPROFILE: self._handle_get_profile,
            protocol.PS_ADDPROFILECOMMENT: self._handle_add_comment,
            protocol.PS_CHECKMEMBERID: self._handle_check_member_id,
            protocol.PS_MSG: self._handle_message,
            protocol.PS_SHAREDCONTENT: self._handle_shared_content,
            protocol.PS_GETTRUSTEDFRIEND: self._handle_trusted_friends,
            protocol.PS_CHECKTRUSTED: self._handle_check_trusted,
            protocol.PS_GETSHAREDCONTENT: self._handle_get_shared_content,
            protocol.PS_ADDTRUSTED: self._handle_add_trusted,
            PS_GETFILECHUNK: self.file_service.handle_chunk_request,
        }
        return handlers[op](params)

    def _active_or_none(self) -> Profile | None:
        return self.store.active

    def _handle_online_members(self, params: dict) -> dict:
        """Identify the online member and transmit it (Table 6 row 1)."""
        active = self._active_or_none()
        if active is None:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        return protocol.make_response(
            protocol.STATUS_OK,
            members=[{"member_id": active.member_id,
                      "full_name": active.full_name}])

    def _handle_interest_list(self, params: dict) -> dict:
        """Transmit the local member's interests (Table 6 row 2)."""
        active = self._active_or_none()
        if active is None:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        return protocol.make_response(
            protocol.STATUS_OK,
            member_id=active.member_id,
            interests=active.interests.as_list())

    def _handle_interested_members(self, params: dict) -> dict:
        """Members here sharing the given interest (Table 6 row 3)."""
        active = self._active_or_none()
        if active is None:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        members = []
        if params["interest"] in active.interests:
            members.append({"member_id": active.member_id,
                            "full_name": active.full_name})
        return protocol.make_response(protocol.STATUS_OK, members=members)

    def _handle_get_profile(self, params: dict) -> dict:
        """Transmit the local profile; record the visitor (Figure 13)."""
        active = self._active_or_none()
        if active is None or active.member_id != params["member_id"]:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        active.record_view(params["requester"], self.now())
        if self.recorder is not None:
            self.recorder.action(self.now(), f"server:{self.device_id}",
                                 "writes profile visitor")
        view = active.public_view()
        view["trusted"] = sorted(active.trusted)
        return protocol.make_response(protocol.STATUS_OK, profile=view)

    def _handle_add_comment(self, params: dict) -> dict:
        """Append a remote comment to the local profile (Figure 14)."""
        active = self._active_or_none()
        if active is None or active.member_id != params["member_id"]:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        active.record_comment(params["requester"], params["comment"],
                              self.now())
        if self.recorder is not None:
            self.recorder.action(self.now(), f"server:{self.device_id}",
                                 "writes comment to profile file")
        return protocol.make_response(protocol.SUCCESSFULLY_WRITTEN)

    def _handle_check_member_id(self, params: dict) -> dict:
        """Compare a member id with the local one (Table 6 row 6)."""
        active = self._active_or_none()
        if active is None:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        return protocol.make_response(
            protocol.STATUS_OK,
            match=active.member_id == params["member_id"])

    def _handle_message(self, params: dict) -> dict:
        """Write an inbound mail message to the inbox (Figure 17).

        A device that does not host the receiver answers
        ``NO_MEMBERS_YET`` like every member-targeted operation;
        ``UNSUCCESSFULL`` is reserved for a failed write on the right
        device (Figure 17's error arrow).
        """
        active = self._active_or_none()
        if active is None or active.member_id != params["receiver"]:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        active.deliver_mail(MailMessage(
            sender=params["sender"], receiver=params["receiver"],
            subject=params["subject"], body=params["body"],
            sent_at=self.now()))
        if self.recorder is not None:
            self.recorder.action(self.now(), f"server:{self.device_id}",
                                 "writes mail to inbox file")
        return protocol.make_response(protocol.SUCCESSFULLY_WRITTEN)

    def _handle_shared_content(self, params: dict) -> dict:
        """List local shared content for a trusted requester."""
        active = self._active_or_none()
        if active is None:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        if not active.trusts(params["requester"]):
            return protocol.make_response(protocol.NOT_TRUSTED_YET)
        return protocol.make_response(
            protocol.STATUS_OK,
            files=[{"name": shared.name, "size": shared.size_bytes}
                   for shared in active.shared_files.values()])

    def _handle_trusted_friends(self, params: dict) -> dict:
        """Send the member's trusted-friend list (Figure 15)."""
        active = self._active_or_none()
        if active is None or active.member_id != params["member_id"]:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        return protocol.make_response(protocol.STATUS_OK,
                                      trusted=sorted(active.trusted))

    def _handle_check_trusted(self, params: dict) -> dict:
        """First phase of Figure 16: is the requester trusted?"""
        active = self._active_or_none()
        if active is None or active.member_id != params["member_id"]:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        if not active.trusts(params["requester"]):
            return protocol.make_response(protocol.NOT_TRUSTED_YET)
        return protocol.make_response(protocol.STATUS_OK, trusted=True)

    def _handle_get_shared_content(self, params: dict) -> dict:
        """Second phase of Figure 16: the shared-content list."""
        active = self._active_or_none()
        if active is None or active.member_id != params["member_id"]:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        if not active.trusts(params["requester"]):
            return protocol.make_response(protocol.NOT_TRUSTED_YET)
        return protocol.make_response(
            protocol.STATUS_OK,
            files=[{"name": shared.name, "size": shared.size_bytes}
                   for shared in active.shared_files.values()])

    def _handle_add_trusted(self, params: dict) -> dict:
        """A remote member asks to be trusted; policy decides."""
        active = self._active_or_none()
        if active is None or active.member_id != params["member_id"]:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        requester = params["requester"]
        if self.trust_policy is not None and self.trust_policy(requester):
            active.add_trusted(requester)
            return protocol.make_response(protocol.SUCCESSFULLY_WRITTEN)
        return protocol.make_response(protocol.UNSUCCESSFULL)

    # -- tracing -------------------------------------------------------------

    def _trace_in(self, remote_id: str, payload: Any) -> None:
        if self.recorder is not None and isinstance(payload, dict):
            self.recorder.message(self.now(),
                                  f"client:{remote_id}",
                                  f"server:{self.device_id}",
                                  str(payload.get("op", "?")))

    def _trace_out(self, remote_id: str, response: dict) -> None:
        if self.recorder is not None:
            self.recorder.message(self.now(),
                                  f"server:{self.device_id}",
                                  f"client:{remote_id}",
                                  str(response.get("status", "?")))


class CommunityServer(CommunityService):
    """The simulated-backend server: :class:`CommunityService` wired to
    the PeerHood daemon and pumped over simulated connections.

    Args:
        library: PeerHood library of the local device.
        store: The device's profile store.
        recorder: Optional MSC recorder shared with clients.
        trust_policy: See :class:`CommunityService`.
    """

    def __init__(self, library: PeerHoodLibrary, store: ProfileStore,
                 recorder: MscRecorder | None = None,
                 trust_policy: Callable[[str], bool] | None = None) -> None:
        super().__init__(store, device_id=library.device_id,
                         recorder=recorder, trust_policy=trust_policy)
        self.library = library
        self.env = library.daemon.env
        self._started = False

    def now(self) -> float:
        """Simulated seconds; feeds profile-state writes and traces."""
        return self.env.now

    def start(self) -> None:
        """Register the service into the PHD (Figure 8)."""
        if self._started:
            return
        self.library.register_service(
            SERVICE_NAME,
            {"type": "social-networking", "version": "0.2"},
            self._accept)
        self._started = True

    def stop(self) -> None:
        """Unregister the service; existing connections die naturally."""
        if self._started:
            self.library.unregister_service(SERVICE_NAME)
            self._started = False

    # -- connection handling ------------------------------------------------

    def _accept(self, connection: Connection) -> None:
        self.env.spawn(self._serve(connection),
                       name=f"phc-server:{self.device_id}<-{connection.remote_id}")

    def _serve(self, connection: Connection) -> Generator:
        while not connection.closed:
            payload = yield connection.recv()
            if payload is None:  # connection torn down under us
                return None
            response = self.handle_request(payload, connection.remote_id)
            try:
                connection.send(response)
            except (ConnectionError, OSError):
                # The client's retry loop re-sends on a fresh
                # connection; the dead one is already deregistered.
                self.send_failures += 1
                return None
        return None
