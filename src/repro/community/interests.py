"""Interest handling: normalisation and interest sets.

Interests are the atoms of dynamic group discovery: "groups are formed
dynamically, if any interest matches" (§1).  The paper matches plain
strings — "biking" and "cycling" land in different groups (§5.2.6) —
so exact matching is the default here, with semantic matching layered
on separately (:mod:`repro.community.semantics`).
"""

from __future__ import annotations

from functools import lru_cache


@lru_cache(maxsize=4096)
def normalize_interest(raw: str) -> str:
    """Canonical surface form: trimmed, lower-case, single-spaced.

    Normalisation is *lexical* only — "England  Football" and "england
    football" are the same interest, but "biking" and "cycling" are
    not.  Raises ``ValueError`` for empty interests.

    Pure string-to-string, so results are memoized: interest probes
    re-normalise the same handful of strings on every discovery round.
    """
    cleaned = " ".join(raw.strip().lower().split())
    if not cleaned:
        raise ValueError(f"interest must be non-empty, got {raw!r}")
    return cleaned


class InterestSet:
    """An ordered, duplicate-free collection of normalised interests.

    Order is insertion order: the paper's UI lists interests in the
    order the user added them.
    """

    def __init__(self, interests: list[str] | None = None) -> None:
        self._interests: dict[str, None] = {}
        for interest in interests or []:
            self.add(interest)

    def add(self, raw: str) -> str:
        """Add an interest; returns its normalised form."""
        interest = normalize_interest(raw)
        self._interests.setdefault(interest, None)
        return interest

    def remove(self, raw: str) -> None:
        """Remove an interest; raises ``KeyError`` when absent."""
        interest = normalize_interest(raw)
        del self._interests[interest]

    def __contains__(self, raw: str) -> bool:
        try:
            return normalize_interest(raw) in self._interests
        except ValueError:
            return False

    def __iter__(self):
        return iter(self._interests)

    def __len__(self) -> int:
        return len(self._interests)

    def as_list(self) -> list[str]:
        """Interests in insertion order."""
        return list(self._interests)

    def matches(self, other: InterestSet) -> list[str]:
        """Interests shared with ``other`` (exact matching), in this
        set's order — the inner loop of the Figure 6 algorithm."""
        return [interest for interest in self._interests
                if interest in other._interests]

    def __repr__(self) -> str:
        return f"InterestSet({self.as_list()!r})"
