"""Interest recommendations from the surrounding neighbourhood.

§3.2 lists "finding a stranger with same interests" among what social
networks are for, and §5.1 lets users "add others interests as own
interest".  This module closes the loop: rank the interests held by
nearby members that the local user does *not* hold, so the UI can
offer one-tap adoption (which then feeds dynamic group discovery).

Scoring is plain neighbourhood frequency with a recency-free tie-break
on name — simple, explainable, and exactly as much intelligence as a
2008 PTD could afford.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.community.discovery import DynamicGroupEngine
from repro.community.semantics import SemanticMatcher


@dataclass(frozen=True)
class Recommendation:
    """One suggested interest.

    Attributes:
        interest: Canonical interest term.
        holders: Nearby members holding it.
        score: Holder count (the ranking key).
    """

    interest: str
    holders: tuple[str, ...]

    @property
    def score(self) -> int:
        """Popularity among current neighbours."""
        return len(self.holders)


class InterestRecommender:
    """Suggests neighbourhood-popular interests the user lacks."""

    def __init__(self, engine: DynamicGroupEngine) -> None:
        self.engine = engine

    def recommend(self, limit: int = 5) -> list[Recommendation]:
        """Top interests held nearby but not by the active user.

        Interests the user already holds — under the engine's matcher,
        so taught synonyms count as held — are excluded.  Requires a
        logged-in profile.
        """
        active = self.engine.store.active
        if active is None:
            raise PermissionError("no member logged in")
        matcher = self.engine.matcher
        own = {matcher.canonical(interest) for interest in active.interests}
        holders: dict[str, set[str]] = {}
        for entry in self.engine.directory.values():
            for interest in entry.interests:
                canonical = matcher.canonical(interest)
                if canonical in own:
                    continue
                holders.setdefault(canonical, set()).add(entry.member_id)
        ranked = sorted(holders.items(),
                        key=lambda item: (-len(item[1]), item[0]))
        return [Recommendation(interest, tuple(sorted(members)))
                for interest, members in ranked[:limit]]

    def adopt(self, interest: str) -> list[str]:
        """Add a recommended interest and re-run group matching.

        Returns the member list of the interest's group afterwards —
        usually non-empty immediately, because the recommendation came
        from members who hold it.
        """
        active = self.engine.store.active
        if active is None:
            raise PermissionError("no member logged in")
        active.add_interest(interest)
        self.engine.refresh()
        return self.engine.members_of(interest)

    def synonym_candidates(self) -> list[tuple[str, str]]:
        """Near-duplicate interest pairs worth teaching (§6).

        A cheap lexical heuristic: pairs of neighbourhood interests
        whose names share a word stem of length >= 4 ("biking" /
        "biker club") but are distinct under the current matcher.
        Returns candidate pairs for the user to confirm via
        ``engine.teach_semantics``.
        """
        matcher = self.engine.matcher
        interests: set[str] = set()
        active = self.engine.store.active
        if active is not None:
            interests.update(matcher.canonical(i) for i in active.interests)
        for entry in self.engine.directory.values():
            interests.update(matcher.canonical(i) for i in entry.interests)
        terms = sorted(interests)
        candidates = []
        for index, a in enumerate(terms):
            for b in terms[index + 1:]:
                if matcher.same(a, b) if isinstance(matcher, SemanticMatcher) \
                        else a == b:
                    continue
                if _share_stem(a, b):
                    candidates.append((a, b))
        return candidates


def _stem(word: str) -> str:
    """A deliberately tiny suffix-stripping stemmer."""
    for suffix in ("ing", "ers", "er", "es", "s"):
        if word.endswith(suffix) and len(word) - len(suffix) >= 3:
            word = word[: -len(suffix)]
            break
    if word.endswith("e") and len(word) >= 4:
        word = word[:-1]
    return word


def _share_stem(a: str, b: str) -> bool:
    """Whether two interest names share a meaningful word stem.

    Stems must match, be at least three characters, and at least one
    of the original words must be five-plus characters — short words
    ("art"/"arts") are too ambiguous to suggest as synonyms.
    """
    for word_a in a.split():
        for word_b in b.split():
            if max(len(word_a), len(word_b)) < 5:
                continue
            stem_a, stem_b = _stem(word_a), _stem(word_b)
            if len(stem_a) >= 3 and stem_a == stem_b:
                return True
    return False
