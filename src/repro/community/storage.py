"""File-backed persistence for profile stores.

The paper's server works on plain files: it "writes or appends the
Profile comments send by remote client into the local user's profile"
(Table 6) and "writes the mail message in the inbox mail file"
(Figure 17).  This module gives the simulated device the same durable
home: a profile store serialises to a directory of JSON files (one per
profile) and loads back losslessly, so a device can be switched off
and rebooted with its community state intact.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.community.profile import (
    MailMessage,
    Profile,
    ProfileComment,
    ProfileStore,
    ProfileView,
)

#: Bumped when the on-disk layout changes.
STORAGE_VERSION = 1


def profile_to_dict(profile: Profile) -> dict:
    """Serialise one profile to a JSON-safe dict (lossless)."""
    return {
        "version": STORAGE_VERSION,
        "member_id": profile.member_id,
        "username": profile.username,
        "password": profile.password,
        "full_name": profile.full_name,
        "interests": profile.interests.as_list(),
        "comments": [[c.author, c.text, c.written_at]
                     for c in profile.comments],
        "viewers": [[v.viewer, v.viewed_at] for v in profile.viewers],
        "trusted": sorted(profile.trusted),
        "shared_files": [[f.name, f.size_bytes]
                         for f in profile.shared_files.values()],
        "inbox": [[m.sender, m.receiver, m.subject, m.body, m.sent_at]
                  for m in profile.inbox],
        "sent": [[m.sender, m.receiver, m.subject, m.body, m.sent_at]
                 for m in profile.sent],
    }


def profile_from_dict(data: dict) -> Profile:
    """Rebuild a profile serialised by :func:`profile_to_dict`."""
    version = data.get("version")
    if version != STORAGE_VERSION:
        raise ValueError(f"unsupported profile storage version {version!r}")
    profile = Profile(data["member_id"], data["username"], data["password"],
                      data["full_name"], data["interests"])
    profile.comments = [ProfileComment(author, text, when)
                        for author, text, when in data["comments"]]
    profile.viewers = [ProfileView(viewer, when)
                       for viewer, when in data["viewers"]]
    profile.trusted = set(data["trusted"])
    for name, size in data["shared_files"]:
        profile.share_file(name, size)
    profile.inbox = [MailMessage(*entry) for entry in data["inbox"]]
    profile.sent = [MailMessage(*entry) for entry in data["sent"]]
    return profile


def save_store(store: ProfileStore, directory: str | Path) -> list[Path]:
    """Write every profile to ``directory`` (one JSON file each).

    Returns the written paths.  The active-login state is runtime
    state, not durable state, and is deliberately not persisted — a
    rebooted device starts at the login screen (§5.2.1).
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    written = []
    for profile in store.profiles():
        path = base / f"{profile.username}.profile.json"
        with path.open("w", encoding="utf-8") as handle:
            json.dump(profile_to_dict(profile), handle, indent=2,
                      sort_keys=True)
        written.append(path)
    return written


def load_store(directory: str | Path) -> ProfileStore:
    """Rebuild a profile store from :func:`save_store` output."""
    base = Path(directory)
    store = ProfileStore()
    for path in sorted(base.glob("*.profile.json")):
        with path.open("r", encoding="utf-8") as handle:
            profile = profile_from_dict(json.load(handle))
        store._profiles[profile.username] = profile
    return store
