"""PeerHood Community: social networking on top of PeerHood (Chapter 5).

The paper's contribution.  Highlights:

* :class:`~repro.community.discovery.DynamicGroupEngine` — the dynamic
  group discovery algorithm of Figure 6.
* :class:`~repro.community.server.CommunityServer` /
  :class:`~repro.community.client.CommunityClient` — the ``PS_*``
  client-server protocol of Table 6 and Figures 11-17.
* :class:`~repro.community.profile.Profile` — profiles, interests,
  trust, messaging and shared content (Table 7 features).
* :class:`~repro.community.semantics.SemanticMatcher` — the semantics
  teaching the thesis names as future work (§6).
* :class:`~repro.community.app.CommunityApp` — the per-device bundle.
"""

from repro.community import protocol
from repro.community.app import CommunityApp
from repro.community.client import CommunityClient
from repro.community.connections import PeerConnectionPool
from repro.community.discovery import DynamicGroupEngine, ProbeRecord
from repro.community.filetransfer import (
    FileDownloader,
    FileTransferService,
    TransferProgress,
)
from repro.community.groups import Group, GroupRegistry, MembershipEvent
from repro.community.interests import InterestSet, normalize_interest
from repro.community.offline import OfflineOutbox, QueuedMessage
from repro.community.recommendations import InterestRecommender, Recommendation
from repro.community.profile import (
    MailMessage,
    Profile,
    ProfileComment,
    ProfileStore,
    ProfileView,
    SharedFile,
)
from repro.community.semantics import ExactMatcher, SemanticMatcher
from repro.community.server import SERVICE_NAME, CommunityServer

__all__ = [
    "CommunityApp",
    "CommunityClient",
    "CommunityServer",
    "DynamicGroupEngine",
    "ExactMatcher",
    "FileDownloader",
    "FileTransferService",
    "Group",
    "GroupRegistry",
    "InterestRecommender",
    "InterestSet",
    "MailMessage",
    "MembershipEvent",
    "OfflineOutbox",
    "PeerConnectionPool",
    "ProbeRecord",
    "Profile",
    "ProfileComment",
    "ProfileStore",
    "ProfileView",
    "QueuedMessage",
    "Recommendation",
    "SERVICE_NAME",
    "SemanticMatcher",
    "SharedFile",
    "TransferProgress",
    "normalize_interest",
    "protocol",
]
