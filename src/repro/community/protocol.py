"""The PeerHood Community wire protocol.

Table 6 defines the request vocabulary; the MSCs of Figures 11-17 add
two operations the table's prose references (``PS_GETTRUSTEDFRIEND``,
``PS_CHECKTRUSTED``, ``PS_GETSHAREDCONTENT``) and the status strings
(``NO_MEMBERS_YET``, ``NOT_TRUSTED_YET``, ``SUCCESSFULLY_WRITTEN``,
``UNSUCCESSFULL`` — the paper's spelling).

A request is a dict ``{"op": <PS_*>, ...params}``; a response is a
dict ``{"status": <code>, ...data}``.  Helpers here build and validate
both sides so client and server cannot drift apart.
"""

from __future__ import annotations

from typing import Any

# -- operations (Table 6 + MSC figures) ---------------------------------------

PS_GETONLINEMEMBERLIST = "PS_GETONLINEMEMBERLIST"
PS_GETINTERESTLIST = "PS_GETINTERESTLIST"
PS_GETINTERESTEDMEMBERLIST = "PS_GETINTERESTEDMEMBERLIST"
PS_GETPROFILE = "PS_GETPROFILE"
PS_ADDPROFILECOMMENT = "PS_ADDPROFILECOMMENT"
PS_CHECKMEMBERID = "PS_CHECKMEMBERID"
PS_MSG = "PS_MSG"
PS_SHAREDCONTENT = "PS_SHAREDCONTENT"
PS_GETTRUSTEDFRIEND = "PS_GETTRUSTEDFRIEND"
PS_CHECKTRUSTED = "PS_CHECKTRUSTED"
PS_GETSHAREDCONTENT = "PS_GETSHAREDCONTENT"
PS_ADDTRUSTED = "PS_ADDTRUSTED"

#: Every operation and the request fields it requires.
OPERATIONS: dict[str, tuple[str, ...]] = {
    PS_GETONLINEMEMBERLIST: (),
    PS_GETINTERESTLIST: (),
    PS_GETINTERESTEDMEMBERLIST: ("interest",),
    PS_GETPROFILE: ("member_id", "requester"),
    PS_ADDPROFILECOMMENT: ("member_id", "requester", "comment"),
    PS_CHECKMEMBERID: ("member_id",),
    PS_MSG: ("receiver", "sender", "subject", "body"),
    PS_SHAREDCONTENT: ("requester",),
    PS_GETTRUSTEDFRIEND: ("member_id",),
    PS_CHECKTRUSTED: ("member_id", "requester"),
    PS_GETSHAREDCONTENT: ("member_id", "requester"),
    PS_ADDTRUSTED: ("member_id", "requester"),
}

# -- status codes -----------------------------------------------------------

STATUS_OK = "OK"
NO_MEMBERS_YET = "NO_MEMBERS_YET"
NOT_TRUSTED_YET = "NOT_TRUSTED_YET"
SUCCESSFULLY_WRITTEN = "SUCCESSFULLY_WRITTEN"
UNSUCCESSFULL = "UNSUCCESSFULL"  # sic - the paper's spelling (Fig. 17)
BAD_REQUEST = "BAD_REQUEST"

ALL_STATUSES = (STATUS_OK, NO_MEMBERS_YET, NOT_TRUSTED_YET,
                SUCCESSFULLY_WRITTEN, UNSUCCESSFULL, BAD_REQUEST)

#: Precompiled lookup tables for the per-message hot path: validating
#: a request against a frozenset is O(fields) with C-level membership
#: tests, versus rescanning the OPERATIONS tuples on every message.
_REQUIRED_SETS: dict[str, frozenset[str]] = {
    op: frozenset(fields) for op, fields in OPERATIONS.items()
}
_STATUS_SET = frozenset(ALL_STATUSES)


def register_operation(op: str, fields: tuple[str, ...]) -> None:
    """Extend the protocol vocabulary (e.g. the file-chunk op).

    Idempotent for an identical re-registration; conflicting field
    tuples for an existing op raise :class:`ProtocolError`.
    """
    existing = OPERATIONS.get(op)
    if existing is not None and tuple(existing) != tuple(fields):
        raise ProtocolError(f"operation {op!r} already registered "
                            f"with fields {existing}")
    OPERATIONS[op] = tuple(fields)
    _REQUIRED_SETS[op] = frozenset(fields)


def _required_fields(op: str) -> frozenset[str] | None:
    """Precompiled field set, compiling lazily for operations added by
    mutating :data:`OPERATIONS` directly (pre-``register_operation``
    extension style)."""
    required = _REQUIRED_SETS.get(op)
    if required is None:
        fields = OPERATIONS.get(op)
        if fields is None:
            return None
        required = _REQUIRED_SETS[op] = frozenset(fields)
    return required


class ProtocolError(ValueError):
    """Malformed request or response."""


def make_request(op: str, **params: Any) -> dict:
    """Build a validated request dict for ``op``."""
    required = _required_fields(op)
    if required is None:
        raise ProtocolError(f"unknown operation {op!r}")
    if params.keys() != required:
        missing = [name for name in OPERATIONS[op] if name not in params]
        if missing:
            raise ProtocolError(f"{op} missing required fields {missing}")
        extra = sorted(params.keys() - required)
        raise ProtocolError(f"{op} got unexpected fields {extra}")
    return {"op": op, **params}


def parse_request(payload: Any) -> tuple[str, dict]:
    """Validate an inbound request; returns ``(op, params)``."""
    if not isinstance(payload, dict) or "op" not in payload:
        raise ProtocolError(f"not a request: {payload!r}")
    op = payload["op"]
    if not isinstance(op, str):
        raise ProtocolError(f"operation must be a string, got {op!r}")
    required = _required_fields(op)
    if required is None:
        raise ProtocolError(f"unknown operation {op!r}")
    params = {key: value for key, value in payload.items() if key != "op"}
    if not required <= params.keys():
        missing = [name for name in OPERATIONS[op] if name not in params]
        raise ProtocolError(f"{op} missing required fields {missing}")
    return op, params


def make_response(status: str, **data: Any) -> dict:
    """Build a response dict with a known status code."""
    if status not in _STATUS_SET:
        raise ProtocolError(f"unknown status {status!r}")
    return {"status": status, **data}


def response_status(payload: Any) -> str:
    """Extract and validate the status of a response payload."""
    if not isinstance(payload, dict) or "status" not in payload:
        raise ProtocolError(f"not a response: {payload!r}")
    status = payload["status"]
    if status not in _STATUS_SET:
        raise ProtocolError(f"unknown status {status!r}")
    return status
