"""Chunked file transfer between trusted friends.

Table 7 lists "File Sharing" and §1 promises that a trusted peer "can
view what files the accepting peer has shared **and use them if
needed**".  Viewing is ``PS_GETSHAREDCONTENT``; *using* them is this
module: a pull-style chunked download protocol layered on the same
connection, trust-gated on the server side.

Protocol (client-driven, one chunk per round trip, so a download
behaves well on slow links and survives technology handover between
chunks):

    -> {"op": "PS_GETFILECHUNK", "member_id", "requester",
        "name", "offset", "length"}
    <- {"status": "OK", "name", "offset", "size", "data_len", "eof"}

The simulated payload is not real bytes — transfer *time* is what the
simulation models — so the server sends a padding field sized like the
chunk, which makes the frame (and therefore the link occupancy) match
a real transfer of the same size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Generator

from repro.community import protocol
from repro.community.connections import PeerConnectionPool
from repro.community.profile import ProfileStore
from repro.net.retry import (
    DEFAULT_TRANSFER_POLICY,
    AttemptTimeoutError,
    CorruptReplyError,
    RetryCounters,
    RetryPolicy,
    recv_with_timeout,
)
from repro.simenv import Delay

#: Added to the protocol vocabulary at import time (kept separate from
#: Table 6 because the paper's table does not include it).
PS_GETFILECHUNK = "PS_GETFILECHUNK"
protocol.register_operation(
    PS_GETFILECHUNK, ("member_id", "requester", "name", "offset", "length"))

#: Default chunk size: one L2CAP-friendly lump.
DEFAULT_CHUNK_BYTES = 32 * 1024


@dataclass
class TransferProgress:
    """Observable state of one download.

    Attributes:
        name: File being fetched.
        total_bytes: Size advertised by the remote side.
        received_bytes: Bytes fetched so far.
        chunks: Completed chunk round trips.
        started_at / finished_at: Virtual-time bounds (``finished_at``
            is ``None`` while running).
    """

    name: str
    total_bytes: int = 0
    received_bytes: int = 0
    chunks: int = 0
    started_at: float = 0.0
    finished_at: float | None = None
    failed: str | None = None
    #: Chunk attempts beyond the first (link died / reply corrupt).
    retries: int = 0
    #: Times the transfer re-attached after a broken connection and
    #: continued from the current offset instead of starting over.
    resumes: int = 0

    @property
    def complete(self) -> bool:
        """Whether the whole file arrived."""
        return (self.finished_at is not None and self.failed is None
                and self.received_bytes >= self.total_bytes)


class FileTransferService:
    """Server-side chunk handler, mounted into a CommunityServer."""

    def __init__(self, store: ProfileStore) -> None:
        self.store = store
        self.chunks_served = 0
        self.bytes_served = 0

    def handle_chunk_request(self, params: dict) -> dict:
        """Serve one chunk, enforcing trust and bounds."""
        active = self.store.active
        if active is None or active.member_id != params["member_id"]:
            return protocol.make_response(protocol.NO_MEMBERS_YET)
        if not active.trusts(params["requester"]):
            return protocol.make_response(protocol.NOT_TRUSTED_YET)
        shared = active.shared_files.get(params["name"])
        if shared is None:
            return protocol.make_response(protocol.UNSUCCESSFULL,
                                          error="no such shared file")
        offset = int(params["offset"])
        length = int(params["length"])
        if offset < 0 or length <= 0:
            return protocol.make_response(protocol.UNSUCCESSFULL,
                                          error="bad range")
        remaining = max(0, shared.size_bytes - offset)
        serving = min(length, remaining)
        self.chunks_served += 1
        self.bytes_served += serving
        return protocol.make_response(
            protocol.STATUS_OK,
            name=shared.name,
            offset=offset,
            size=shared.size_bytes,
            data_len=serving,
            eof=offset + serving >= shared.size_bytes,
            # Padding stands in for the chunk's bytes on the wire.
            data="x" * serving)


class FileDownloader:
    """Client-side chunked download driver."""

    def __init__(self, store: ProfileStore, pool: PeerConnectionPool,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                 retry_policy: RetryPolicy | None = None) -> None:
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes!r}")
        self.store = store
        self.pool = pool
        self.chunk_bytes = chunk_bytes
        self.retry_policy = retry_policy or DEFAULT_TRANSFER_POLICY
        self.retry_counters = RetryCounters()
        self.history: list[TransferProgress] = []

    def _fetch_chunk(self, device_id: str, request: dict, env) -> Generator:
        """One chunk attempt: ensure, send, receive, validate.

        Raises a retryable error (``ConnectionError``/``OSError``/
        ``ProtocolError``) when the exchange must be redone.
        """
        connection = yield from self.pool.ensure(device_id)
        connection.send(request)
        reply = yield from recv_with_timeout(
            env, connection, self.retry_policy.attempt_timeout_s)
        if reply is None:
            raise ConnectionError("connection closed mid-transfer")
        status = protocol.response_status(reply)  # ProtocolError if corrupt
        if status == protocol.BAD_REQUEST:
            raise CorruptReplyError("chunk request corrupted en route")
        return reply

    def download(self, device_id: str, member_id: str, name: str,
                 env) -> Generator:
        """Process generator fetching one shared file chunk by chunk.

        A broken link does not abort the transfer: the downloader backs
        off (capped exponential, deterministic jitter), re-attaches and
        *resumes from the current offset* — the server side is
        stateless, so only the in-flight chunk is re-fetched.  Only an
        exhausted retry budget or a non-OK protocol status fails the
        transfer.  Returns the final :class:`TransferProgress`; inspect
        ``progress.complete`` / ``progress.failed``.
        """
        active = self.store.active
        if active is None:
            raise PermissionError("no member logged in")
        policy = self.retry_policy
        rng = env.random.stream(f"retry:transfer:{self.pool.library.device_id}")
        progress = TransferProgress(name=name, started_at=env.now)
        self.history.append(progress)
        offset = 0
        failures = 0  # consecutive failed attempts on the current chunk
        started = env.now
        while True:
            request = protocol.make_request(
                PS_GETFILECHUNK, member_id=member_id,
                requester=active.member_id, name=name,
                offset=offset, length=self.chunk_bytes)
            self.retry_counters.record_attempt()
            try:
                reply = yield from self._fetch_chunk(device_id, request, env)
            except (ConnectionError, OSError, protocol.ProtocolError) as exc:
                self.pool.drop(device_id)
                if isinstance(exc, AttemptTimeoutError):
                    self.retry_counters.timeouts += 1
                elif isinstance(exc, (CorruptReplyError, protocol.ProtocolError)):
                    self.retry_counters.corrupt_replies += 1
                failures += 1
                out_of_budget = not policy.within_budget(started, env.now)
                if failures >= policy.max_attempts or out_of_budget:
                    self.retry_counters.record_giveup()
                    progress.failed = f"connection lost: {exc}"
                    progress.finished_at = env.now
                    return progress
                delay = policy.backoff_delay(failures, rng)
                self.retry_counters.record_backoff(delay)
                self.retry_counters.record_retry(PS_GETFILECHUNK)
                yield Delay(delay)
                progress.retries += 1
                if offset > 0:
                    progress.resumes += 1
                continue
            failures = 0
            status = protocol.response_status(reply)
            if status != protocol.STATUS_OK:
                progress.failed = status
                progress.finished_at = env.now
                return progress
            progress.total_bytes = int(reply["size"])
            progress.received_bytes += int(reply["data_len"])
            progress.chunks += 1
            offset += int(reply["data_len"])
            if reply.get("eof") or int(reply["data_len"]) == 0:
                progress.finished_at = env.now
                return progress

    @property
    def completed_transfers(self) -> list[TransferProgress]:
        """Transfers that finished with every byte received."""
        return [progress for progress in self.history if progress.complete]
