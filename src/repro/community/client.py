"""The PeerHood Community client (§5.2.3.2).

"The main functionality of the client is to connect to remote
application servers on remote PTDs and send requests and receive the
desired information from servers."

Every public operation is a process generator implementing one of the
paper's MSCs (Figures 11-17): the request goes out on **all** pooled
connections simultaneously, replies are gathered, and the aggregated
result is returned.

Links are *expected* to fail mid-exchange (churn is the common case in
a mobile neighbourhood), so every exchange runs under a
:class:`~repro.net.retry.RetryPolicy`: per-attempt reply timeouts,
capped exponential backoff with deterministic jitter, and a virtual-
time retry budget.  A peer whose exchanges keep failing is dropped
from the round; an operation whose *every* peer failed returns a typed
:class:`~repro.net.retry.Degraded` result instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Generator
from typing import Any

from repro.community import protocol
from repro.community.connections import PeerConnectionPool
from repro.community.profile import MailMessage, ProfileStore
from repro.msc.trace import MscRecorder
from repro.net.connection import Connection
from repro.net.retry import (
    DEFAULT_CLIENT_POLICY,
    AttemptTimeoutError,
    CorruptReplyError,
    Degraded,
    RetryCounters,
    RetryPolicy,
    is_degraded,
    recv_with_timeout,
)
from repro.peerhood.library import PeerHoodLibrary
from repro.simenv import Delay

#: Failures that justify retrying an exchange: the link died, the
#: attempt timed out, or the frame failed protocol validation
#: (corruption en route).  Anything else is a bug and must surface.
RETRYABLE_ERRORS = (ConnectionError, OSError, protocol.ProtocolError)


@dataclass(frozen=True)
class ExchangeReport:
    """Outcome of one broadcast round-set, for metrics and degradation.

    Attributes:
        operation: The ``PS_*`` operation performed.
        targets: Devices the request was addressed to.
        replied: Devices that produced a validated reply.
        failed: Devices that never replied despite retries.
        attempts: Total per-device attempts consumed.
    """

    operation: str
    targets: tuple[str, ...]
    replied: tuple[str, ...]
    failed: tuple[str, ...]
    attempts: int

    @property
    def total_failure(self) -> bool:
        """There were peers to ask, and none of them answered."""
        return bool(self.targets) and not self.replied


#: Sentinel for "no exchange has run yet": empty targets, so it can
#: never read as a total failure.
_NO_EXCHANGE = ExchangeReport(operation="", targets=(), replied=(),
                              failed=(), attempts=0)


# -- reply aggregation ---------------------------------------------------------
#
# Pure functions over ``[(device_id, response), ...]`` reply lists.
# They contain no transport state, so the same aggregation runs
# unchanged whichever backend carried the exchange.

def merge_member_lists(replies: list[tuple[str, dict]]) -> list[dict]:
    """Deduplicated members across every OK reply, ordered by id.

    Per Figure 11, each server names its own online member; the same
    member seen via two devices must appear once.
    """
    members: list[dict] = []
    seen: set[str] = set()
    for _, payload in replies:
        if protocol.response_status(payload) == protocol.STATUS_OK:
            for member in payload.get("members", []):
                if member["member_id"] not in seen:
                    seen.add(member["member_id"])
                    members.append(member)
    return sorted(members, key=lambda member: member["member_id"])


def merge_interest_lists(replies: list[tuple[str, dict]],
                         interests: list[str]) -> list[str]:
    """Fold remote interests into ``interests`` (mutated and returned).

    Per the Figure 12 MSC, a received interest is added only "if it
    doesn't exist already", preserving first-seen order.
    """
    for _, payload in replies:
        if protocol.response_status(payload) == protocol.STATUS_OK:
            for interest in payload.get("interests", []):
                if interest not in interests:
                    interests.append(interest)
    return interests


def collect_shared_listings(replies: list[tuple[str, dict]]) \
        -> list[tuple[str, list]]:
    """``(device_id, files)`` per OK reply, sorted by device."""
    listings = [(device_id, payload.get("files", []))
                for device_id, payload in replies
                if protocol.response_status(payload) == protocol.STATUS_OK]
    return sorted(listings)


class CommunityClient:
    """Client side of the reference application for one device."""

    def __init__(self, library: PeerHoodLibrary, store: ProfileStore,
                 pool: PeerConnectionPool,
                 recorder: MscRecorder | None = None,
                 retry_policy: RetryPolicy | None = None) -> None:
        self.library = library
        self.store = store
        self.pool = pool
        self.recorder = recorder
        self.env = library.daemon.env
        self.requests_sent = 0
        self.retry_policy = retry_policy or DEFAULT_CLIENT_POLICY
        self.retry_counters = RetryCounters()
        self.last_exchange = _NO_EXCHANGE
        self._backoff_rng = self.env.random.stream(
            f"retry:{library.device_id}")

    @property
    def device_id(self) -> str:
        """Device this client runs on."""
        return self.library.device_id

    def _require_member(self) -> str:
        active = self.store.active
        if active is None:
            raise PermissionError("no member logged in on "
                                  f"{self.device_id!r}")
        return active.member_id

    # -- broadcast machinery --------------------------------------------------

    def _note_failure(self, device_id: str, exc: BaseException) -> None:
        """Classify one failed exchange and reset the peer's connection."""
        self.pool.drop(device_id)
        if isinstance(exc, AttemptTimeoutError):
            self.retry_counters.timeouts += 1
        elif isinstance(exc, (CorruptReplyError, protocol.ProtocolError)):
            self.retry_counters.corrupt_replies += 1

    def _validated_reply(self, device_id: str, payload: Any) -> dict:
        """Check one reply; raises a retryable error when unusable."""
        if payload is None:
            raise ConnectionError(
                f"connection to {device_id!r} lost mid-exchange")
        status = protocol.response_status(payload)  # ProtocolError if corrupt
        if status == protocol.BAD_REQUEST:
            # Our requests are built by make_request and always well
            # formed; BAD_REQUEST therefore means the frame corrupted
            # en route and the exchange is worth retrying.
            raise CorruptReplyError(
                f"{device_id!r} rejected a corrupted request")
        return payload

    def _broadcast(self, request: dict) -> Generator:
        """Send ``request`` to every neighbour, gather validated replies.

        Mirrors Figure 9: "gets the list of all nearby PeerHood Capable
        devices [and] connects to the server of all those nearby
        devices through the service PeerHoodCommunity".  Sends first
        (simultaneously), receives second, so the elapsed virtual time
        is the *maximum* of the per-server round trips, not their sum —
        matching the MSCs' parallel arrows.

        Peers whose exchange failed are retried in later rounds (one
        shared backoff per round keeps the arrows parallel) until the
        policy's attempts or budget run out; survivors' replies are
        returned as ``[(device_id, response), ...]`` and the full
        outcome is recorded in :attr:`last_exchange`.
        """
        operation = str(request.get("op", "?"))
        policy = self.retry_policy
        targets = self.library.devices_with_service(self.pool.service_name)
        pending = list(targets)
        replies: list[tuple[str, dict]] = []
        attempts = 0
        started = self.env.now
        for attempt in range(1, policy.max_attempts + 1):
            if not pending:
                break
            if attempt > 1:
                if not policy.within_budget(started, self.env.now):
                    break
                delay = policy.backoff_delay(attempt - 1, self._backoff_rng)
                self.retry_counters.record_backoff(delay)
                yield Delay(delay)
            live: list[tuple[str, Connection]] = []
            failed: list[str] = []
            for device_id in pending:
                self.retry_counters.record_attempt()
                if attempt > 1:
                    self.retry_counters.record_retry(operation)
                attempts += 1
                try:
                    connection = yield from self.pool.ensure(device_id)
                    connection.send(request)
                except RETRYABLE_ERRORS as exc:
                    self._note_failure(device_id, exc)
                    failed.append(device_id)
                    continue
                self.requests_sent += 1
                live.append((device_id, connection))
            for device_id, connection in live:
                try:
                    payload = yield from recv_with_timeout(
                        self.env, connection, policy.attempt_timeout_s)
                    payload = self._validated_reply(device_id, payload)
                except RETRYABLE_ERRORS as exc:
                    self._note_failure(device_id, exc)
                    failed.append(device_id)
                    continue
                replies.append((device_id, payload))
            pending = failed
        for _ in pending:
            self.retry_counters.record_giveup()
        self.last_exchange = ExchangeReport(
            operation, tuple(targets),
            tuple(device_id for device_id, _ in replies),
            tuple(pending), attempts)
        return replies

    def _degraded(self, partial: Any = None) -> Degraded:
        """Typed degraded result for the exchange in :attr:`last_exchange`."""
        report = self.last_exchange
        self.retry_counters.record_degraded()
        return Degraded(operation=report.operation,
                        reason="no peer completed the exchange",
                        attempts=report.attempts,
                        failed_peers=report.failed,
                        partial=partial)

    def _single(self, device_id: str, request: dict) -> Generator:
        """One request/response exchange with one specific server.

        Retries under the client policy; returns the reply payload, or
        a :class:`Degraded` result once retries are exhausted.
        """
        operation = str(request.get("op", "?"))
        policy = self.retry_policy
        started = self.env.now
        reason = "no attempt ran"
        attempts = 0
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                if not policy.within_budget(started, self.env.now):
                    break
                delay = policy.backoff_delay(attempt - 1, self._backoff_rng)
                self.retry_counters.record_backoff(delay)
                yield Delay(delay)
                self.retry_counters.record_retry(operation)
            self.retry_counters.record_attempt()
            attempts += 1
            try:
                connection = yield from self.pool.ensure(device_id)
                connection.send(request)
                self.requests_sent += 1
                payload = yield from recv_with_timeout(
                    self.env, connection, policy.attempt_timeout_s)
                payload = self._validated_reply(device_id, payload)
            except RETRYABLE_ERRORS as exc:
                self._note_failure(device_id, exc)
                reason = f"{type(exc).__name__}: {exc}"
                continue
            return payload
        self.retry_counters.record_giveup()
        self.retry_counters.record_degraded()
        return Degraded(operation=operation, reason=reason,
                        attempts=attempts, failed_peers=(device_id,))

    # -- operations (Figures 11-17) ------------------------------------------

    def get_online_members(self) -> Generator:
        """Figure 11: list the online members across the neighbourhood."""
        request = protocol.make_request(protocol.PS_GETONLINEMEMBERLIST)
        replies = yield from self._broadcast(request)
        if self.last_exchange.total_failure:
            return self._degraded(partial=[])
        return merge_member_lists(replies)

    def get_interest_list(self) -> Generator:
        """Figure 12: the union of interests available around here.

        Per the MSC, newly received interests are compared against the
        stored list and added only "if it doesn't exist already".
        """
        request = protocol.make_request(protocol.PS_GETINTERESTLIST)
        replies = yield from self._broadcast(request)
        interests: list[str] = []
        active = self.store.active
        if active is not None:
            interests.extend(active.interests.as_list())
        if self.last_exchange.total_failure:
            return self._degraded(partial=interests)
        return merge_interest_lists(replies, interests)

    def get_interested_members(self, interest: str) -> Generator:
        """Table 6 row 3: members sharing one interest."""
        request = protocol.make_request(protocol.PS_GETINTERESTEDMEMBERLIST,
                                        interest=interest)
        replies = yield from self._broadcast(request)
        if self.last_exchange.total_failure:
            return self._degraded(partial=[])
        return merge_member_lists(replies)

    def view_profile(self, member_id: str) -> Generator:
        """Figure 13: fetch one member's profile from whoever holds it."""
        requester = self._require_member()
        request = protocol.make_request(protocol.PS_GETPROFILE,
                                        member_id=member_id,
                                        requester=requester)
        replies = yield from self._broadcast(request)
        if self.last_exchange.total_failure:
            return self._degraded()
        for _, payload in replies:
            if protocol.response_status(payload) == protocol.STATUS_OK:
                return payload["profile"]
        return None

    def put_profile_comment(self, member_id: str, comment: str) -> Generator:
        """Figure 14: write a comment onto a member's profile."""
        requester = self._require_member()
        request = protocol.make_request(protocol.PS_ADDPROFILECOMMENT,
                                        member_id=member_id,
                                        requester=requester,
                                        comment=comment)
        replies = yield from self._broadcast(request)
        if self.last_exchange.total_failure:
            return self._degraded()
        return any(protocol.response_status(payload)
                   == protocol.SUCCESSFULLY_WRITTEN
                   for _, payload in replies)

    def view_trusted_friends(self, member_id: str) -> Generator:
        """Figure 15: the trusted-friend list of a member."""
        request = protocol.make_request(protocol.PS_GETTRUSTEDFRIEND,
                                        member_id=member_id)
        replies = yield from self._broadcast(request)
        if self.last_exchange.total_failure:
            return self._degraded()
        for _, payload in replies:
            if protocol.response_status(payload) == protocol.STATUS_OK:
                return payload.get("trusted", [])
        return None

    def view_shared_content(self, member_id: str) -> Generator:
        """Figure 16: two-phase trusted content listing.

        First ``PS_CHECKTRUSTED`` establishes standing; only if trusted
        does the client send ``PS_GETSHAREDCONTENT``.  Returns the file
        list, or the blocking status string.
        """
        requester = self._require_member()
        check = protocol.make_request(protocol.PS_CHECKTRUSTED,
                                      member_id=member_id,
                                      requester=requester)
        replies = yield from self._broadcast(check)
        if self.last_exchange.total_failure:
            return self._degraded()
        holder: str | None = None
        for device_id, payload in replies:
            status = protocol.response_status(payload)
            if status == protocol.NOT_TRUSTED_YET:
                return protocol.NOT_TRUSTED_YET
            if status == protocol.STATUS_OK:
                holder = device_id
        if holder is None:
            return protocol.NO_MEMBERS_YET
        fetch = protocol.make_request(protocol.PS_GETSHAREDCONTENT,
                                      member_id=member_id,
                                      requester=requester)
        payload = yield from self._single(holder, fetch)
        if is_degraded(payload):
            return payload
        if protocol.response_status(payload) == protocol.STATUS_OK:
            return payload.get("files", [])
        return protocol.response_status(payload)

    def browse_shared_content(self) -> Generator:
        """Table 6 row 8: shared content offered across the neighbourhood.

        Broadcasts ``PS_SHAREDCONTENT``; each server replies with the
        listing of its active member's shared files — provided that
        member trusts *us*.  Returns ``[(device_id, files), ...]``
        sorted by device, one entry per neighbour that answered OK.
        """
        requester = self._require_member()
        request = protocol.make_request(protocol.PS_SHAREDCONTENT,
                                        requester=requester)
        replies = yield from self._broadcast(request)
        if self.last_exchange.total_failure:
            return self._degraded(partial=[])
        return collect_shared_listings(replies)

    def send_message(self, member_id: str, subject: str, body: str) -> Generator:
        """Figure 17: deliver a mail message to a member's device.

        Returns the server's status string
        (``SUCCESSFULLY_WRITTEN``/``UNSUCCESSFULL``) or
        ``NO_MEMBERS_YET`` when nobody around holds that member.
        """
        sender = self._require_member()
        request = protocol.make_request(protocol.PS_MSG,
                                        receiver=member_id, sender=sender,
                                        subject=subject, body=body)
        replies = yield from self._broadcast(request)
        if self.last_exchange.total_failure:
            return self._degraded()
        outcome = protocol.NO_MEMBERS_YET
        for _, payload in replies:
            status = protocol.response_status(payload)
            if status == protocol.SUCCESSFULLY_WRITTEN:
                outcome = status
                break
            if status == protocol.UNSUCCESSFULL:
                outcome = status
        if outcome == protocol.SUCCESSFULLY_WRITTEN:
            active = self.store.active
            if active is not None:
                active.sent.append(MailMessage(
                    sender=sender, receiver=member_id, subject=subject,
                    body=body, sent_at=self.env.now))
        return outcome

    def request_trust(self, member_id: str) -> Generator:
        """Ask a member to accept us as trusted friend."""
        requester = self._require_member()
        request = protocol.make_request(protocol.PS_ADDTRUSTED,
                                        member_id=member_id,
                                        requester=requester)
        replies = yield from self._broadcast(request)
        if self.last_exchange.total_failure:
            return self._degraded()
        return any(protocol.response_status(payload)
                   == protocol.SUCCESSFULLY_WRITTEN
                   for _, payload in replies)

    def check_member_location(self, member_id: str) -> Generator:
        """Which neighbouring device hosts ``member_id`` (PS_CHECKMEMBERID)."""
        request = protocol.make_request(protocol.PS_CHECKMEMBERID,
                                        member_id=member_id)
        replies = yield from self._broadcast(request)
        if self.last_exchange.total_failure:
            return self._degraded()
        for device_id, payload in replies:
            if (protocol.response_status(payload) == protocol.STATUS_OK
                    and payload.get("match")):
                return device_id
        return None
