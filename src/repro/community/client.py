"""The PeerHood Community client (§5.2.3.2).

"The main functionality of the client is to connect to remote
application servers on remote PTDs and send requests and receive the
desired information from servers."

Every public operation is a process generator implementing one of the
paper's MSCs (Figures 11-17): the request goes out on **all** pooled
connections simultaneously, replies are gathered, and the aggregated
result is returned.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.community import protocol
from repro.community.connections import PeerConnectionPool
from repro.community.profile import MailMessage, ProfileStore
from repro.msc.trace import MscRecorder
from repro.net.connection import Connection
from repro.peerhood.library import PeerHoodLibrary


class CommunityClient:
    """Client side of the reference application for one device."""

    def __init__(self, library: PeerHoodLibrary, store: ProfileStore,
                 pool: PeerConnectionPool,
                 recorder: MscRecorder | None = None) -> None:
        self.library = library
        self.store = store
        self.pool = pool
        self.recorder = recorder
        self.env = library.daemon.env
        self.requests_sent = 0

    @property
    def device_id(self) -> str:
        """Device this client runs on."""
        return self.library.device_id

    def _require_member(self) -> str:
        active = self.store.active
        if active is None:
            raise PermissionError("no member logged in on "
                                  f"{self.device_id!r}")
        return active.member_id

    # -- broadcast machinery --------------------------------------------------

    def _connections(self) -> Generator:
        """Ensure a connection to every neighbour advertising the service.

        Mirrors Figure 9: "gets the list of all nearby PeerHood Capable
        devices [and] connects to the server of all those nearby
        devices through the service PeerHoodCommunity".
        """
        targets = self.library.devices_with_service(self.pool.service_name)
        connections: list[Connection] = []
        for device_id in targets:
            try:
                connection = yield from self.pool.ensure(device_id)
            except (ConnectionError, OSError):
                continue  # peer moved away mid-setup; skip it
            connections.append(connection)
        return connections

    def _broadcast(self, request: dict) -> Generator:
        """Send ``request`` on every connection, then gather replies.

        Sends first (simultaneously), receives second, so the elapsed
        virtual time is the *maximum* of the per-server round trips,
        not their sum — matching the MSCs' parallel arrows.

        Returns ``[(device_id, response), ...]``; servers whose link
        died mid-operation are dropped.
        """
        connections = yield from self._connections()
        live: list[Connection] = []
        for connection in connections:
            try:
                connection.send(request)
            except (ConnectionError, OSError):
                self.pool.drop(connection.remote_id)
                continue
            self.requests_sent += 1
            live.append(connection)
        replies: list[tuple[str, dict]] = []
        for connection in live:
            try:
                payload = yield connection.recv()
            except (ConnectionError, OSError):
                self.pool.drop(connection.remote_id)
                continue
            if payload is None:
                self.pool.drop(connection.remote_id)
                continue
            replies.append((connection.remote_id, payload))
        return replies

    def _single(self, device_id: str, request: dict) -> Generator:
        """One request/response exchange with one specific server."""
        connection = yield from self.pool.ensure(device_id)
        connection.send(request)
        self.requests_sent += 1
        payload = yield connection.recv()
        if payload is None:
            raise ConnectionError(f"connection to {device_id!r} lost")
        return payload

    # -- operations (Figures 11-17) ------------------------------------------

    def get_online_members(self) -> Generator:
        """Figure 11: list the online members across the neighbourhood."""
        request = protocol.make_request(protocol.PS_GETONLINEMEMBERLIST)
        replies = yield from self._broadcast(request)
        members: list[dict] = []
        seen: set[str] = set()
        for _, payload in replies:
            if protocol.response_status(payload) == protocol.STATUS_OK:
                for member in payload.get("members", []):
                    if member["member_id"] not in seen:
                        seen.add(member["member_id"])
                        members.append(member)
        return sorted(members, key=lambda member: member["member_id"])

    def get_interest_list(self) -> Generator:
        """Figure 12: the union of interests available around here.

        Per the MSC, newly received interests are compared against the
        stored list and added only "if it doesn't exist already".
        """
        request = protocol.make_request(protocol.PS_GETINTERESTLIST)
        replies = yield from self._broadcast(request)
        interests: list[str] = []
        active = self.store.active
        if active is not None:
            interests.extend(active.interests.as_list())
        for _, payload in replies:
            if protocol.response_status(payload) == protocol.STATUS_OK:
                for interest in payload.get("interests", []):
                    if interest not in interests:
                        interests.append(interest)
        return interests

    def get_interested_members(self, interest: str) -> Generator:
        """Table 6 row 3: members sharing one interest."""
        request = protocol.make_request(protocol.PS_GETINTERESTEDMEMBERLIST,
                                        interest=interest)
        replies = yield from self._broadcast(request)
        members: list[dict] = []
        seen: set[str] = set()
        for _, payload in replies:
            if protocol.response_status(payload) == protocol.STATUS_OK:
                for member in payload.get("members", []):
                    if member["member_id"] not in seen:
                        seen.add(member["member_id"])
                        members.append(member)
        return sorted(members, key=lambda member: member["member_id"])

    def view_profile(self, member_id: str) -> Generator:
        """Figure 13: fetch one member's profile from whoever holds it."""
        requester = self._require_member()
        request = protocol.make_request(protocol.PS_GETPROFILE,
                                        member_id=member_id,
                                        requester=requester)
        replies = yield from self._broadcast(request)
        for _, payload in replies:
            if protocol.response_status(payload) == protocol.STATUS_OK:
                return payload["profile"]
        return None

    def put_profile_comment(self, member_id: str, comment: str) -> Generator:
        """Figure 14: write a comment onto a member's profile."""
        requester = self._require_member()
        request = protocol.make_request(protocol.PS_ADDPROFILECOMMENT,
                                        member_id=member_id,
                                        requester=requester,
                                        comment=comment)
        replies = yield from self._broadcast(request)
        for _, payload in replies:
            if protocol.response_status(payload) == protocol.SUCCESSFULLY_WRITTEN:
                return True
        return False

    def view_trusted_friends(self, member_id: str) -> Generator:
        """Figure 15: the trusted-friend list of a member."""
        request = protocol.make_request(protocol.PS_GETTRUSTEDFRIEND,
                                        member_id=member_id)
        replies = yield from self._broadcast(request)
        for _, payload in replies:
            if protocol.response_status(payload) == protocol.STATUS_OK:
                return payload.get("trusted", [])
        return None

    def view_shared_content(self, member_id: str) -> Generator:
        """Figure 16: two-phase trusted content listing.

        First ``PS_CHECKTRUSTED`` establishes standing; only if trusted
        does the client send ``PS_GETSHAREDCONTENT``.  Returns the file
        list, or the blocking status string.
        """
        requester = self._require_member()
        check = protocol.make_request(protocol.PS_CHECKTRUSTED,
                                      member_id=member_id,
                                      requester=requester)
        replies = yield from self._broadcast(check)
        holder: str | None = None
        for device_id, payload in replies:
            status = protocol.response_status(payload)
            if status == protocol.NOT_TRUSTED_YET:
                return protocol.NOT_TRUSTED_YET
            if status == protocol.STATUS_OK:
                holder = device_id
        if holder is None:
            return protocol.NO_MEMBERS_YET
        fetch = protocol.make_request(protocol.PS_GETSHAREDCONTENT,
                                      member_id=member_id,
                                      requester=requester)
        payload = yield from self._single(holder, fetch)
        if protocol.response_status(payload) == protocol.STATUS_OK:
            return payload.get("files", [])
        return protocol.response_status(payload)

    def send_message(self, member_id: str, subject: str, body: str) -> Generator:
        """Figure 17: deliver a mail message to a member's device.

        Returns the server's status string
        (``SUCCESSFULLY_WRITTEN``/``UNSUCCESSFULL``) or
        ``NO_MEMBERS_YET`` when nobody around holds that member.
        """
        sender = self._require_member()
        request = protocol.make_request(protocol.PS_MSG,
                                        receiver=member_id, sender=sender,
                                        subject=subject, body=body)
        replies = yield from self._broadcast(request)
        outcome = protocol.NO_MEMBERS_YET
        for _, payload in replies:
            status = protocol.response_status(payload)
            if status == protocol.SUCCESSFULLY_WRITTEN:
                outcome = status
                break
            if status == protocol.UNSUCCESSFULL:
                outcome = status
        if outcome == protocol.SUCCESSFULLY_WRITTEN:
            active = self.store.active
            if active is not None:
                active.sent.append(MailMessage(
                    sender=sender, receiver=member_id, subject=subject,
                    body=body, sent_at=self.env.now))
        return outcome

    def request_trust(self, member_id: str) -> Generator:
        """Ask a member to accept us as trusted friend."""
        requester = self._require_member()
        request = protocol.make_request(protocol.PS_ADDTRUSTED,
                                        member_id=member_id,
                                        requester=requester)
        replies = yield from self._broadcast(request)
        for _, payload in replies:
            if protocol.response_status(payload) == protocol.SUCCESSFULLY_WRITTEN:
                return True
        return False

    def check_member_location(self, member_id: str) -> Generator:
        """Which neighbouring device hosts ``member_id`` (PS_CHECKMEMBERID)."""
        request = protocol.make_request(protocol.PS_CHECKMEMBERID,
                                        member_id=member_id)
        replies = yield from self._broadcast(request)
        for device_id, payload in replies:
            if (protocol.response_status(payload) == protocol.STATUS_OK
                    and payload.get("match")):
                return device_id
        return None
