"""User profiles, trust, messaging and shared content — the per-device
data the PeerHood Community server serves (§5.2.3.1).

Everything lives on the user's own device: "users creates their profile
on their PTD" (§5.1).  There is no central database; every read another
member performs is a network request answered from these records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.community.interests import InterestSet


@dataclass(frozen=True)
class MailMessage:
    """A short message between members (Figure 17).

    Attributes mirror the PS_MSG payload: receiver, sender, subject,
    body, plus the virtual send time.
    """

    sender: str
    receiver: str
    subject: str
    body: str
    sent_at: float


@dataclass(frozen=True)
class ProfileComment:
    """A comment written onto a member's profile (Figure 14)."""

    author: str
    text: str
    written_at: float


@dataclass(frozen=True)
class ProfileView:
    """A record of who visited the profile (Figure 13: "the remote
    server writes the name of the requesting client as the profile
    visitor")."""

    viewer: str
    viewed_at: float


@dataclass(frozen=True)
class SharedFile:
    """One item of shared content, visible to trusted friends only."""

    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {self.size_bytes!r}")


class Profile:
    """One user profile on one device.

    Args:
        member_id: Globally-unique member identifier.
        username: Login name on the local device.
        password: Login secret (kept verbatim; the 2008 reference app
            did no better).
        full_name: Display name.
        interests: Initial personal interests.
    """

    def __init__(self, member_id: str, username: str, password: str,
                 full_name: str = "", interests: list[str] | None = None) -> None:
        self.member_id = member_id
        self.username = username
        self.password = password
        self.full_name = full_name or username
        self.interests = InterestSet(interests)
        self.comments: list[ProfileComment] = []
        self.viewers: list[ProfileView] = []
        self.trusted: set[str] = set()
        self.shared_files: dict[str, SharedFile] = {}
        self.inbox: list[MailMessage] = []
        self.sent: list[MailMessage] = []

    # -- interests ------------------------------------------------------------

    def add_interest(self, raw: str) -> str:
        """Add a personal interest (Table 7: Add/Edit Personal Interest)."""
        return self.interests.add(raw)

    def remove_interest(self, raw: str) -> None:
        """Drop a personal interest."""
        self.interests.remove(raw)

    # -- trust -----------------------------------------------------------------

    def add_trusted(self, member_id: str) -> None:
        """Accept a member as trusted friend (Table 7: Add Trusted)."""
        if member_id == self.member_id:
            raise ValueError("a member cannot trust themselves")
        self.trusted.add(member_id)

    def remove_trusted(self, member_id: str) -> None:
        """Revoke trust."""
        self.trusted.discard(member_id)

    def trusts(self, member_id: str) -> bool:
        """Whether ``member_id`` may see this profile's shared content."""
        return member_id in self.trusted

    # -- shared content -----------------------------------------------------

    def share_file(self, name: str, size_bytes: int) -> SharedFile:
        """Publish a file to trusted friends."""
        shared = SharedFile(name, size_bytes)
        self.shared_files[name] = shared
        return shared

    def unshare_file(self, name: str) -> None:
        """Stop sharing a file."""
        self.shared_files.pop(name, None)

    # -- social records -----------------------------------------------------

    def record_comment(self, author: str, text: str, when: float) -> None:
        """Append a profile comment (server side of Figure 14)."""
        self.comments.append(ProfileComment(author, text, when))

    def record_view(self, viewer: str, when: float) -> None:
        """Append a profile-view record (server side of Figure 13)."""
        self.viewers.append(ProfileView(viewer, when))

    def deliver_mail(self, message: MailMessage) -> None:
        """Write an inbound message into the inbox (Figure 17)."""
        self.inbox.append(message)

    def public_view(self) -> dict:
        """The profile as sent to other members over PS_GETPROFILE."""
        return {
            "member_id": self.member_id,
            "full_name": self.full_name,
            "interests": self.interests.as_list(),
            "comments": [[c.author, c.text] for c in self.comments],
            "trusted_count": len(self.trusted),
        }


class ProfileStore:
    """All profiles on one device (Table 7: Support for Multiple
    Profiles) plus the active login session."""

    def __init__(self) -> None:
        self._profiles: dict[str, Profile] = {}
        self._active: Profile | None = None

    def create_profile(self, member_id: str, username: str, password: str,
                       full_name: str = "",
                       interests: list[str] | None = None) -> Profile:
        """Create a local profile; usernames are unique per device."""
        if username in self._profiles:
            raise ValueError(f"username {username!r} already exists on device")
        profile = Profile(member_id, username, password, full_name, interests)
        self._profiles[username] = profile
        return profile

    def login(self, username: str, password: str) -> Profile:
        """Authenticate and activate a profile (§5.2.1).

        Raises ``PermissionError`` on bad credentials.
        """
        profile = self._profiles.get(username)
        if profile is None or profile.password != password:
            raise PermissionError(f"invalid credentials for {username!r}")
        self._active = profile
        return profile

    def logout(self) -> None:
        """End the session; the server reports no active member."""
        self._active = None

    @property
    def active(self) -> Profile | None:
        """The logged-in profile, or ``None``."""
        return self._active

    def profiles(self) -> list[Profile]:
        """All local profiles (login-screen listing)."""
        return list(self._profiles.values())

    def __len__(self) -> int:
        return len(self._profiles)
