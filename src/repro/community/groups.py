"""Dynamic interest groups (Figures 2 and 5).

A group is named by an interest (its canonical form when semantics are
on) and holds the members currently believed to share it.  Membership
changes are recorded with timestamps so the churn benches (Figure 5)
can reconstruct group lifetimes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MembershipEvent:
    """One join or leave, with provenance.

    Attributes:
        time: Virtual time of the change.
        member_id: Affected member.
        joined: ``True`` for join, ``False`` for leave.
        reason: ``"dynamic"`` (discovery), ``"manual"`` (user action)
            or ``"departed"`` (device left the neighbourhood).
    """

    time: float
    member_id: str
    joined: bool
    reason: str


class Group:
    """One interest group."""

    def __init__(self, interest: str, created_at: float) -> None:
        self.interest = interest
        self.created_at = created_at
        self._members: set[str] = set()
        #: Members who joined manually and must not be auto-evicted by
        #: a discovery refresh (Table 7: "Join/Leave Manually").
        self.manual_members: set[str] = set()
        self.history: list[MembershipEvent] = []

    @property
    def members(self) -> frozenset[str]:
        """Current member ids."""
        return frozenset(self._members)

    def __contains__(self, member_id: str) -> bool:
        return member_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def add(self, member_id: str, when: float, reason: str = "dynamic") -> bool:
        """Add a member; returns ``True`` if membership changed."""
        if member_id in self._members:
            if reason == "manual":
                self.manual_members.add(member_id)
            return False
        self._members.add(member_id)
        if reason == "manual":
            self.manual_members.add(member_id)
        self.history.append(MembershipEvent(when, member_id, True, reason))
        return True

    def remove(self, member_id: str, when: float, reason: str = "departed") -> bool:
        """Remove a member; returns ``True`` if membership changed."""
        if member_id not in self._members:
            return False
        self._members.discard(member_id)
        self.manual_members.discard(member_id)
        self.history.append(MembershipEvent(when, member_id, False, reason))
        return True

    def __repr__(self) -> str:
        return f"Group({self.interest!r}, members={sorted(self._members)})"


class GroupRegistry:
    """All groups one device currently knows about."""

    def __init__(self) -> None:
        self._groups: dict[str, Group] = {}

    def ensure(self, interest: str, when: float) -> Group:
        """The group for ``interest``, created on first reference."""
        group = self._groups.get(interest)
        if group is None:
            group = Group(interest, created_at=when)
            self._groups[interest] = group
        return group

    def get(self, interest: str) -> Group | None:
        """The group, or ``None`` if it never formed."""
        return self._groups.get(interest)

    def items(self) -> list[tuple[str, Group]]:
        """``(interest, group)`` pairs, sorted by interest."""
        return sorted(self._groups.items())

    def names(self) -> list[str]:
        """All group names, sorted."""
        return sorted(self._groups)

    def non_empty(self) -> list[Group]:
        """Groups that currently have at least one member."""
        return [group for _, group in sorted(self._groups.items())
                if len(group) > 0]

    def groups_of(self, member_id: str) -> list[str]:
        """Names of groups the member currently belongs to."""
        return sorted(interest for interest, group in self._groups.items()
                      if member_id in group)

    def remove_member_everywhere(self, member_id: str, when: float,
                                 reason: str = "departed") -> list[str]:
        """Drop a member from every group; returns affected group names."""
        affected = []
        for interest, group in self._groups.items():
            if group.remove(member_id, when, reason):
                affected.append(interest)
        return sorted(affected)

    def drop_empty(self) -> int:
        """Forget empty groups; returns how many were dropped."""
        empty = [interest for interest, group in self._groups.items()
                 if len(group) == 0]
        for interest in empty:
            del self._groups[interest]
        return len(empty)

    def merge(self, absorbed: str, into: str, when: float) -> None:
        """Fold group ``absorbed`` into group ``into`` (semantics teach)."""
        if absorbed == into or absorbed not in self._groups:
            return
        source = self._groups.pop(absorbed)
        target = self.ensure(into, when)
        for member_id in source.members:
            reason = "manual" if member_id in source.manual_members else "dynamic"
            target.add(member_id, when, reason)

    def __len__(self) -> int:
        return len(self._groups)
