"""Semantic interest matching — the thesis' stated future work.

§5.2.6: "users interested in riding bicycle can put biking or cycling
as their interest.  Even though both have same meaning, the application
is not that much intelligent to know both interest are same and it
creates two different dynamic groups rather than one single group."
§6 names "semantics teaching to the environment" as future work, and
§5.1 already sketches the mechanism: "While defining interests users
may teach the semantics to the environment by combining terms meaning
the same issue."

This module implements that teaching as a union-find over interest
terms: ``teach(a, b)`` merges the equivalence classes of ``a`` and
``b``; ``canonical(term)`` maps any term to its class representative
(the lexicographically smallest member, so canonical names are stable
regardless of teaching order).  The ablation bench switches this on to
quantify how many spuriously-split groups it merges.
"""

from __future__ import annotations

from repro.community.interests import normalize_interest


class SemanticMatcher:
    """Teachable equivalence classes over interest terms."""

    def __init__(self, synonym_groups: list[list[str]] | None = None) -> None:
        self._parent: dict[str, str] = {}
        for group in synonym_groups or []:
            if len(group) >= 2:
                first = group[0]
                for other in group[1:]:
                    self.teach(first, other)

    # -- union-find --------------------------------------------------------

    def _find(self, term: str) -> str:
        root = term
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        # Path compression keeps lookups O(alpha).
        while self._parent.get(term, term) != root:
            self._parent[term], term = root, self._parent[term]
        return root

    def teach(self, term_a: str, term_b: str) -> None:
        """Declare that two terms mean the same issue."""
        a = normalize_interest(term_a)
        b = normalize_interest(term_b)
        root_a, root_b = self._find(a), self._find(b)
        if root_a == root_b:
            return
        # The lexicographically smaller root wins so canonical names do
        # not depend on teaching order.
        keep, absorb = sorted((root_a, root_b))
        self._parent[absorb] = keep
        self._parent.setdefault(keep, keep)

    # -- queries --------------------------------------------------------------

    def canonical(self, term: str) -> str:
        """The representative for ``term``'s equivalence class."""
        return self._find(normalize_interest(term))

    def same(self, term_a: str, term_b: str) -> bool:
        """Whether two terms were taught to mean the same issue."""
        return self.canonical(term_a) == self.canonical(term_b)

    def synonyms_of(self, term: str) -> list[str]:
        """Every known term in ``term``'s class (including itself)."""
        root = self.canonical(term)
        known = set(self._parent) | {normalize_interest(term)}
        return sorted(candidate for candidate in known
                      if self._find(candidate) == root)

    def class_count(self) -> int:
        """Number of distinct known equivalence classes."""
        return len({self._find(term) for term in self._parent})


class ExactMatcher:
    """The paper's default behaviour: no semantics, strings must match."""

    def canonical(self, term: str) -> str:
        """Identity mapping (after lexical normalisation)."""
        return normalize_interest(term)

    def same(self, term_a: str, term_b: str) -> bool:
        """Exact (normalised) equality."""
        return self.canonical(term_a) == self.canonical(term_b)
