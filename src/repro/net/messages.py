"""Deterministic message serialisation.

Payloads are JSON-serialisable dicts encoded with sorted keys and no
whitespace, so a given payload always produces the same byte count —
and therefore the same simulated transfer time.  A four-byte big-endian
length prefix frames each message, mirroring the buffer-packaging the
paper's server does before transmitting ("packages the desired
information into buffers", §5.2.3.1).
"""

from __future__ import annotations

import json
import struct
from typing import Any

_LENGTH = struct.Struct(">I")

#: Refuse absurd frames; the reference app moves profiles and file
#: lists, not gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class FrameError(ValueError):
    """Raised for malformed or oversized frames."""


def serialize(payload: Any) -> bytes:
    """Encode ``payload`` as a length-prefixed canonical-JSON frame."""
    try:
        body = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"payload not serialisable: {exc}") from exc
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def deserialize(frame: bytes) -> Any:
    """Decode a frame produced by :func:`serialize`."""
    if len(frame) < _LENGTH.size:
        raise FrameError(f"frame too short: {len(frame)} bytes")
    (length,) = _LENGTH.unpack(frame[:_LENGTH.size])
    body = frame[_LENGTH.size:]
    if len(body) != length:
        raise FrameError(f"length prefix says {length}, body is {len(body)}")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body not valid JSON: {exc}") from exc


def frame_size(payload: Any) -> int:
    """Bytes the payload occupies on the wire (prefix included)."""
    return len(serialize(payload))
