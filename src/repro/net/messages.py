"""Deterministic message serialisation.

Payloads are JSON-serialisable dicts encoded with sorted keys and no
whitespace, so a given payload always produces the same byte count —
and therefore the same simulated transfer time.  A four-byte big-endian
length prefix frames each message, mirroring the buffer-packaging the
paper's server does before transmitting ("packages the desired
information into buffers", §5.2.3.1).

Encoding reuses one pre-configured :class:`json.JSONEncoder` instead of
going through :func:`json.dumps` — ``dumps`` with non-default options
builds a fresh encoder per call, which profiling showed as measurable
overhead on the per-message hot path.
"""

from __future__ import annotations

import json
import struct
from typing import Any

_LENGTH = struct.Struct(">I")

#: Shared canonical encoder: sorted keys, no whitespace (stable bytes).
#: ``ensure_ascii`` (the default) matters beyond canonicalisation: the
#: encoded text is pure ASCII, so its length *is* its UTF-8 byte count
#: and :func:`wire_copy` never has to materialise the bytes.
_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"))

#: Shared decoder: ``json.loads`` re-dispatches (and, for bytes input,
#: sniffs the encoding) on every call.
_DECODER = json.JSONDecoder()

#: Refuse absurd frames; the reference app moves profiles and file
#: lists, not gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class FrameError(ValueError):
    """Raised for malformed or oversized frames."""


def _encode_body(payload: Any) -> bytes:
    try:
        return _ENCODER.encode(payload).encode()
    except (TypeError, ValueError) as exc:
        raise FrameError(f"payload not serialisable: {exc}") from exc


def serialize(payload: Any) -> bytes:
    """Encode ``payload`` as a length-prefixed canonical-JSON frame."""
    body = _encode_body(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def serialize_into(payload: Any, buffer: bytearray) -> int:
    """Encode ``payload`` into ``buffer`` (resized in place).

    Produces byte-for-byte the same frame as :func:`serialize`, but
    reuses the caller's buffer (normally one checked out of
    :data:`repro.net.buffers.frame_pool`) instead of materialising a
    fresh ``bytes`` per message: the header is struct-packed in place
    and the only transient left on the happy path is the encoder's
    output text itself.  Returns the frame length.
    """
    try:
        text = _ENCODER.encode(payload)
    except (TypeError, ValueError) as exc:
        raise FrameError(f"payload not serialisable: {exc}") from exc
    # Canonical frames are pure ASCII (ensure_ascii), so the text
    # length *is* the body byte count.
    length = len(text)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    if len(buffer) < _LENGTH.size:
        buffer[:] = b"\x00\x00\x00\x00"
    buffer[_LENGTH.size:] = text.encode()
    _LENGTH.pack_into(buffer, 0, length)
    return _LENGTH.size + length


def deserialize(frame: bytes | bytearray) -> Any:
    """Decode a frame produced by :func:`serialize`."""
    if len(frame) < _LENGTH.size:
        raise FrameError(f"frame too short: {len(frame)} bytes")
    (length,) = _LENGTH.unpack_from(frame)
    if len(frame) - _LENGTH.size != length:
        raise FrameError(f"length prefix says {length}, "
                         f"body is {len(frame) - _LENGTH.size}")
    try:
        # Decode straight off a view: no body-slice copy per message.
        return _DECODER.decode(str(memoryview(frame)[_LENGTH.size:], "utf-8"))
    except UnicodeDecodeError:
        # Non-UTF-8 body: canonical frames are ASCII, so only corrupt
        # or foreign input lands here.  Fall back to ``json.loads``,
        # whose bytes path sniffs UTF-16/32 BOMs, to keep the historic
        # accept/reject behaviour exactly.
        try:
            return json.loads(bytes(frame[_LENGTH.size:]))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(f"frame body not valid JSON: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FrameError(f"frame body not valid JSON: {exc}") from exc


def frame_size(payload: Any) -> int:
    """Bytes the payload occupies on the wire (prefix included)."""
    return _LENGTH.size + len(_encode_body(payload))


class _NotPlainJson(Exception):
    """Internal: payload contains something whose JSON round-trip is
    not a plain structural copy (tuple, non-str dict key, custom type)."""


def _copy_json(value: Any) -> Any:
    """Structural deep copy equal to ``decode(encode(value))``.

    Only exact built-in JSON types qualify — a tuple decodes to a list,
    an int-keyed dict to str keys, an IntEnum to a bare int — so
    anything else raises :class:`_NotPlainJson` and the caller falls
    back to a real decode.  Scalars are immutable and shared as-is.
    """
    kind = type(value)
    if kind is dict:
        copy = {}
        for key, item in value.items():
            if type(key) is not str:
                raise _NotPlainJson
            copy[key] = _copy_json(item)
        return copy
    if kind is list:
        return [_copy_json(item) for item in value]
    if kind is str or kind is int or kind is float or kind is bool \
            or value is None:
        return value
    raise _NotPlainJson


def wire_copy(payload: Any) -> tuple[int, Any]:
    """``(wire bytes incl. prefix, deep copy)`` for one message.

    The simulated :class:`~repro.net.connection.Connection` needs both
    the frame size (transfer time, adapter accounting) and a decoupled
    copy of the payload for the receiver (mutations on one side must
    not leak to the other, exactly as over a real socket).  The encode
    still runs — the byte count must match :func:`serialize` exactly or
    simulated transfer times drift — but the receiver's copy is built
    structurally, skipping the JSON parse on the per-message hot path;
    payloads that JSON would coerce (tuples, non-str keys) take the
    round-trip fallback so the copy always equals ``decode(encode())``.
    """
    try:
        text = _ENCODER.encode(payload)
    except (TypeError, ValueError) as exc:
        raise FrameError(f"payload not serialisable: {exc}") from exc
    if len(text) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(text)} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        copy = _copy_json(payload)
    except _NotPlainJson:
        copy = _DECODER.decode(text)
    return _LENGTH.size + len(text), copy
