"""Reusable wire-buffer pool (allocation discipline, DESIGN.md §10).

Every TCP send used to materialise a fresh ``bytes`` frame: prefix
pack, body encode, concatenation — three transients per message, all
garbage one syscall later.  The pool keeps a small free list of
``bytearray`` buffers that :func:`repro.net.messages.serialize_into`
fills in place, so the steady state reuses the same few buffers
round-robin instead of churning the allocator.

Discipline rules:

* ``checkout`` returns an *owned* buffer — exactly one ``checkin`` per
  checkout, after the bytes have been consumed (written to the socket,
  copied into a transcript).
* ``checkin`` trims buffers that ballooned past the high-water mark
  back down, so one oversized file-listing frame cannot pin megabytes
  inside the pool forever.
* The pool holds at most ``max_buffers``; extras are simply dropped
  for the garbage collector (correct, just slower — the pool is an
  optimisation, never a correctness dependency).

The pool is not thread-safe; like the rest of the kernel it assumes
the single-threaded event loop.
"""

from __future__ import annotations

#: Buffers returned larger than this are shrunk on checkin.
DEFAULT_HIGH_WATER = 64 * 1024

#: Free-list cap; beyond it checked-in buffers are dropped.
DEFAULT_MAX_BUFFERS = 32


class BufferPool:
    """Checkout/checkin free list of reusable ``bytearray`` buffers."""

    def __init__(self, *, max_buffers: int = DEFAULT_MAX_BUFFERS,
                 high_water: int = DEFAULT_HIGH_WATER) -> None:
        if max_buffers < 0:
            raise ValueError(f"max_buffers must be >= 0: {max_buffers!r}")
        if high_water <= 0:
            raise ValueError(f"high_water must be positive: {high_water!r}")
        self.max_buffers = max_buffers
        self.high_water = high_water
        self._free: list[bytearray] = []
        #: Counters for the bench --alloc report and tests.
        self.checkouts = 0
        self.reuses = 0
        self.trims = 0

    def __len__(self) -> int:
        return len(self._free)

    def checkout(self) -> bytearray:
        """Borrow a buffer (its previous contents are undefined)."""
        self.checkouts += 1
        if self._free:
            self.reuses += 1
            return self._free.pop()
        return bytearray()

    def checkin(self, buffer: bytearray) -> None:
        """Return a borrowed buffer to the free list."""
        if len(self._free) >= self.max_buffers:
            return
        if len(buffer) > self.high_water:
            # One giant frame must not pin its capacity forever.
            del buffer[self.high_water:]
            self.trims += 1
        self._free.append(buffer)


#: Shared pool for wire frames; single-threaded event-loop use only.
frame_pool = BufferPool()
