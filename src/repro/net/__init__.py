"""Simulated transport: framed messages over radio links.

This sits between the radio medium and PeerHood.  A
:class:`~repro.net.stack.NetworkStack` gives each device listeners
(named ports) and outbound connections; a
:class:`~repro.net.connection.Connection` moves length-prefixed frames
with latency derived from the technology's bandwidth, plus the gateway
relay hop for GPRS.

Resilience lives here too: :mod:`repro.net.faults` injects
deterministic link failures (setup failures, mid-stream drops,
corruption, latency spikes, device flaps) and :mod:`repro.net.retry`
provides the retry/timeout/backoff vocabulary the protocol layers use
to survive them.
"""

from repro.net.connection import Connection, ConnectionClosedError
from repro.net.faults import (
    FaultConfig,
    FaultCounters,
    FaultInjector,
    InjectedFaultError,
    SendFault,
)
from repro.net.messages import FrameError, deserialize, frame_size, serialize
from repro.net.retry import (
    AttemptTimeoutError,
    CorruptReplyError,
    Degraded,
    RetryCounters,
    RetryPolicy,
    is_degraded,
    recv_with_timeout,
    wait_process_with_timeout,
)
from repro.net.stack import (
    ListenerExistsError,
    NetworkStack,
    NoListenerError,
    StackRegistry,
)

__all__ = [
    "AttemptTimeoutError",
    "Connection",
    "ConnectionClosedError",
    "CorruptReplyError",
    "Degraded",
    "FaultConfig",
    "FaultCounters",
    "FaultInjector",
    "FrameError",
    "InjectedFaultError",
    "ListenerExistsError",
    "NetworkStack",
    "NoListenerError",
    "RetryCounters",
    "RetryPolicy",
    "SendFault",
    "StackRegistry",
    "deserialize",
    "frame_size",
    "is_degraded",
    "recv_with_timeout",
    "serialize",
    "wait_process_with_timeout",
]
