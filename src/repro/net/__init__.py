"""Transports: framed messages over simulated radio or real TCP.

This sits between the carrier and PeerHood.  The *simulated* backend —
:class:`~repro.net.stack.NetworkStack` listeners plus
:class:`~repro.net.connection.Connection` links — moves length-prefixed
frames with latency derived from the technology's bandwidth, plus the
gateway relay hop for GPRS.  The *TCP* backend (:mod:`repro.net.tcp`)
moves byte-identical frames over asyncio sockets; the shared contract
both implement lives in :mod:`repro.net.transport` and is enforced by
``tests/conformance``.

Resilience lives here too: :mod:`repro.net.faults` injects
deterministic link failures (setup failures, mid-stream drops,
corruption, latency spikes, device flaps) and :mod:`repro.net.retry`
provides the retry/timeout/backoff vocabulary the protocol layers use
to survive them.
"""

from repro.net.connection import Connection, ConnectionClosedError
from repro.net.faults import (
    FaultConfig,
    FaultCounters,
    FaultInjector,
    InjectedFaultError,
    SendFault,
)
from repro.net.framing import Frame, FrameDecoder, TruncatedFrameError
from repro.net.messages import FrameError, deserialize, frame_size, serialize
from repro.net.retry import (
    AttemptTimeoutError,
    CorruptReplyError,
    Degraded,
    RetryCounters,
    RetryPolicy,
    is_degraded,
    recv_with_timeout,
    wait_process_with_timeout,
)
from repro.net.stack import (
    ListenerExistsError,
    NetworkStack,
    NoListenerError,
    StackRegistry,
)
from repro.net.tcp import TcpConnection, TcpServer, dial
from repro.net.transport import Transport, TransportConnection

__all__ = [
    "AttemptTimeoutError",
    "Connection",
    "ConnectionClosedError",
    "CorruptReplyError",
    "Degraded",
    "FaultConfig",
    "FaultCounters",
    "FaultInjector",
    "Frame",
    "FrameDecoder",
    "FrameError",
    "InjectedFaultError",
    "ListenerExistsError",
    "NetworkStack",
    "NoListenerError",
    "RetryCounters",
    "RetryPolicy",
    "SendFault",
    "StackRegistry",
    "TcpConnection",
    "TcpServer",
    "Transport",
    "TransportConnection",
    "TruncatedFrameError",
    "deserialize",
    "dial",
    "frame_size",
    "is_degraded",
    "recv_with_timeout",
    "serialize",
    "wait_process_with_timeout",
]
