"""Simulated transport: framed messages over radio links.

This sits between the radio medium and PeerHood.  A
:class:`~repro.net.stack.NetworkStack` gives each device listeners
(named ports) and outbound connections; a
:class:`~repro.net.connection.Connection` moves length-prefixed frames
with latency derived from the technology's bandwidth, plus the gateway
relay hop for GPRS.
"""

from repro.net.connection import Connection, ConnectionClosedError
from repro.net.messages import FrameError, deserialize, frame_size, serialize
from repro.net.stack import (
    ListenerExistsError,
    NetworkStack,
    NoListenerError,
    StackRegistry,
)

__all__ = [
    "Connection",
    "ConnectionClosedError",
    "FrameError",
    "ListenerExistsError",
    "NetworkStack",
    "NoListenerError",
    "StackRegistry",
    "deserialize",
    "frame_size",
    "serialize",
]
