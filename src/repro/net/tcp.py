"""Asyncio TCP backend: the PS_* protocol over real OS sockets.

The simulated backend models *time*; this backend moves the very same
canonical frames (:func:`repro.net.messages.serialize`) over localhost
or LAN TCP.  ``tests/conformance`` drives identical PS_* exchanges
through both and asserts the captured wire bytes match frame-for-frame
— which is what keeps the simulator honest about the protocol it
claims to model.

Pieces:

* :class:`TcpConnection` — the client-side endpoint.  ``await
  send(payload)`` writes one frame; ``await recv()`` returns the next
  payload, ``None`` on clean EOF (matching the simulated backend's
  "pending receivers resume with ``None``" contract), and raises
  :class:`~repro.net.framing.TruncatedFrameError` on a mid-frame
  disconnect.
* :func:`dial` — open a connection, mapping ``ConnectionRefusedError``
  onto the stack's :class:`~repro.net.transport.NoListenerError` so
  "nobody is listening" looks the same on both backends.
* :class:`TcpServer` — a small accept loop running one
  request/response pump per client over a user-supplied synchronous
  handler (typically
  :meth:`repro.community.server.CommunityService.handle_request`).
  Malformed frames poison the stream (length-prefixed framing cannot
  resynchronise), so the server counts the error and drops that client
  — mirroring how the simulated server treats transport-level garbage.

Nothing here reads a wall clock; callers that want wall-clock
timestamps (e.g. ``scripts/serve_tcp.py``) inject a clock from outside
the simulated path.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import deque
from collections.abc import Callable
from typing import Any

from repro.net.buffers import frame_pool
from repro.net.framing import Frame, FrameDecoder
from repro.net.messages import FrameError, serialize_into
from repro.net.transport import ConnectionClosedError, NoListenerError

#: Read granularity; small enough to exercise the incremental decoder,
#: large enough not to syscall per byte.
_READ_CHUNK = 65536

#: Observer of raw wire bytes: ``(direction, frame_bytes)`` with
#: direction ``"send"`` or ``"recv"``.  Conformance tests install one
#: to capture transcripts.
FrameTap = Callable[[str, bytes], None]

#: Synchronous request handler: ``(payload, remote_id) -> response``.
RequestHandler = Callable[[Any, str], Any]


def _endpoint_name(peer: Any) -> str:
    """Opaque endpoint label from a socket address tuple."""
    if isinstance(peer, tuple) and len(peer) >= 2:
        return f"{peer[0]}:{peer[1]}"
    return str(peer)


class TcpConnection:
    """One endpoint of a TCP link speaking length-prefixed frames."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *,
                 on_frame: FrameTap | None = None) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        self._inbox: deque[Frame] = deque()
        self._on_frame = on_frame
        self._eof = False
        self.closed = False
        self.bytes_sent = 0
        self.messages_sent = 0
        self.local_id = _endpoint_name(writer.get_extra_info("sockname"))
        self.remote_id = _endpoint_name(writer.get_extra_info("peername"))

    # -- sending -------------------------------------------------------------

    async def send(self, payload: Any) -> int:
        """Transmit ``payload`` as one frame; returns its byte count.

        Raises :class:`ConnectionClosedError` on a closed connection;
        socket-level failures surface as their native
        ``ConnectionError`` subclasses (reset, broken pipe), which is
        exactly the taxonomy the retry layer keys on.
        """
        if self.closed:
            raise ConnectionClosedError(
                f"send on closed connection {self.local_id}->{self.remote_id}")
        buffer = frame_pool.checkout()
        try:
            total = serialize_into(payload, buffer)
            if self._on_frame is not None:
                # Transcript taps retain the frame; give them their own
                # immutable copy rather than the pooled buffer.
                self._on_frame("send", bytes(buffer))
            # Selector transports consume ``data`` synchronously inside
            # write() (sent or copied into the transport buffer), so
            # the pooled buffer is free for reuse after the drain.
            self._writer.write(buffer)
            await self._writer.drain()
        finally:
            frame_pool.checkin(buffer)
        self.bytes_sent += total
        self.messages_sent += 1
        return total

    # -- receiving ------------------------------------------------------------

    async def recv(self) -> Any:
        """The next inbound payload, or ``None`` once the peer closed.

        Raises:
            TruncatedFrameError: The peer disconnected mid-frame.
            FrameError: The peer sent a malformed frame; the connection
                is unusable afterwards (framing cannot resynchronise).
            ConnectionClosedError: ``recv`` on a locally closed
                connection with nothing buffered.
        """
        frame = await self._recv_frame()
        return None if frame is None else frame.payload

    async def _recv_frame(self) -> Frame | None:
        while not self._inbox:
            if self._eof:
                return None
            if self.closed:
                raise ConnectionClosedError(
                    f"recv on closed connection "
                    f"{self.local_id}<-{self.remote_id}")
            data = await self._reader.read(_READ_CHUNK)
            if not data:
                self._eof = True
                self._decoder.eof()  # raises TruncatedFrameError mid-frame
                return None
            self._inbox.extend(self._decoder.feed(data))
        frame = self._inbox.popleft()
        if self._on_frame is not None:
            self._on_frame("recv", frame.raw)
        return frame

    def pending(self) -> int:
        """Number of decoded-but-unread inbound payloads."""
        return len(self._inbox)

    # -- lifecycle ----------------------------------------------------------

    async def close(self) -> None:
        """Close this endpoint (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self._writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await self._writer.wait_closed()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"TcpConnection({self.local_id}->{self.remote_id}, {state})"


async def dial(host: str, port: int, *,
               on_frame: FrameTap | None = None) -> TcpConnection:
    """Open a TCP connection to a frame-speaking server.

    Raises:
        NoListenerError: Nothing is accepting on ``(host, port)`` —
            the same error a simulated connect raises for a missing
            listener, so backend-agnostic callers need one handler.
    """
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except ConnectionRefusedError as exc:
        raise NoListenerError(
            f"{host}:{port} has no listener: {exc}") from exc
    return TcpConnection(reader, writer, on_frame=on_frame)


class TcpServer:
    """Accept loop serving one request/response pump per client.

    The handler is synchronous and transport-free — it maps one request
    payload to one response payload.  Per-client state (frame decoder,
    writer) lives in the pump, so handlers can be shared across any
    number of concurrent clients.
    """

    def __init__(self, handler: RequestHandler, *,
                 host: str = "127.0.0.1", port: int = 0,
                 on_frame: FrameTap | None = None) -> None:
        self.handler = handler
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.requests_handled = 0
        self.frame_errors = 0
        self._on_frame = on_frame
        self._server: asyncio.Server | None = None
        self._clients: set[asyncio.StreamWriter] = set()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the real port."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def listening(self) -> bool:
        """Whether the accept loop is up."""
        return self._server is not None and self._server.is_serving()

    def open_connection_count(self) -> int:
        """Number of currently connected clients."""
        return len(self._clients)

    async def stop(self) -> None:
        """Stop accepting, close every client, wait for the pumps."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._clients):
            writer.close()
        while self._clients:
            await asyncio.sleep(0)

    # -- per-client pump -----------------------------------------------------

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        self._clients.add(writer)
        remote_id = _endpoint_name(writer.get_extra_info("peername"))
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    # Clean EOF ends the session; mid-frame EOF is a
                    # framing error worth counting.
                    try:
                        decoder.eof()
                    except FrameError:
                        self.frame_errors += 1
                    return
                try:
                    frames = decoder.feed(data)
                except FrameError:
                    self.frame_errors += 1
                    return  # cannot resynchronise; drop the client
                for frame in frames:
                    if self._on_frame is not None:
                        self._on_frame("recv", frame.raw)
                    buffer = frame_pool.checkout()
                    try:
                        serialize_into(self.handler(frame.payload,
                                                    remote_id), buffer)
                        self.requests_handled += 1
                        if self._on_frame is not None:
                            self._on_frame("send", bytes(buffer))
                        # write() consumes the bytes synchronously on
                        # selector transports; safe to recycle after.
                        writer.write(buffer)
                    finally:
                        frame_pool.checkin(buffer)
                await writer.drain()
        except (ConnectionError, OSError):
            return  # peer reset mid-session; nothing to answer
        finally:
            self._clients.discard(writer)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
