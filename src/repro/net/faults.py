"""Deterministic fault injection for the simulated network.

The evaluation environment of the paper assumes clean links; this
module makes the opposite assumption injectable.  A
:class:`FaultInjector` installs itself on the shared
:class:`~repro.radio.medium.Medium` and is consulted from the two
choke points every exchange passes through:

* :meth:`~repro.net.stack.NetworkStack.connect` — connection-setup
  failures (the peer "moved away" exactly as setup completed);
* :meth:`~repro.net.connection.Connection.send` — mid-stream drops
  (the link breaks under an open ``PS_*`` exchange), payload
  corruption (delivered frames that fail protocol validation), latency
  spikes, and device *flaps* (every adapter of one endpoint goes down
  for a while, then returns — discovery loses and must re-find it).

All draws come from one named stream of the environment's seeded RNG,
so a fault schedule is a pure function of ``(root seed, stream name)``:
chaos runs replay byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Generator, Iterable
from typing import TYPE_CHECKING

from repro.radio.medium import Medium, NotReachableError
from repro.simenv import Delay, Environment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.connection import Connection


class InjectedFaultError(NotReachableError):
    """A fault-injected link failure (subclass of the organic error).

    Protocol layers treat it exactly like a real
    :class:`~repro.radio.medium.NotReachableError`; the distinct type
    exists so tests and metrics can tell injected faults from organic
    ones.
    """


@dataclass(frozen=True)
class FaultConfig:
    """Per-event fault probabilities and magnitudes.

    All rates are per *event* (per connection attempt, per frame sent),
    not per second, which keeps them meaningful independently of
    traffic volume.
    """

    connect_failure_rate: float = 0.0
    drop_rate: float = 0.0
    corruption_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_factor: float = 10.0
    flap_rate: float = 0.0
    flap_down_s: float = 8.0

    def __post_init__(self) -> None:
        for name in ("connect_failure_rate", "drop_rate", "corruption_rate",
                     "latency_spike_rate", "flap_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.latency_spike_factor < 1.0:
            raise ValueError("latency_spike_factor must be >= 1")
        if self.flap_down_s < 0.0:
            raise ValueError("flap_down_s must be non-negative")

    @classmethod
    def chaos(cls, level: float = 0.2) -> FaultConfig:
        """A balanced chaos profile scaled by ``level`` (drop rate).

        ``level`` is the mid-stream drop probability; the other faults
        scale with it at fixed ratios that keep runs lively without
        making every exchange fail.
        """
        return cls(connect_failure_rate=level / 2.0,
                   drop_rate=level,
                   corruption_rate=level / 4.0,
                   latency_spike_rate=level / 2.0,
                   flap_rate=level / 10.0)

    def scaled(self, factor: float) -> FaultConfig:
        """A copy with every probability multiplied by ``factor``."""
        return replace(
            self,
            connect_failure_rate=min(1.0, self.connect_failure_rate * factor),
            drop_rate=min(1.0, self.drop_rate * factor),
            corruption_rate=min(1.0, self.corruption_rate * factor),
            latency_spike_rate=min(1.0, self.latency_spike_rate * factor),
            flap_rate=min(1.0, self.flap_rate * factor))


@dataclass
class FaultCounters:
    """Tally of every fault the injector actually fired."""

    connect_failures: int = 0
    drops: int = 0
    corruptions: int = 0
    latency_spikes: int = 0
    flaps: int = 0
    flapped_devices: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """All injected faults."""
        return (self.connect_failures + self.drops + self.corruptions
                + self.latency_spikes + self.flaps)

    def as_dict(self) -> dict:
        """Plain-dict snapshot for reports."""
        return {
            "connect_failures": self.connect_failures,
            "drops": self.drops,
            "corruptions": self.corruptions,
            "latency_spikes": self.latency_spikes,
            "flaps": self.flaps,
            "total": self.total,
            "flapped_devices": dict(self.flapped_devices),
        }


@dataclass(frozen=True)
class SendFault:
    """Decision the injector makes about one outbound frame."""

    drop: bool = False
    corrupt: bool = False
    latency_factor: float = 1.0
    flap_device: str | None = None


#: The no-op decision, shared to avoid per-send allocation when clean.
CLEAN_SEND = SendFault()


class FaultInjector:
    """Seeded fault source installed on a :class:`Medium`.

    Usage::

        injector = FaultInjector(env, medium, FaultConfig.chaos(0.2))
        injector.install()
        ... run the workload ...
        injector.uninstall()
        report = injector.counters.as_dict()

    The injector starts enabled; toggle :attr:`enabled` to suspend
    injection (e.g. to let a chaos run converge fault-free at the end)
    without losing counters or RNG position.
    """

    def __init__(self, env: Environment, medium: Medium,
                 config: FaultConfig | None = None, *,
                 stream: str = "faults") -> None:
        self.env = env
        self.medium = medium
        self.config = config or FaultConfig()
        self.rng = env.random.stream(stream)
        self.counters = FaultCounters()
        self.enabled = True
        #: Devices currently flapped down (guards double-flap).
        self._down: set[str] = set()

    # -- installation -------------------------------------------------------

    def install(self) -> FaultInjector:
        """Attach to the medium so stacks and connections consult us."""
        self.medium.faults = self
        return self

    def uninstall(self) -> None:
        """Detach from the medium (counters are kept)."""
        if self.medium.faults is self:
            self.medium.faults = None

    # -- hook: connection setup ---------------------------------------------

    def fail_connect(self, local_id: str, remote_id: str,
                     technology_name: str) -> None:
        """Raise :class:`InjectedFaultError` when setup should fail."""
        if not self.enabled:
            return
        if self.rng.random() < self.config.connect_failure_rate:
            self.counters.connect_failures += 1
            raise InjectedFaultError(
                f"injected setup failure {local_id!r}->{remote_id!r} "
                f"over {technology_name}")

    # -- hook: per-frame ----------------------------------------------------

    def on_send(self, connection: Connection) -> SendFault:
        """Decide the fate of one outbound frame."""
        if not self.enabled:
            return CLEAN_SEND
        config = self.config
        if config.flap_rate > 0.0 and self.rng.random() < config.flap_rate:
            # The remote endpoint flaps mid-exchange: the frame is lost
            # *and* the device disappears from the neighbourhood.
            return SendFault(drop=True, flap_device=connection.remote_id)
        if config.drop_rate > 0.0 and self.rng.random() < config.drop_rate:
            return SendFault(drop=True)
        corrupt = (config.corruption_rate > 0.0
                   and self.rng.random() < config.corruption_rate)
        factor = 1.0
        if (config.latency_spike_rate > 0.0
                and self.rng.random() < config.latency_spike_rate):
            factor = config.latency_spike_factor
        if not corrupt and factor == 1.0:
            return CLEAN_SEND
        return SendFault(corrupt=corrupt, latency_factor=factor)

    def note_drop(self) -> None:
        """Account one injected mid-stream drop."""
        self.counters.drops += 1

    def note_spike(self) -> None:
        """Account one injected latency spike."""
        self.counters.latency_spikes += 1

    def corrupt_payload(self, payload: object) -> dict:
        """Replace a payload with deterministic garbage.

        The garbage is a dict that fails *every* protocol validator
        (no ``op``, no ``status``) so both request and response paths
        surface it as a typed :class:`ProtocolError`/``BAD_REQUEST``,
        never an ``IndexError``/``KeyError`` deep in a handler.
        """
        self.counters.corruptions += 1
        noise = self.rng.getrandbits(64)
        return {"x-corrupt": f"{noise:016x}"}

    # -- device flaps --------------------------------------------------------

    def flap(self, device_id: str, down_s: float | None = None) -> bool:
        """Take every adapter of ``device_id`` down, restore later.

        Returns ``False`` (without counting) when the device is already
        mid-flap.  Restoration is scheduled on the environment, so the
        flap is itself a deterministic simulated event.
        """
        if device_id in self._down:
            return False
        adapters = self.medium.adapters_of(device_id)
        if not adapters:
            return False
        self._down.add(device_id)
        self.counters.flaps += 1
        self.counters.flapped_devices[device_id] = (
            self.counters.flapped_devices.get(device_id, 0) + 1)
        was_enabled = [adapter for adapter in adapters if adapter.enabled]
        for adapter in was_enabled:
            adapter.enabled = False
        self.env.call_in(self.config.flap_down_s if down_s is None else down_s,
                         self._restore, device_id, was_enabled)
        return True

    def _restore(self, device_id: str, adapters: list) -> None:
        for adapter in adapters:
            adapter.enabled = True
        self._down.discard(device_id)

    def flapping(self, device_id: str) -> bool:
        """Whether the device is currently mid-flap."""
        return device_id in self._down

    # -- background chaos ----------------------------------------------------

    def chaos_flapper(self, device_ids: Iterable[str], *,
                      mean_interval_s: float = 30.0,
                      stop_at: float | None = None) -> Generator:
        """Process generator flapping random devices at random times.

        Spawn with ``env.spawn(injector.chaos_flapper([...]))``.  Flap
        victims and intervals come from the injector's stream, so the
        schedule is fixed by the seed.  Stops at virtual time
        ``stop_at`` (or runs while the injector stays enabled).
        """
        victims = sorted(device_ids)
        if not victims:
            return None
        while self.enabled and (stop_at is None or self.env.now < stop_at):
            yield Delay(self.rng.expovariate(1.0 / mean_interval_s))
            if not self.enabled:
                break
            self.flap(self.rng.choice(victims))
        return None
