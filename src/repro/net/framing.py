"""Incremental frame decoding for stream transports.

The simulated backend moves whole payloads, so it never sees partial
frames.  A TCP stream offers no such courtesy: one ``read`` may return
half a length prefix, three frames glued together, or a frame split at
any byte.  :class:`FrameDecoder` reassembles the canonical
length-prefixed frames of :mod:`repro.net.messages` from arbitrary
chunkings, and turns every malformed input into a *typed* error —
never a hang, never an unbounded buffer.

Error taxonomy:

* an oversized length prefix (> ``MAX_FRAME_BYTES``) raises
  :class:`~repro.net.messages.FrameError` immediately on arrival, so a
  hostile prefix cannot make the decoder buffer gigabytes;
* a complete frame whose body is not valid JSON raises ``FrameError``
  when the body completes;
* a stream that ends mid-frame raises :class:`TruncatedFrameError`
  from :meth:`FrameDecoder.eof` — a ``FrameError`` that is *also* a
  ``ConnectionError``, because a truncated frame is how a mid-frame
  disconnect looks from the receiving side, and retry layers key on
  ``ConnectionError``.

A decoder that raised is poisoned: frame boundaries are lost and
resynchronising on a length-prefixed stream is impossible, so the only
safe reaction is to drop the connection.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

from repro.net.messages import MAX_FRAME_BYTES, FrameError, deserialize

_LENGTH = struct.Struct(">I")


class TruncatedFrameError(FrameError, ConnectionError):
    """The stream ended mid-frame (mid-frame disconnect).

    Both a :class:`~repro.net.messages.FrameError` (the bytes are
    malformed) and a ``ConnectionError`` (the cause is link loss), so
    it lands in the retry taxonomy either way a caller classifies it.
    """


@dataclass(frozen=True)
class Frame:
    """One decoded frame: its exact wire bytes and the parsed payload."""

    raw: bytes
    payload: Any


class FrameDecoder:
    """Reassembles canonical frames from an arbitrarily chunked stream.

    Feed it whatever the socket returned; it yields complete
    :class:`Frame` objects (raw bytes preserved for transcript capture)
    and keeps any tail bytes buffered for the next feed.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def buffered(self) -> int:
        """Bytes currently held waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Frame]:
        """Absorb ``data``; return every frame it completed.

        Raises:
            FrameError: Oversized length prefix or non-JSON body.  The
                decoder is poisoned afterwards; drop the connection.
        """
        if self._poisoned:
            raise FrameError("decoder already failed; drop the connection")
        self._buffer.extend(data)
        frames: list[Frame] = []
        while True:
            header = self._buffer
            if len(header) < _LENGTH.size:
                break
            (length,) = _LENGTH.unpack_from(header)
            if length > MAX_FRAME_BYTES:
                self._poisoned = True
                raise FrameError(
                    f"length prefix {length} exceeds {MAX_FRAME_BYTES}")
            end = _LENGTH.size + length
            if len(header) < end:
                break
            # One copy, not two: a bytearray slice would build a
            # throwaway bytearray before ``bytes`` copied it again.
            raw = bytes(memoryview(header)[:end])
            del self._buffer[:end]
            try:
                payload = deserialize(raw)
            except FrameError:
                self._poisoned = True
                raise
            frames.append(Frame(raw=raw, payload=payload))
        return frames

    def eof(self) -> None:
        """Signal end of stream; raise if bytes were left mid-frame.

        Raises:
            TruncatedFrameError: The peer disconnected mid-frame.
        """
        if self._poisoned:
            return
        if self._buffer:
            self._poisoned = True
            raise TruncatedFrameError(
                f"stream ended with {len(self._buffer)} bytes of an "
                f"incomplete frame")
