"""Retry policies: timeouts, capped exponential backoff, typed degradation.

The paper's evaluation assumes clean Bluetooth links, but its own churn
discussion (Fig. 5) shows devices leaving mid-operation.  This module
gives every protocol layer a shared vocabulary for surviving that:

* :class:`RetryPolicy` — how often to retry, how long to wait between
  attempts (capped exponential backoff with *deterministic* jitter
  drawn from a named ``simenv`` random stream), how long one attempt
  may run, and a total virtual-time budget across attempts.
* :class:`RetryCounters` — mutable per-component tally of attempts,
  retries, timeouts and give-ups, aggregated by ``repro.eval.metrics``.
* :class:`Degraded` — the typed result an operation returns when its
  retry budget is exhausted.  Callers get *data about the failure*
  instead of an exception tearing down the workflow.
* :func:`recv_with_timeout` / :func:`wait_process_with_timeout` —
  race helpers turning an unbounded wait into a bounded one inside the
  generator-process kernel.

Nothing here sleeps wall-clock time; every delay is virtual and every
jitter draw is reproducible from the environment's root seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Generator
from typing import TYPE_CHECKING, Any

from repro.simenv import Signal, WaitSignal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.connection import Connection
    from repro.simenv import Environment, Process


class AttemptTimeoutError(ConnectionError):
    """One attempt of a retried operation exceeded its timeout."""


class CorruptReplyError(ConnectionError):
    """The peer answered, but the payload failed protocol validation."""


@dataclass(frozen=True)
class RetryPolicy:
    """How a protocol operation retries after transient failures.

    Attributes:
        max_attempts: Total tries including the first (1 = no retries).
        base_delay_s: Backoff before the first retry.
        multiplier: Exponential growth factor per further retry.
        max_delay_s: Cap on a single backoff delay.
        jitter: Fraction of each delay randomised away (0 disables
            jitter; 0.5 means the delay lands in [0.5d, d]).  Jitter is
            drawn from a seeded stream, so runs stay reproducible.
        attempt_timeout_s: Virtual seconds one attempt may spend waiting
            for a reply before it is abandoned (``None`` = unbounded).
        budget_s: Total virtual time the whole retry loop may consume;
            once exceeded no further retries start (``None`` = only
            ``max_attempts`` limits the loop).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 8.0
    jitter: float = 0.5
    attempt_timeout_s: float | None = 30.0
    budget_s: float | None = 120.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter!r}")

    def backoff_delay(self, retry_index: int, rng) -> float:
        """Delay before retry number ``retry_index`` (1-based).

        Deterministic given the rng state: capped exponential, then
        jittered downwards so synchronized clients de-correlate without
        ever waiting longer than the cap.
        """
        if retry_index < 1:
            raise ValueError(f"retry_index must be >= 1, got {retry_index!r}")
        raw = min(self.max_delay_s,
                  self.base_delay_s * self.multiplier ** (retry_index - 1))
        if self.jitter <= 0.0 or rng is None:
            return raw
        return raw * (1.0 - self.jitter * rng.random())

    def within_budget(self, started_at: float, now: float) -> bool:
        """Whether another retry may start given the elapsed budget."""
        if self.budget_s is None:
            return True
        return (now - started_at) < self.budget_s


#: Policy for interactive PS_* exchanges: quick, bounded.
DEFAULT_CLIENT_POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.5,
                                    max_delay_s=4.0, attempt_timeout_s=20.0,
                                    budget_s=90.0)

#: Policy for bulk transfers: more patient, resumes from offset.
DEFAULT_TRANSFER_POLICY = RetryPolicy(max_attempts=5, base_delay_s=0.5,
                                      max_delay_s=8.0, attempt_timeout_s=30.0,
                                      budget_s=240.0)


@dataclass(frozen=True)
class Degraded:
    """Typed degraded result: the operation gave up, gracefully.

    Returned (never raised) by retry-aware operations once their retry
    budget is exhausted, so workflows keep a value they can inspect:

    Attributes:
        operation: Name of the operation that degraded.
        reason: Human-readable cause of the final failure.
        attempts: Attempts consumed before giving up.
        failed_peers: Devices whose exchanges never completed.
        partial: Whatever partial result the operation gathered.
    """

    operation: str
    reason: str
    attempts: int = 0
    failed_peers: tuple[str, ...] = ()
    partial: Any = None

    def __bool__(self) -> bool:
        # A degraded result is falsy so ``if result:`` style guards
        # treat it like the empty/absent value it stands in for.
        return False


def is_degraded(value: Any) -> bool:
    """Whether ``value`` is a typed degraded result."""
    return isinstance(value, Degraded)


@dataclass
class RetryCounters:
    """Mutable tally of retry activity for one component.

    ``repro.eval.metrics`` aggregates these across clients, servers,
    downloaders and daemons into the chaos-run report.
    """

    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    corrupt_replies: int = 0
    giveups: int = 0
    degraded_results: int = 0
    backoffs: int = 0
    backoff_s: float = 0.0
    retries_by_operation: dict[str, int] = field(default_factory=dict)

    def record_attempt(self) -> None:
        """One attempt (first try or retry) started."""
        self.attempts += 1

    def record_retry(self, operation: str) -> None:
        """One retry of ``operation`` is about to run."""
        self.retries += 1
        self.retries_by_operation[operation] = (
            self.retries_by_operation.get(operation, 0) + 1)

    def record_backoff(self, delay_s: float) -> None:
        """One backoff sleep of ``delay_s`` virtual seconds."""
        self.backoffs += 1
        self.backoff_s += delay_s

    def record_giveup(self) -> None:
        """One peer exchange abandoned after exhausting retries."""
        self.giveups += 1

    def record_degraded(self) -> None:
        """One operation returned a :class:`Degraded` result."""
        self.degraded_results += 1

    def merge(self, other: RetryCounters) -> RetryCounters:
        """Fold ``other`` into this tally (returns self)."""
        self.attempts += other.attempts
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.corrupt_replies += other.corrupt_replies
        self.giveups += other.giveups
        self.degraded_results += other.degraded_results
        self.backoffs += other.backoffs
        self.backoff_s += other.backoff_s
        for operation, count in other.retries_by_operation.items():
            self.retries_by_operation[operation] = (
                self.retries_by_operation.get(operation, 0) + count)
        return self

    def as_dict(self) -> dict:
        """Plain-dict snapshot for reports."""
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "corrupt_replies": self.corrupt_replies,
            "giveups": self.giveups,
            "degraded_results": self.degraded_results,
            "backoffs": self.backoffs,
            "backoff_s": round(self.backoff_s, 6),
            "retries_by_operation": dict(self.retries_by_operation),
        }


# -- bounded waits inside the process kernel ---------------------------------

def recv_with_timeout(env: Environment, connection: Connection,
                      timeout_s: float | None) -> Generator:
    """Process generator: receive one payload or raise on timeout.

    Races the connection's receive signal against a virtual-time
    timeout.  On timeout the caller should drop the connection — a
    reply that arrives later would otherwise be mistaken for the answer
    to a retried request.

    Raises:
        AttemptTimeoutError: No payload within ``timeout_s``.
    """
    if timeout_s is None:
        payload = yield connection.recv()
        return payload
    wait = connection.recv()
    race = Signal(f"recv-timeout:{connection.local_id}<-{connection.remote_id}")

    def on_payload(value: Any) -> None:
        if not race.fired:
            race.fire(("payload", value))

    def on_timeout() -> None:
        if not race.fired:
            race.fire(("timeout", None))

    wait.signal.wait(on_payload)
    env.call_in(timeout_s, on_timeout)
    kind, value = yield WaitSignal(race)
    if kind == "timeout":
        raise AttemptTimeoutError(
            f"no reply from {connection.remote_id!r} within {timeout_s}s")
    return value


def wait_process_with_timeout(env: Environment, process: Process,
                              timeout_s: float | None) -> Generator:
    """Process generator: wait for ``process`` or kill it on timeout.

    Returns the process result (re-raising its exception).  On timeout
    the child is killed and :class:`AttemptTimeoutError` raised.
    """
    if timeout_s is None:
        result = yield process
        return result
    # The caller observes process.result itself (re-raising failures),
    # so the kernel must not also report the failure as unobserved.
    env.acknowledge_failure(process)
    race = Signal(f"proc-timeout:{process.name}")

    def on_done(_value: Any) -> None:
        if not race.fired:
            race.fire("done")

    def on_timeout() -> None:
        if not race.fired:
            race.fire("timeout")

    process.done.wait(on_done)
    env.call_in(timeout_s, on_timeout)
    kind = yield WaitSignal(race)
    if kind == "timeout":
        process.kill()
        raise AttemptTimeoutError(
            f"process {process.name!r} still running after {timeout_s}s")
    return process.result
