"""The pluggable transport contract.

The PS_* protocol is defined by its frames, not by the medium that
carries them.  This module pins down the backend-neutral contract that
both carriers implement:

* the **simulated** backend — :class:`~repro.net.stack.NetworkStack` /
  :class:`~repro.net.connection.Connection`, where transfer *time* is
  modelled and delivery rides the event queue; and
* the **asyncio TCP** backend — :mod:`repro.net.tcp`, where the same
  canonical frames (:func:`repro.net.messages.serialize`) travel over
  real OS sockets.

Contract (see DESIGN.md §8 for the full specification):

* **Framing.**  One message = one frame: a four-byte big-endian length
  prefix followed by canonical JSON (sorted keys, no whitespace,
  ASCII).  Both backends price/emit byte-identical frames for the same
  payload, which is what ``tests/conformance`` asserts.
* **Listen.**  A transport accepts inbound connections on a named port
  (the PeerHood service name).  Binding twice raises
  :class:`ListenerExistsError`; dialing a port nobody listens on
  raises :class:`NoListenerError`.
* **Peer identity.**  ``local_id`` / ``remote_id`` are opaque strings:
  device ids on the simulated backend, ``host:port`` endpoint names on
  TCP.  Protocol layers treat them as labels, never parse them.
* **Error taxonomy.**  Link loss surfaces either as ``None`` from a
  pending ``recv`` (the peer closed) or as a ``ConnectionError``
  subclass from ``send``/``recv``; sending or receiving on a closed
  connection raises :class:`ConnectionClosedError`.  Retry layers key
  on ``(ConnectionError, OSError)`` and therefore behave identically
  on both backends.

The :class:`TransportConnection` protocol below captures the shared
*shape*; the concurrency style necessarily differs (the simulated
backend yields into the process kernel, TCP awaits the event loop), so
``send``/``recv`` return backend-specific awaitables/yieldables.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any, Protocol, runtime_checkable


class NoListenerError(ConnectionRefusedError):
    """The remote endpoint has no listener on the requested port."""


class ListenerExistsError(ValueError):
    """A listener is already bound to this port on this device."""


class ConnectionClosedError(ConnectionError):
    """Raised when sending or receiving on a closed connection."""


@runtime_checkable
class TransportConnection(Protocol):
    """One endpoint of a duplex payload stream, any backend.

    Attributes:
        local_id: Identity of this endpoint (opaque label).
        remote_id: Identity of the peer endpoint (opaque label).
        closed: Whether the connection has been torn down.
    """

    local_id: str
    remote_id: str
    closed: bool

    def send(self, payload: Any) -> Any:
        """Transmit one payload as one frame to the peer.

        Raises :class:`ConnectionClosedError` on a closed connection
        and a ``ConnectionError`` subclass when the link broke.
        """
        ...

    def recv(self) -> Any:
        """The next inbound payload (``None`` once the peer closed).

        Simulated backend: returns a yieldable that resumes with the
        payload.  TCP backend: a coroutine resolving to the payload.
        """
        ...

    def close(self) -> Any:
        """Tear down both halves; pending receivers resume with ``None``."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Listener registry plus connection factory for one endpoint.

    ``dial``/``connect`` signatures differ per backend (the simulated
    stack needs a technology and pays setup time; TCP needs an
    address), so only the listener surface is part of the shared
    protocol.
    """

    def listen(self, port: str,
               on_connection: Callable[..., None]) -> Any:
        """Accept inbound connections on ``port``.

        Raises :class:`ListenerExistsError` when the port is taken.
        """
        ...

    def unlisten(self, port: str) -> Any:
        """Stop accepting connections on ``port`` (idempotent)."""
        ...

    def listening_on(self, port: str) -> bool:
        """Whether a listener is currently bound to ``port``."""
        ...
