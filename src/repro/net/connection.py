"""Simulated duplex connections.

A :class:`Connection` object exists *per endpoint*: opening a link
creates two halves wired to each other.  Sending serialises the
payload, charges the sender's adapter, and schedules delivery into the
peer half's inbox after the technology's transfer time (plus the
gateway hop for relayed technologies).

Reachability is re-checked at every send, so a device walking out of
Bluetooth range breaks the connection at the next message — which is
what PeerHood's seamless-connectivity logic reacts to.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import TYPE_CHECKING, Any

from repro.net.messages import wire_copy
from repro.net.transport import ConnectionClosedError
from repro.radio.medium import Medium, NotReachableError
from repro.radio.technology import Technology
from repro.simenv import Environment, Signal, WaitSignal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.stack import NetworkStack
    from repro.radio.gprs import GprsGateway

__all__ = ["Connection", "ConnectionClosedError"]


class Connection:
    """One endpoint of a simulated duplex link.

    No ``__slots__``: the BT plugin decorates ``close`` per instance to
    release its piconet slot.
    """

    def __init__(self, env: Environment, medium: Medium,
                 local_id: str, remote_id: str, technology: Technology,
                 gateway: GprsGateway | None = None) -> None:
        self.env = env
        self.medium = medium
        self.local_id = local_id
        self.remote_id = remote_id
        self.technology = technology
        self.gateway = gateway
        self.peer: Connection | None = None  # wired by NetworkStack
        self.owner: NetworkStack | None = None  # wired by NetworkStack
        self.closed = False
        self.bytes_sent = 0
        self.messages_sent = 0
        self.retransmissions = 0
        self._busy_until = 0.0  # sender-side FIFO serialisation
        self._inbox: deque[Any] = deque()
        self._recv_waiters: deque[Signal] = deque()

    # -- sending -------------------------------------------------------------

    def send(self, payload: Any) -> float:
        """Transmit ``payload`` to the peer.

        Returns the simulated seconds the transfer will take.  Raises
        :class:`ConnectionClosedError` on a closed connection and
        :class:`NotReachableError` when the link has physically broken
        (peer out of range, adapter gone) — in which case both halves
        are marked closed.
        """
        if self.closed or self.peer is None:
            raise ConnectionClosedError(
                f"send on closed connection {self.local_id}->{self.remote_id}")
        if not self.medium.reachable(self.local_id, self.remote_id,
                                     self.technology.name):
            self._break()
            raise NotReachableError(
                f"link {self.local_id}->{self.remote_id} over "
                f"{self.technology.name} is down")
        faults = self.medium.faults
        fault = faults.on_send(self) if faults is not None else None
        if faults is not None and fault is not None and fault.drop:
            if fault.flap_device is not None:
                faults.flap(fault.flap_device)
            faults.note_drop()
            self._break()
            raise NotReachableError(
                f"link {self.local_id}->{self.remote_id} over "
                f"{self.technology.name} dropped mid-stream (injected)")
        # One encode + one decode: the frame's byte count prices the
        # transfer, the decode hands the peer a decoupled copy (as a
        # real socket would).
        nbytes, decoded = wire_copy(payload)
        technology = self.technology
        attempts = (1 if technology.frame_loss_rate <= 0.0
                    else self._transmission_attempts())
        transfer = technology.transfer_time(nbytes) * attempts
        if technology.needs_gateway and self.gateway is not None:
            transfer += self.gateway.relay_time(nbytes)
        if faults is not None and fault is not None \
                and fault.latency_factor != 1.0:
            faults.note_spike()
            transfer *= fault.latency_factor
        self.retransmissions += attempts - 1
        self.medium.record_transfer(self.local_id, technology.name, nbytes)
        self.bytes_sent += nbytes
        self.messages_sent += 1
        if faults is not None and fault is not None and fault.corrupt:
            decoded = faults.corrupt_payload(decoded)
        # Ordered delivery (the L2CAP contract): a frame cannot start
        # transmitting before the previous frame finished, so messages
        # on one connection never reorder regardless of size.
        env = self.env
        now = env.clock.now
        start = self._busy_until
        if now > start:
            start = now
        arrival = start + transfer
        self._busy_until = arrival
        env.queue.push(arrival, partial(self.peer._deliver, decoded))
        return arrival - now

    def _transmission_attempts(self, cap: int = 8) -> int:
        """How many link-layer attempts this frame needs.

        Reliable delivery is the service contract (the BTPlugin's
        L2CAP "offers ordered and reliable data delivery"), so loss
        never surfaces as corruption — only as retransmission latency.
        Draws come from a per-technology named stream, keeping lossy
        runs fully reproducible.
        """
        loss = self.technology.frame_loss_rate
        if loss <= 0.0:
            return 1
        rng = self.env.random.stream(f"loss:{self.technology.name}")
        attempts = 1
        while attempts < cap and rng.random() < loss:
            attempts += 1
        return attempts

    # -- receiving ------------------------------------------------------------

    def recv(self) -> WaitSignal:
        """Yieldable that resumes with the next inbound payload.

        Usage inside a process::

            payload = yield connection.recv()
        """
        # A constant name: the f-string alternative shows up in kernel
        # profiles, and recv signals are anonymous one-shots anyway.
        signal = Signal("recv")
        if self._inbox:
            signal.fire(self._inbox.popleft())
        elif self.closed:
            raise ConnectionClosedError(
                f"recv on closed connection {self.local_id}<-{self.remote_id}")
        else:
            self._recv_waiters.append(signal)
        return WaitSignal(signal)

    def pending(self) -> int:
        """Number of undelivered inbound payloads queued locally."""
        return len(self._inbox)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close both halves of the connection."""
        if self.closed:
            return
        self.closed = True
        if self.owner is not None:
            self.owner._forget(self)
        if self.peer is not None and not self.peer.closed:
            self.peer.close()
        self._flush_waiters_with_error()

    def migrate(self, technology: Technology,
                gateway: GprsGateway | None = None) -> None:
        """Switch the link to another technology (seamless handover).

        Both halves move together; subsequent transfer times and
        reachability checks use the new technology.  The caller (the
        seamless-connectivity manager) is responsible for charging the
        new technology's setup time.
        """
        self.technology = technology
        self.gateway = gateway
        if self.peer is not None and self.peer.technology is not technology:
            self.peer.migrate(technology, gateway)

    # -- internals ------------------------------------------------------------

    def _deliver(self, payload: Any) -> None:
        if self.closed:
            return
        if self._recv_waiters:
            self._recv_waiters.popleft().fire(payload)
        else:
            self._inbox.append(payload)

    def _break(self) -> None:
        """Physical link loss: close both halves."""
        self.close()

    def _flush_waiters_with_error(self) -> None:
        # Pending receivers resume with None; protocol layers treat a
        # None payload as connection loss.
        while self._recv_waiters:
            self._recv_waiters.popleft().fire(None)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (f"Connection({self.local_id}->{self.remote_id} "
                f"over {self.technology.name}, {state})")
