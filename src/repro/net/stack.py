"""Per-device network stack: listeners and outbound connections.

The stack is what PeerHood plugins build on.  A server-side component
listens on a named port (for PeerHood this is the service name, e.g.
``"PeerHoodCommunity"``); a client opens a connection to
``(remote_device, port)`` over a chosen technology, paying that
technology's setup time before the connection becomes usable.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import TYPE_CHECKING

from repro.net.connection import Connection
from repro.net.transport import ListenerExistsError, NoListenerError
from repro.radio.medium import Medium, NotReachableError
from repro.radio.technology import Technology
from repro.simenv import Delay, Environment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.gprs import GprsGateway

__all__ = ["ListenerExistsError", "NetworkStack", "NoListenerError",
           "StackRegistry"]


class NetworkStack:
    """Connection factory and listener registry for one device."""

    #: Global port registry shared across stacks of one simulation run,
    #: keyed by (device_id, port).  Stored on the class would leak state
    #: between runs, so it lives on a per-simulation registry object.

    def __init__(self, env: Environment, medium: Medium, device_id: str,
                 registry: StackRegistry) -> None:
        self.env = env
        self.medium = medium
        self.device_id = device_id
        self.registry = registry
        registry._add(device_id, self)
        self._listeners: dict[str, Callable[[Connection], None]] = {}
        self._open: set[Connection] = set()

    # -- server side -------------------------------------------------------

    def listen(self, port: str, on_connection: Callable[[Connection], None]) -> None:
        """Accept inbound connections on ``port``.

        ``on_connection`` receives the server-side :class:`Connection`
        half whenever a peer connects.
        """
        if port in self._listeners:
            raise ListenerExistsError(f"{self.device_id!r} already listens on {port!r}")
        self._listeners[port] = on_connection

    def unlisten(self, port: str) -> None:
        """Stop accepting connections on ``port``."""
        self._listeners.pop(port, None)

    def listening_on(self, port: str) -> bool:
        """Whether a listener is bound to ``port``."""
        return port in self._listeners

    # -- client side ------------------------------------------------------

    def connect(self, remote_id: str, port: str, technology: Technology,
                gateway: GprsGateway | None = None) -> Generator:
        """Process generator establishing a connection.

        Usage::

            connection = yield from stack.connect("bob", "PeerHoodCommunity", BLUETOOTH)

        Pays the technology's setup time, then re-checks reachability
        (the peer may have moved during setup) and the remote listener.

        Raises:
            NotReachableError: Peer unreachable before or after setup.
            NoListenerError: Nothing listening on the remote port.
        """
        if not self.medium.reachable(self.device_id, remote_id, technology.name):
            raise NotReachableError(
                f"{remote_id!r} unreachable from {self.device_id!r} "
                f"over {technology.name}")
        yield Delay(technology.setup_time_s)
        if not self.medium.reachable(self.device_id, remote_id, technology.name):
            raise NotReachableError(
                f"{remote_id!r} moved out of {technology.name} range during setup")
        if self.medium.faults is not None:
            # May raise InjectedFaultError: setup completed but the
            # link failed before becoming usable.
            self.medium.faults.fail_connect(self.device_id, remote_id,
                                            technology.name)
        remote_stack = self.registry.stack_of(remote_id)
        if remote_stack is None or port not in remote_stack._listeners:
            raise NoListenerError(f"{remote_id!r} has no listener on {port!r}")
        local = Connection(self.env, self.medium, self.device_id, remote_id,
                           technology, gateway)
        remote = Connection(self.env, self.medium, remote_id, self.device_id,
                            technology, gateway)
        local.peer = remote
        remote.peer = local
        local.owner = self
        remote.owner = remote_stack
        self._open.add(local)
        remote_stack._open.add(remote)
        remote_stack._listeners[port](remote)
        return local

    # -- open-connection registry -------------------------------------------

    def open_connections(self, remote_id: str | None = None) -> list[Connection]:
        """Live connection halves owned by this stack, optionally
        restricted to one peer.  Deterministically ordered."""
        halves = [connection for connection in self._open
                  if remote_id is None or connection.remote_id == remote_id]
        return sorted(halves, key=lambda c: (c.remote_id, id(c)))

    def open_connection_count(self, remote_id: str | None = None) -> int:
        """Number of live halves (to one peer, or in total)."""
        return len(self.open_connections(remote_id))

    def drop_peer(self, remote_id: str) -> int:
        """Close every open connection to ``remote_id``.

        Called when discovery loses a device: closing the halves wakes
        any process blocked in ``recv`` (it resumes with ``None``) and
        removes the registry entries, so an abrupt disconnect cannot
        leak serving processes or connection state.  Returns the number
        of connections closed.
        """
        stale = self.open_connections(remote_id)
        for connection in stale:
            connection.close()
        return len(stale)

    def _forget(self, connection: Connection) -> None:
        """Deregister a closed connection (called by Connection.close)."""
        self._open.discard(connection)


class StackRegistry:
    """Directory of every device's stack within one simulation."""

    def __init__(self) -> None:
        self._stacks: dict[str, NetworkStack] = {}

    def _add(self, device_id: str, stack: NetworkStack) -> None:
        if device_id in self._stacks:
            raise ValueError(f"device {device_id!r} already has a stack")
        self._stacks[device_id] = stack

    def stack_of(self, device_id: str) -> NetworkStack | None:
        """The stack for ``device_id``, or ``None`` if absent."""
        return self._stacks.get(device_id)

    def device_ids(self) -> list[str]:
        """Registered device ids, deterministically ordered."""
        return sorted(self._stacks)

    def close_all(self) -> None:
        """Tear down every stack: close connections, drop listeners.

        Test fixtures call this at teardown so listener and connection
        state can never leak from one test into the next, however the
        test ended.
        """
        for device_id in self.device_ids():
            self.remove(device_id)

    def remove(self, device_id: str) -> None:
        """Drop a device's stack (device left the simulation).

        Closes the stack's open connections first so peers observe the
        departure instead of waiting on a vanished device forever.
        """
        stack = self._stacks.pop(device_id, None)
        if stack is not None:
            for connection in stack.open_connections():
                connection.close()
