"""The shared radio medium.

The medium answers reachability questions: *can device A talk to
device B over technology T right now?*  For local radios (Bluetooth,
WLAN ad-hoc) the answer follows from the mobility world's distances and
each technology's range.  Wide-area technologies (GPRS) are reachable
whenever both ends have coverage and a gateway is registered.

Devices attach per-technology *adapters* (a device without a Bluetooth
adapter is invisible on Bluetooth even when physically near), which
lets scenarios reproduce the paper's testbed where only some machines
carried dongles (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mobility.world import World
from repro.radio.technology import Technology


class NotReachableError(ConnectionError):
    """Raised when a transfer is attempted over a dead link."""


@dataclass
class Adapter:
    """A device's interface to one technology."""

    device_id: str
    technology: Technology
    enabled: bool = True
    #: Cumulative bytes sent by this adapter (for cost accounting).
    bytes_sent: int = field(default=0)

    @property
    def cost_incurred(self) -> float:
        """Money spent on traffic through this adapter so far."""
        return self.technology.transfer_cost(self.bytes_sent)


class Medium:
    """Registry of adapters plus reachability/link-quality queries."""

    def __init__(self, world: World) -> None:
        self.world = world
        self._adapters: dict[tuple[str, str], Adapter] = {}
        self._gateways: set[str] = set()
        #: Optional installed :class:`~repro.net.faults.FaultInjector`;
        #: stacks and connections consult it at setup and send time.
        self.faults = None

    # -- attachment ------------------------------------------------------

    def attach(self, device_id: str, technology: Technology) -> Adapter:
        """Give ``device_id`` an adapter for ``technology``."""
        key = (device_id, technology.name)
        if key in self._adapters:
            raise ValueError(f"{device_id!r} already has a {technology.name} adapter")
        adapter = Adapter(device_id, technology)
        self._adapters[key] = adapter
        return adapter

    def detach(self, device_id: str, technology_name: str) -> None:
        """Remove an adapter (device powered the radio off)."""
        del self._adapters[(device_id, technology_name)]

    def adapter(self, device_id: str, technology_name: str) -> Adapter | None:
        """The adapter, or ``None`` if the device lacks the technology."""
        return self._adapters.get((device_id, technology_name))

    def adapters_of(self, device_id: str) -> list[Adapter]:
        """All adapters belonging to one device."""
        return [adapter for (owner, _), adapter in self._adapters.items()
                if owner == device_id]

    def register_gateway(self, technology_name: str) -> None:
        """Declare operator infrastructure for a wide-area technology."""
        self._gateways.add(technology_name)

    def has_gateway(self, technology_name: str) -> bool:
        """Whether the wide-area technology has infrastructure."""
        return technology_name in self._gateways

    # -- queries --------------------------------------------------------------

    def reachable(self, a: str, b: str, technology_name: str) -> bool:
        """Whether ``a`` and ``b`` can communicate over the technology."""
        if a == b:
            return False
        adapter_a = self._adapters.get((a, technology_name))
        adapter_b = self._adapters.get((b, technology_name))
        if adapter_a is None or adapter_b is None:
            return False
        if not (adapter_a.enabled and adapter_b.enabled):
            return False
        technology = adapter_a.technology
        if technology.needs_gateway:
            return technology_name in self._gateways
        if a not in self.world or b not in self.world:
            return False
        return technology.in_range(self.world.distance_between(a, b))

    def link_quality(self, a: str, b: str, technology_name: str) -> float:
        """Quality in [0, 1] of the a<->b link; 0 when unreachable."""
        if not self.reachable(a, b, technology_name):
            return 0.0
        technology = self._adapters[(a, technology_name)].technology
        if technology.range_m is None:
            return 1.0
        return technology.link_quality(self.world.distance_between(a, b))

    def neighbors(self, device_id: str, technology_name: str) -> list[str]:
        """Device ids reachable from ``device_id`` over the technology.

        For wide-area technologies this is every attached device (the
        gateway bridges them); for local radios it is range-limited.
        Results are sorted for deterministic discovery order.
        """
        own = self._adapters.get((device_id, technology_name))
        if own is None or not own.enabled:
            return []
        found = [other for (other, tech_name), adapter in self._adapters.items()
                 if tech_name == technology_name and other != device_id
                 and self.reachable(device_id, other, technology_name)]
        return sorted(found)

    def record_transfer(self, device_id: str, technology_name: str,
                        nbytes: int) -> None:
        """Account ``nbytes`` of traffic to the sender's adapter."""
        adapter = self._adapters.get((device_id, technology_name))
        if adapter is not None:
            adapter.bytes_sent += nbytes
