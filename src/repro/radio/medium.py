"""The shared radio medium.

The medium answers reachability questions: *can device A talk to
device B over technology T right now?*  For local radios (Bluetooth,
WLAN ad-hoc) the answer follows from the mobility world's distances and
each technology's range.  Wide-area technologies (GPRS) are reachable
whenever both ends have coverage and a gateway is registered.

Devices attach per-technology *adapters* (a device without a Bluetooth
adapter is invisible on Bluetooth even when physically near), which
lets scenarios reproduce the paper's testbed where only some machines
carried dongles (Table 5).

Invalidation is *incremental*: the world reports which nodes moved per
tick and the medium drops only the cached distances and reachability
verdicts involving those nodes (via per-node key indexes), so when one
node out of a thousand moves the other 999 devices' memoized topology
stays hot — the previous design cleared everything on any movement,
which made every tick quadratic at crowd scale.  Cache *hits* stay a
single dict lookup.  Neighbour listings are validated lazily instead:
each carries the spatial grid's *region stamp* for the radio disc it
covers, so a listing survives until somebody inside that disc's cells
moves, joins, leaves or toggles an adapter.  Adapter power toggles
invalidate only the owning device's pairs.  When the world runs
without a spatial grid (``REPRO_SPATIAL_INDEX=0``) the medium falls
back to the historical clear-everything listeners.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.mobility.world import MovementReport, World
from repro.radio import sweep as _sweep
from repro.radio.technology import Technology

if TYPE_CHECKING:  # pragma: no cover - layering guard (net builds on radio)
    from repro.net.faults import FaultInjector

#: Same-technology roster size at which a vectorized whole-population
#: sweep beats per-scan scalar queries.  Below it the numpy dispatch
#: overhead outweighs the batching win.
VECTOR_SWEEP_MIN_DEVICES = 256


def vector_sweep_enabled() -> bool:
    """Whether new media may use vectorized sweeps (REPRO_VECTOR_SWEEP)."""
    return (os.environ.get("REPRO_VECTOR_SWEEP", "1") != "0"
            and _sweep.available())


def _vector_sweep_min() -> int:
    """Roster threshold, overridable for tests (REPRO_VECTOR_SWEEP_MIN)."""
    raw = os.environ.get("REPRO_VECTOR_SWEEP_MIN")
    if raw is None:
        return VECTOR_SWEEP_MIN_DEVICES
    try:
        return max(1, int(raw))
    except ValueError:
        return VECTOR_SWEEP_MIN_DEVICES


class NotReachableError(ConnectionError):
    """Raised when a transfer is attempted over a dead link."""


class Adapter:
    """A device's interface to one technology."""

    __slots__ = ("device_id", "technology", "bytes_sent", "_enabled",
                 "_medium")

    def __init__(self, device_id: str, technology: Technology,
                 enabled: bool = True) -> None:
        self.device_id = device_id
        self.technology = technology
        #: Cumulative bytes sent by this adapter (for cost accounting).
        self.bytes_sent = 0
        self._enabled = enabled
        self._medium: Medium | None = None  # set by Medium.attach

    @property
    def enabled(self) -> bool:
        """Whether the radio is powered on."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if value != self._enabled:
            self._enabled = value
            # Powering a radio changes who can reach whom — but only
            # for pairs involving *this* device.
            if self._medium is not None:
                self._medium._adapter_changed(self.device_id,
                                              self.technology.name)

    @property
    def cost_incurred(self) -> float:
        """Money spent on traffic through this adapter so far."""
        return self.technology.transfer_cost(self.bytes_sent)

    def __repr__(self) -> str:
        state = "on" if self._enabled else "off"
        return (f"Adapter({self.device_id!r}, {self.technology.name}, "
                f"{state}, {self.bytes_sent}B)")


class Medium:
    """Registry of adapters plus reachability/link-quality queries."""

    def __init__(self, world: World) -> None:
        self.world = world
        #: Direct handle on the world's node table (stable for the
        #: world's lifetime) — membership checks run once per neighbour
        #: query, and ``__contains__`` dispatch is measurable there.
        self._world_nodes = world._nodes
        self._adapters: dict[tuple[str, str], Adapter] = {}
        #: Device ids per technology name — the roster wide-area
        #: listings enumerate (local listings go through the grid).
        #: Insertion-ordered dict-as-set so ``detach`` is O(1); a list
        #: remove is O(roster) and shard-border ghost churn detaches
        #: constantly at 100k-device scale.
        self._by_technology: dict[str, dict[str, None]] = {}
        #: Technology names each device holds adapters for — lets
        #: per-node invalidation find the device's neighbour listings
        #: without scanning the full adapter registry.
        self._techs_of: dict[str, list[str]] = {}
        self._gateways: set[str] = set()
        #: Pairwise distances memoized until either endpoint moves.
        self._distances: dict[tuple[str, str], float] = {}
        #: Memoized ``reachable`` verdicts, evicted per endpoint.
        self._reachable_cache: dict[tuple[str, str, str], bool] = {}
        #: node id -> cache keys involving it, for targeted eviction.
        #: Sets may hold keys already evicted via the other endpoint;
        #: eviction tolerates misses, and re-derived entries re-add
        #: their key, so the indexes stay bounded by the live pair set.
        self._dist_index: dict[str, set[tuple[str, str]]] = {}
        self._reach_index: dict[str, set[tuple[str, str, str]]] = {}
        #: (device, tech) -> (listing, stamp).  Scalar entries pair a
        #: materialized listing with the grid region stamp of the radio
        #: disc (local radios) or the (roster epoch, gateway epoch)
        #: tuple (wide-area).  Vector-sweep entries pair a (start, end)
        #: span into ``_sweep_flat`` with the topology-version *int* —
        #: an int never equals a tuple stamp, so entries from one
        #: regime are always treated as stale by the other.
        self._neighbors_cache: dict[tuple[str, str],
                                    tuple[list[str] | tuple[int, int],
                                          tuple[int, ...] | int]] = {}
        #: Per-technology roster change counter (attach/detach/power
        #: toggles) — validates wide-area neighbour listings.
        self._tech_epoch: dict[str, int] = {}
        self._gateway_epoch = 0
        #: With a spatial grid, region stamps + per-node eviction carry
        #: invalidation; without one, clear-everything listeners do.
        self._incremental = world.grid is not None
        #: Monotone counter covering *anything* that can change a
        #: neighbour listing: movement, population, adapter power,
        #: gateways.  Listings computed by a vectorized sweep are
        #: stamped with it, so validating one costs a single integer
        #: compare instead of a region-stamp walk.
        self._topology_version = 0
        #: Vectorized sweeps need the grid (for cell geometry) and
        #: numpy; ``REPRO_VECTOR_SWEEP=0`` forces the scalar path.
        self._vector = self._incremental and vector_sweep_enabled()
        self._vector_min = _vector_sweep_min()
        #: tech -> flat neighbour-id list the sweep entries slice into.
        self._sweep_flat: dict[str, list[str]] = {}
        #: tech -> (roster epoch, sorted roster ids) memo for sweeps.
        self._sorted_roster: dict[str, tuple[int, list[str]]] = {}
        if self._incremental:
            world.on_moves(self._apply_report)
        else:
            world.on_movement(self._invalidate_positions)
        #: Optional installed :class:`~repro.net.faults.FaultInjector`;
        #: stacks and connections consult it at setup and send time.
        self.faults: FaultInjector | None = None

    # -- invalidation ----------------------------------------------------

    def _evict_node(self, node_id: str) -> None:
        """Drop every cached distance/verdict involving ``node_id``."""
        keys = self._reach_index.pop(node_id, None)
        if keys:
            cache = self._reachable_cache
            for key in keys:
                cache.pop(key, None)
        pair_keys = self._dist_index.pop(node_id, None)
        if pair_keys:
            distances = self._distances
            for key in pair_keys:
                distances.pop(key, None)

    def _apply_report(self, report: MovementReport) -> None:
        """Movement listener: evict only what the movers invalidate.

        Neighbour listings need no work here — the grid bumped the
        movers' cell epochs, so any listing whose disc covers them
        fails its region-stamp check on next read.
        """
        self._topology_version += 1
        for node_id in report.changed_ids():
            self._evict_node(node_id)

    def _invalidate_positions(self) -> None:
        """Brute-force-mode movement listener: drop position-derived
        caches (distances, reachability, neighbour listings)."""
        self._topology_version += 1
        self._distances.clear()
        self._reachable_cache.clear()
        self._neighbors_cache.clear()
        self._dist_index.clear()
        self._reach_index.clear()

    def _adapter_changed(self, device_id: str, technology_name: str) -> None:
        """One device's adapter set or power state changed.

        Only pairs involving ``device_id`` can have changed: evict its
        verdicts, stamp its grid cell (so listings whose disc covers it
        re-derive) and bump the technology's roster epoch (wide-area
        listings).  Its memoized *distances* stay valid — radios do not
        move the device.
        """
        self._topology_version += 1
        self._tech_epoch[technology_name] = \
            self._tech_epoch.get(technology_name, 0) + 1
        if self._incremental:
            keys = self._reach_index.pop(device_id, None)
            if keys:
                cache = self._reachable_cache
                for key in keys:
                    cache.pop(key, None)
            self.world.touch_node(device_id)
        else:
            # Without per-node indexes or region stamps there is no way
            # to know which verdicts/listings involve this device —
            # drop them all (the historical behaviour).
            self._reachable_cache.clear()
            self._neighbors_cache.clear()

    def _distance(self, a: str, b: str) -> float:
        """World distance memoized until either endpoint moves."""
        key = (a, b) if a <= b else (b, a)
        cached = self._distances.get(key)
        if cached is not None:
            return cached
        cached = self.world.distance_between(a, b)
        self._distances[key] = cached
        if self._incremental:
            index = self._dist_index
            for node_id in key:
                bucket = index.get(node_id)
                if bucket is None:
                    bucket = index[node_id] = set()
                bucket.add(key)
        return cached

    # -- attachment ------------------------------------------------------

    def attach(self, device_id: str, technology: Technology) -> Adapter:
        """Give ``device_id`` an adapter for ``technology``."""
        key = (device_id, technology.name)
        if key in self._adapters:
            raise ValueError(f"{device_id!r} already has a {technology.name} adapter")
        adapter = Adapter(device_id, technology)
        adapter._medium = self
        self._adapters[key] = adapter
        self._by_technology.setdefault(technology.name, {})[device_id] = None
        self._techs_of.setdefault(device_id, []).append(technology.name)
        if technology.range_m is not None:
            # Keep grid cells at least one radio range wide so a
            # neighbour disc overlaps a bounded number of cells.
            self.world.require_cell_size(technology.range_m)
        self._adapter_changed(device_id, technology.name)
        return adapter

    def detach(self, device_id: str, technology_name: str) -> None:
        """Remove an adapter (device powered the radio off).

        Sweeps the device's stale cache entries as it goes: verdicts
        for this technology always, and — once its *last* adapter is
        gone — its memoized distances too.  Without this, churn-heavy
        runs (shard-border ghosts detach constantly) grow ``_distances``
        with pairs no live query will ever touch again.
        """
        del self._adapters[(device_id, technology_name)]
        del self._by_technology[technology_name][device_id]
        techs = self._techs_of[device_id]
        techs.remove(technology_name)
        self._neighbors_cache.pop((device_id, technology_name), None)
        keys = self._reach_index.get(device_id)
        if keys:
            cache = self._reachable_cache
            stale = [key for key in keys if key[2] == technology_name]
            for key in stale:
                cache.pop(key, None)
                keys.discard(key)
        if not techs:
            del self._techs_of[device_id]
            self._evict_node(device_id)
        self._adapter_changed(device_id, technology_name)

    def adapter(self, device_id: str, technology_name: str) -> Adapter | None:
        """The adapter, or ``None`` if the device lacks the technology."""
        return self._adapters.get((device_id, technology_name))

    def adapters_of(self, device_id: str) -> list[Adapter]:
        """All adapters belonging to one device."""
        return [adapter for (owner, _), adapter in self._adapters.items()
                if owner == device_id]

    def register_gateway(self, technology_name: str) -> None:
        """Declare operator infrastructure for a wide-area technology."""
        self._gateways.add(technology_name)
        self._gateway_epoch += 1
        self._topology_version += 1
        # Gateway presence flips wide-area verdicts wholesale; this is
        # a scenario-setup event, so a full drop is fine.
        self._reachable_cache.clear()
        self._reach_index.clear()
        if not self._incremental:
            self._neighbors_cache.clear()

    def has_gateway(self, technology_name: str) -> bool:
        """Whether the wide-area technology has infrastructure."""
        return technology_name in self._gateways

    # -- queries --------------------------------------------------------------

    def reachable(self, a: str, b: str, technology_name: str) -> bool:
        """Whether ``a`` and ``b`` can communicate over the technology.

        Verdicts are memoized until either endpoint moves or toggles —
        every send, connect and discovery scan asks this, and at crowd
        scale the same pairs repeat tens of thousands of times, so the
        hit path is a single dict lookup.
        """
        key = (a, b, technology_name)
        cached = self._reachable_cache.get(key)
        if cached is not None:
            return cached
        verdict = self._compute_reachable(a, b, technology_name)
        self._reachable_cache[key] = verdict
        if self._incremental:
            # Brute-force mode clears caches wholesale, so the
            # per-node eviction indexes would be dead weight there.
            index = self._reach_index
            for node_id in (a, b):
                bucket = index.get(node_id)
                if bucket is None:
                    bucket = index[node_id] = set()
                bucket.add(key)
        return verdict

    def _compute_reachable(self, a: str, b: str, technology_name: str) -> bool:
        if a == b:
            return False
        adapter_a = self._adapters.get((a, technology_name))
        adapter_b = self._adapters.get((b, technology_name))
        if adapter_a is None or adapter_b is None:
            return False
        if not (adapter_a._enabled and adapter_b._enabled):
            return False
        technology = adapter_a.technology
        if technology.needs_gateway:
            return technology_name in self._gateways
        if a not in self.world or b not in self.world:
            return False
        return technology.in_range(self._distance(a, b))

    def link_quality(self, a: str, b: str, technology_name: str) -> float:
        """Quality in [0, 1] of the a<->b link; 0 when unreachable."""
        if not self.reachable(a, b, technology_name):
            return 0.0
        technology = self._adapters[(a, technology_name)].technology
        if technology.range_m is None:
            return 1.0
        return technology.link_quality(self._distance(a, b))

    def neighbors(self, device_id: str, technology_name: str) -> list[str]:
        """Device ids reachable from ``device_id`` over the technology.

        For wide-area technologies this is every attached device (the
        gateway bridges them); for local radios it is range-limited.
        Results are sorted for deterministic discovery order.
        """
        own = self._adapters.get((device_id, technology_name))
        if own is None or not own._enabled:
            return []
        technology = own.technology
        # ``None`` doubles as the wide-area marker: gateway-bridged
        # technologies ignore geometry even when they quote a range.
        local_range = None if technology.needs_gateway else technology.range_m
        if local_range is None:
            stamp = (self._tech_epoch.get(technology_name, 0),
                     self._gateway_epoch)
        elif device_id not in self._world_nodes:
            return []  # off-map device: nothing in radio range
        elif (self._vector and len(self._by_technology[technology_name])
                >= self._vector_min):
            # Vectorized regime: listings come from whole-population
            # sweeps stamped with the topology version (a bare int —
            # never equal to the tuple stamps of the scalar paths, so
            # regime switches self-invalidate).  A version hit costs
            # one dict probe and one slice; any topology change bumps
            # the version and the next read triggers one batched
            # re-sweep that refreshes everybody.
            version = self._topology_version
            entry = self._neighbors_cache.get((device_id, technology_name))
            if entry is not None and entry[1] == version:
                span = entry[0]
                return self._sweep_flat[technology_name][span[0]:span[1]]
            self._vector_sweep(technology_name, local_range)
            entry = self._neighbors_cache.get((device_id, technology_name))
            if entry is None:  # pragma: no cover - guarded above
                return []
            span = entry[0]
            return self._sweep_flat[technology_name][span[0]:span[1]]
        else:
            stamp = self.world.region_stamp(device_id, local_range)
        key = (device_id, technology_name)
        entry = self._neighbors_cache.get(key)
        if entry is not None and entry[1] == stamp:
            return list(entry[0])
        if local_range is None or not self._incremental:
            listing = sorted(
                other for other in self._by_technology.get(technology_name, ())
                if other != device_id
                and self.reachable(device_id, other, technology_name))
        else:
            # Grid-backed: the world already limited candidates to the
            # radio disc (sorted), so only adapter power needs checking.
            adapters = self._adapters
            listing = []
            for node in self.world.nodes_within(device_id, technology.range_m):
                other = adapters.get((node.node_id, technology_name))
                if other is not None and other._enabled:
                    listing.append(node.node_id)
        self._neighbors_cache[key] = (listing, stamp)
        return list(listing)

    def _vector_sweep(self, technology_name: str, radius: float) -> None:
        """Recompute every device's listing for one technology at once.

        Populates ``_neighbors_cache`` with ``((start, end), version)``
        spans into a shared flat neighbour list — the cache shape the
        scalar path uses, with the span standing in for the listing and
        the topology version for the region stamp.  Listings are
        bit-identical to the scalar path's: candidates come from cell
        bucketing (over-approximate, harmless) and membership from the
        exact squared-distance comparison ``nodes_within`` applies.
        """
        roster_epoch = self._tech_epoch.get(technology_name, 0)
        memo = self._sorted_roster.get(technology_name)
        if memo is not None and memo[0] == roster_epoch:
            roster = memo[1]
        else:
            roster = sorted(self._by_technology[technology_name])
            self._sorted_roster[technology_name] = (roster_epoch, roster)
        adapters = self._adapters
        world = self.world
        nodes = self._world_nodes
        ids = [device_id for device_id in roster
               if adapters[(device_id, technology_name)]._enabled
               and device_id in nodes]
        grid = world.grid
        assert grid is not None  # _vector requires the spatial grid
        xs, ys = world.positions_of(ids)
        starts, flat_index = _sweep.sweep_pairs(
            xs, ys, radius, grid.cell_size)
        flat = [ids[index] for index in flat_index]
        self._sweep_flat[technology_name] = flat
        version = self._topology_version
        cache = self._neighbors_cache
        for index, device_id in enumerate(ids):
            cache[(device_id, technology_name)] = (
                (starts[index], starts[index + 1]), version)

    def record_transfer(self, device_id: str, technology_name: str,
                        nbytes: int) -> None:
        """Account ``nbytes`` of traffic to the sender's adapter."""
        adapter = self._adapters.get((device_id, technology_name))
        if adapter is not None:
            adapter.bytes_sent += nbytes
