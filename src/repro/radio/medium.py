"""The shared radio medium.

The medium answers reachability questions: *can device A talk to
device B over technology T right now?*  For local radios (Bluetooth,
WLAN ad-hoc) the answer follows from the mobility world's distances and
each technology's range.  Wide-area technologies (GPRS) are reachable
whenever both ends have coverage and a gateway is registered.

Devices attach per-technology *adapters* (a device without a Bluetooth
adapter is invisible on Bluetooth even when physically near), which
lets scenarios reproduce the paper's testbed where only some machines
carried dongles (Table 5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mobility.world import World
from repro.radio.technology import Technology

if TYPE_CHECKING:  # pragma: no cover - layering guard (net builds on radio)
    from repro.net.faults import FaultInjector


class NotReachableError(ConnectionError):
    """Raised when a transfer is attempted over a dead link."""


class Adapter:
    """A device's interface to one technology."""

    __slots__ = ("device_id", "technology", "bytes_sent", "_enabled",
                 "_medium")

    def __init__(self, device_id: str, technology: Technology,
                 enabled: bool = True) -> None:
        self.device_id = device_id
        self.technology = technology
        #: Cumulative bytes sent by this adapter (for cost accounting).
        self.bytes_sent = 0
        self._enabled = enabled
        self._medium: "Medium | None" = None  # set by Medium.attach

    @property
    def enabled(self) -> bool:
        """Whether the radio is powered on."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if value != self._enabled:
            self._enabled = value
            # Powering a radio changes who can reach whom: drop the
            # medium's memoized topology answers.
            if self._medium is not None:
                self._medium._invalidate_topology()

    @property
    def cost_incurred(self) -> float:
        """Money spent on traffic through this adapter so far."""
        return self.technology.transfer_cost(self.bytes_sent)

    def __repr__(self) -> str:
        state = "on" if self._enabled else "off"
        return (f"Adapter({self.device_id!r}, {self.technology.name}, "
                f"{state}, {self.bytes_sent}B)")


class Medium:
    """Registry of adapters plus reachability/link-quality queries."""

    def __init__(self, world: World) -> None:
        self.world = world
        self._adapters: dict[tuple[str, str], Adapter] = {}
        #: Device ids per technology name — lets ``neighbors`` scan one
        #: technology's population instead of every adapter pair.
        self._by_technology: dict[str, list[str]] = {}
        self._gateways: set[str] = set()
        #: Pairwise distances memoized until the next movement
        #: notification; reachability at 64 devices recomputes the same
        #: distance thousands of times per tick otherwise.
        self._distances: dict[tuple[str, str], float] = {}
        #: Memoized ``reachable`` verdicts and sorted ``neighbors``
        #: listings, valid for one topology epoch.  Dropped whenever
        #: positions, adapters, enablement or gateways change.
        self._reachable_cache: dict[tuple[str, str, str], bool] = {}
        self._neighbors_cache: dict[tuple[str, str], list[str]] = {}
        world.on_movement(self._invalidate_positions)
        #: Optional installed :class:`~repro.net.faults.FaultInjector`;
        #: stacks and connections consult it at setup and send time.
        self.faults: "FaultInjector | None" = None

    def _invalidate_positions(self) -> None:
        """Movement listener: positions changed, drop position-derived
        caches (distances, reachability, neighbour listings)."""
        self._distances.clear()
        self._reachable_cache.clear()
        self._neighbors_cache.clear()

    def _invalidate_topology(self) -> None:
        """Adapters/gateways changed; distances stay valid."""
        self._reachable_cache.clear()
        self._neighbors_cache.clear()

    def _distance(self, a: str, b: str) -> float:
        """World distance with per-movement-epoch memoization."""
        key = (a, b) if a <= b else (b, a)
        cached = self._distances.get(key)
        if cached is None:
            cached = self.world.distance_between(a, b)
            self._distances[key] = cached
        return cached

    # -- attachment ------------------------------------------------------

    def attach(self, device_id: str, technology: Technology) -> Adapter:
        """Give ``device_id`` an adapter for ``technology``."""
        key = (device_id, technology.name)
        if key in self._adapters:
            raise ValueError(f"{device_id!r} already has a {technology.name} adapter")
        adapter = Adapter(device_id, technology)
        adapter._medium = self
        self._adapters[key] = adapter
        self._by_technology.setdefault(technology.name, []).append(device_id)
        self._invalidate_topology()
        return adapter

    def detach(self, device_id: str, technology_name: str) -> None:
        """Remove an adapter (device powered the radio off)."""
        del self._adapters[(device_id, technology_name)]
        self._by_technology[technology_name].remove(device_id)
        self._invalidate_topology()

    def adapter(self, device_id: str, technology_name: str) -> Adapter | None:
        """The adapter, or ``None`` if the device lacks the technology."""
        return self._adapters.get((device_id, technology_name))

    def adapters_of(self, device_id: str) -> list[Adapter]:
        """All adapters belonging to one device."""
        return [adapter for (owner, _), adapter in self._adapters.items()
                if owner == device_id]

    def register_gateway(self, technology_name: str) -> None:
        """Declare operator infrastructure for a wide-area technology."""
        self._gateways.add(technology_name)
        self._invalidate_topology()

    def has_gateway(self, technology_name: str) -> bool:
        """Whether the wide-area technology has infrastructure."""
        return technology_name in self._gateways

    # -- queries --------------------------------------------------------------

    def reachable(self, a: str, b: str, technology_name: str) -> bool:
        """Whether ``a`` and ``b`` can communicate over the technology.

        Verdicts are memoized for the current topology epoch — every
        send, connect and discovery scan asks this, and at 64 devices
        the same pairs repeat tens of thousands of times per epoch.
        """
        key = (a, b, technology_name)
        cached = self._reachable_cache.get(key)
        if cached is None:
            cached = self._reachable_cache[key] = \
                self._compute_reachable(a, b, technology_name)
        return cached

    def _compute_reachable(self, a: str, b: str, technology_name: str) -> bool:
        if a == b:
            return False
        adapter_a = self._adapters.get((a, technology_name))
        adapter_b = self._adapters.get((b, technology_name))
        if adapter_a is None or adapter_b is None:
            return False
        if not (adapter_a._enabled and adapter_b._enabled):
            return False
        technology = adapter_a.technology
        if technology.needs_gateway:
            return technology_name in self._gateways
        if a not in self.world or b not in self.world:
            return False
        return technology.in_range(self._distance(a, b))

    def link_quality(self, a: str, b: str, technology_name: str) -> float:
        """Quality in [0, 1] of the a<->b link; 0 when unreachable."""
        if not self.reachable(a, b, technology_name):
            return 0.0
        technology = self._adapters[(a, technology_name)].technology
        if technology.range_m is None:
            return 1.0
        return technology.link_quality(self._distance(a, b))

    def neighbors(self, device_id: str, technology_name: str) -> list[str]:
        """Device ids reachable from ``device_id`` over the technology.

        For wide-area technologies this is every attached device (the
        gateway bridges them); for local radios it is range-limited.
        Results are sorted for deterministic discovery order.
        """
        own = self._adapters.get((device_id, technology_name))
        if own is None or not own._enabled:
            return []
        key = (device_id, technology_name)
        cached = self._neighbors_cache.get(key)
        if cached is None:
            cached = sorted(
                other for other in self._by_technology.get(technology_name, ())
                if other != device_id
                and self.reachable(device_id, other, technology_name))
            self._neighbors_cache[key] = cached
        return list(cached)

    def record_transfer(self, device_id: str, technology_name: str,
                        nbytes: int) -> None:
        """Account ``nbytes`` of traffic to the sender's adapter."""
        adapter = self._adapters.get((device_id, technology_name))
        if adapter is not None:
            adapter.bytes_sent += nbytes
