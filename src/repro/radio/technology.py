"""Technology descriptors shared by the medium, plugins and benches."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Parametric description of one wireless technology.

    Attributes:
        name: Short identifier ("bluetooth", "wlan", "gprs", ...).
        range_m: Radio range in metres; ``None`` means wide-area (the
            technology reaches any peer through operator infrastructure,
            as GPRS does through its gateway).
        bandwidth_bps: Usable application-level throughput in bits/s.
        latency_s: One-way per-message latency in seconds.
        setup_time_s: Time to establish a connection (paging, PDP
            context activation, TCP-ish handshake...).
        discovery_time_s: Duration of one device-discovery scan.
        cost_per_mb: Monetary cost of transferring one megabyte; zero
            for local radios, positive for cellular (§5.1's "cost of
            data service is low as Bluetooth and WLAN can be primely
            used").
        needs_gateway: True when traffic is relayed through an operator
            gateway rather than flowing device-to-device (GPRSPlugin
            "uses proxy device as a bridge", §4.2.3).
        frame_loss_rate: Probability one link-layer frame transmission
            is lost and must be retransmitted.  Zero by default: the
            BTPlugin "offers ordered and reliable data delivery"
            (§4.2.3), so reliability is the baseline and loss is an
            experiment knob (``dataclasses.replace``d in benches).
    """

    name: str
    range_m: float | None
    bandwidth_bps: float
    latency_s: float
    setup_time_s: float
    discovery_time_s: float
    cost_per_mb: float = 0.0
    needs_gateway: bool = False
    frame_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.range_m is not None and self.range_m <= 0:
            raise ValueError(f"range must be positive or None, got {self.range_m!r}")
        if self.bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_bps!r}")
        for field_name in ("latency_s", "setup_time_s", "discovery_time_s",
                           "cost_per_mb"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if not 0.0 <= self.frame_loss_rate < 1.0:
            raise ValueError(
                f"frame_loss_rate must be in [0, 1), got {self.frame_loss_rate!r}")

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to push ``nbytes`` over an established connection.

        One-way latency plus serialisation delay.  Used by simulated
        connections for every message.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes!r}")
        return self.latency_s + (nbytes * 8.0) / self.bandwidth_bps

    def transfer_cost(self, nbytes: int) -> float:
        """Monetary cost of transferring ``nbytes``."""
        return self.cost_per_mb * (nbytes / 1_000_000.0)

    def in_range(self, distance_m: float) -> bool:
        """Whether two devices ``distance_m`` apart can communicate."""
        if self.range_m is None:
            return True
        return distance_m <= self.range_m

    def link_quality(self, distance_m: float) -> float:
        """Signal quality in [0, 1]; 0 means out of range.

        A quadratic falloff — crude but monotone, which is all the
        seamless-connectivity logic needs: PeerHood reacts to *weakening*
        links (Table 3, "Seamless Connectivity"), so only the ordering
        of qualities matters, not their absolute calibration.
        """
        if self.range_m is None:
            return 1.0
        if distance_m > self.range_m:
            return 0.0
        return max(0.0, 1.0 - (distance_m / self.range_m) ** 2)
