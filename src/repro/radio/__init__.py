"""Simulated wireless technologies.

The paper's reference implementation runs over real Bluetooth dongles,
with WLAN and GPRS supported by PeerHood plugins.  This package
substitutes parametric simulations for those radios (see DESIGN.md §2):
each :class:`~repro.radio.technology.Technology` describes range,
bandwidth, discovery and connection-setup latency, and data cost; the
:class:`~repro.radio.medium.Medium` derives who can hear whom from the
mobility world; and the Bluetooth module adds protocol behaviour the
paper leans on (inquiry timing, piconet size limits).

The timing constants are taken from the specifications the thesis
cites: Bluetooth 1.x inquiry/paging (§2.4.1), the 802.11 family of
Table 1 (§2.4.2) and GPRS's 9.6-171 kbps envelope (§2.4.3).
"""

from repro.radio.bluetooth import BluetoothAdapter, Piconet, PiconetFullError
from repro.radio.gprs import GprsGateway
from repro.radio.medium import Medium, NotReachableError
from repro.radio.standards import (
    BLUETOOTH,
    GPRS,
    IRDA,
    RFID,
    WLAN,
    WLAN_80211,
    WLAN_80211A,
    WLAN_80211B,
    WLAN_80211G,
    WIMAX_80216,
    ZIGBEE,
    WlanStandard,
    all_technologies,
    wlan_standards_table,
)
from repro.radio.technology import Technology

__all__ = [
    "BLUETOOTH",
    "BluetoothAdapter",
    "GPRS",
    "GprsGateway",
    "IRDA",
    "Medium",
    "NotReachableError",
    "Piconet",
    "PiconetFullError",
    "RFID",
    "Technology",
    "WIMAX_80216",
    "WLAN",
    "WLAN_80211",
    "WLAN_80211A",
    "WLAN_80211B",
    "WLAN_80211G",
    "WlanStandard",
    "ZIGBEE",
    "all_technologies",
    "wlan_standards_table",
]
