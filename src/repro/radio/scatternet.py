"""Bluetooth scatternet formation.

§2.4.1 describes the piconet — one master, at most seven active
slaves.  Covering a neighbourhood larger than eight devices (or a
multi-hop chain) requires a *scatternet*: several piconets sharing
bridge nodes.  The overlay relays of :mod:`repro.adhoc` implicitly
assume such a structure exists; this module makes it explicit and
checkable, assigning roles over the current connectivity graph with a
classic BFS-based heuristic:

1. Pick the highest-degree uncovered node as a master.
2. Enrol up to seven uncovered neighbours as its slaves.
3. Repeat until every node is covered.
4. Nodes adjacent to two piconets become bridges (slave in both).

The result is a :class:`Scatternet` whose invariants (piconet size,
bridge correctness, full coverage, connectivity preservation) are
property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.radio.bluetooth import Piconet


@dataclass
class PiconetPlan:
    """One planned piconet: a master and its slave set."""

    master: str
    slaves: set[str] = field(default_factory=set)

    def as_piconet(self) -> Piconet:
        """Materialise the plan as live piconet bookkeeping."""
        piconet = Piconet(self.master)
        for slave in sorted(self.slaves):
            piconet.add_slave(slave)
        return piconet

    @property
    def members(self) -> set[str]:
        """Master plus slaves."""
        return {self.master} | self.slaves


@dataclass
class Scatternet:
    """A set of piconets covering a connectivity graph."""

    piconets: list[PiconetPlan]
    bridges: set[str]

    def piconets_of(self, device_id: str) -> list[PiconetPlan]:
        """Every piconet the device participates in."""
        return [plan for plan in self.piconets if device_id in plan.members]

    def covered_devices(self) -> set[str]:
        """All devices holding at least one role."""
        covered: set[str] = set()
        for plan in self.piconets:
            covered |= plan.members
        return covered

    def overlay_graph(self) -> nx.Graph:
        """The scatternet as a graph: master-slave edges only."""
        graph = nx.Graph()
        for plan in self.piconets:
            graph.add_node(plan.master)
            for slave in plan.slaves:
                graph.add_edge(plan.master, slave)
        return graph

    def preserves_connectivity(self, radio_graph: nx.Graph) -> bool:
        """Whether every radio-connected pair stays scatternet-connected."""
        overlay = self.overlay_graph()
        for component in nx.connected_components(radio_graph):
            if len(component) <= 1:
                continue
            if not set(component) <= set(overlay.nodes):
                return False
            if not nx.is_connected(overlay.subgraph(component)):
                return False
        return True


def form_scatternet(graph: nx.Graph,
                    max_slaves: int = Piconet.MAX_ACTIVE_SLAVES) -> Scatternet:
    """Assign piconet roles over ``graph`` (per connected component).

    Greedy cover first: repeatedly make the highest-degree uncovered
    node a master with up to ``max_slaves`` neighbours as slaves — one
    slot reserved for an already-covered neighbour when one exists, so
    new piconets bridge into the covered region immediately.  A stitch
    pass then repairs any remaining split: for a radio edge whose ends
    sit in different overlay components, the edge is realised as a
    master-slave pair (enrolling into an existing piconet when a slot
    is free, otherwise forming a two-node piconet).
    """
    if max_slaves < 1:
        raise ValueError(f"max_slaves must be >= 1, got {max_slaves!r}")
    piconets: list[PiconetPlan] = []
    covered: set[str] = set()
    by_master: dict[str, PiconetPlan] = {}
    candidates = sorted(graph.nodes,
                        key=lambda node: (-graph.degree[node], node))
    for node in candidates:
        if node in covered:
            continue
        plan = PiconetPlan(master=node)
        uncovered = sorted(n for n in graph.neighbors(node)
                           if n not in covered)
        already = sorted(n for n in graph.neighbors(node) if n in covered)
        chosen: list[str] = []
        if already:
            chosen.append(already[0])  # the bridge into the covered region
        chosen.extend(uncovered[:max_slaves - len(chosen)])
        plan.slaves.update(chosen)
        covered |= plan.members
        piconets.append(plan)
        by_master[node] = plan

    # Stitch pass: realise one radio edge per disconnected pair of
    # overlay components until the overlay matches radio connectivity.
    def stitch_once() -> bool:
        overlay = Scatternet(piconets, set()).overlay_graph()
        overlay.add_nodes_from(graph.nodes)
        component_of: dict[str, int] = {}
        for index, component in enumerate(nx.connected_components(overlay)):
            for node in component:
                component_of[node] = index
        for u, v in sorted(graph.edges):
            if component_of[u] == component_of[v]:
                continue
            for master, slave in ((u, v), (v, u)):
                plan = by_master.get(master)
                if plan is not None and len(plan.slaves) < max_slaves:
                    plan.slaves.add(slave)
                    return True
            # Neither end masters a piconet with room; form a new
            # two-node piconet (any node may slave in several).
            new_master = u if u not in by_master else v
            if new_master in by_master:
                continue  # both master full piconets; try another edge
            plan = PiconetPlan(master=new_master, slaves={v if
                                                          new_master == u
                                                          else u})
            piconets.append(plan)
            by_master[new_master] = plan
            return True
        return False

    while stitch_once():
        pass

    membership_count: dict[str, int] = {}
    for plan in piconets:
        for member in plan.members:
            membership_count[member] = membership_count.get(member, 0) + 1
    bridges = {device for device, count in membership_count.items()
               if count > 1}
    return Scatternet(piconets, bridges)
