"""Bluetooth protocol behaviour beyond the generic technology model.

Two Bluetooth realities matter to PeerHood and are modelled here:

* **Inquiry timing.**  Discovering nearby devices is slow (seconds, not
  milliseconds) and the time grows mildly with the number of responding
  devices because responses are spread over inquiry trains.  This is
  the dominant term in the paper's 11 s "group search" figure.
* **Piconets.**  A master supports at most seven active slaves
  (§2.4.1); connection attempts beyond that fail until a slave leaves.
"""

from __future__ import annotations

from random import Random

from repro.radio.standards import BLUETOOTH
from repro.radio.technology import Technology


class PiconetFullError(ConnectionError):
    """A Bluetooth master already has seven active slaves."""


class Piconet:
    """Master/slave bookkeeping for one device acting as master."""

    MAX_ACTIVE_SLAVES = 7

    def __init__(self, master_id: str) -> None:
        self.master_id = master_id
        self._slaves: set[str] = set()

    @property
    def slaves(self) -> frozenset[str]:
        """Currently connected slave device ids."""
        return frozenset(self._slaves)

    def add_slave(self, device_id: str) -> None:
        """Attach a slave; raises :class:`PiconetFullError` at capacity."""
        if device_id == self.master_id:
            raise ValueError("a device cannot be its own slave")
        if device_id in self._slaves:
            return
        if len(self._slaves) >= self.MAX_ACTIVE_SLAVES:
            raise PiconetFullError(
                f"piconet of {self.master_id!r} already has "
                f"{self.MAX_ACTIVE_SLAVES} active slaves")
        self._slaves.add(device_id)

    def remove_slave(self, device_id: str) -> None:
        """Detach a slave (connection closed or device lost)."""
        self._slaves.discard(device_id)

    def __len__(self) -> int:
        return len(self._slaves)


class BluetoothAdapter:
    """Per-device Bluetooth behaviour: inquiry timing and piconet state.

    Args:
        device_id: Owning device.
        rng: Random stream for inquiry response jitter.
        technology: Parameter set; defaults to :data:`BLUETOOTH`.
    """

    def __init__(self, device_id: str, rng: Random,
                 technology: Technology = BLUETOOTH) -> None:
        self.device_id = device_id
        self.technology = technology
        self._rng = rng
        self.piconet = Piconet(device_id)
        #: Set false to make the device undiscoverable (but connectable).
        self.discoverable = True

    def inquiry_duration(self, responders: int) -> float:
        """Seconds one inquiry takes given ``responders`` nearby devices.

        Base scan window plus a small per-responder backoff term with
        jitter: each responding device answers in a random inquiry-scan
        slot, so crowded neighbourhoods take slightly longer to
        enumerate completely.
        """
        if responders < 0:
            raise ValueError(f"responders must be non-negative, got {responders!r}")
        base = self.technology.discovery_time_s
        per_responder = 0.16  # one extra inquiry-train slot each
        jitter = self._rng.uniform(0.0, 0.64)
        return base + responders * per_responder + jitter

    def page_duration(self) -> float:
        """Seconds to page one known device and set up L2CAP."""
        return self.technology.setup_time_s + self._rng.uniform(0.0, 0.2)
