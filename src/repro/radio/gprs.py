"""GPRS gateway: the proxy device bridging wide-area peers.

The paper's GPRSPlugin "operates over IP connections and uses proxy
device as a bridge or an intermediate device" (§4.2.3).  The gateway
here plays that proxy: devices register with it, discovery is a lookup
in its registry, and each relayed message pays an extra store-and-
forward hop.  It also meters traffic so benches can report the data
cost that makes GPRS the technology of last resort in §5.1.
"""

from __future__ import annotations

from repro.radio.standards import GPRS
from repro.radio.technology import Technology


class GprsGateway:
    """Operator-side registry and relay for GPRS peers."""

    def __init__(self, technology: Technology = GPRS) -> None:
        self.technology = technology
        self._registered: set[str] = set()
        self.relayed_bytes = 0
        self.relayed_messages = 0

    @property
    def registered(self) -> frozenset[str]:
        """Devices currently attached to the operator network."""
        return frozenset(self._registered)

    def register(self, device_id: str) -> None:
        """Attach a device (PDP context established)."""
        self._registered.add(device_id)

    def deregister(self, device_id: str) -> None:
        """Detach a device (context released / coverage lost)."""
        self._registered.discard(device_id)

    def lookup(self, requester: str) -> list[str]:
        """Peers visible to ``requester`` through the gateway."""
        return sorted(self._registered - {requester})

    def relay_time(self, nbytes: int) -> float:
        """Extra seconds the proxy hop adds for an ``nbytes`` message.

        The message crosses the air interface twice (up, then down) and
        is queued once at the proxy; metering happens here too.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes!r}")
        self.relayed_bytes += nbytes
        self.relayed_messages += 1
        queueing = 0.050
        return self.technology.transfer_time(nbytes) + queueing

    def total_cost(self) -> float:
        """Monetary cost of all traffic relayed so far (both directions)."""
        return self.technology.transfer_cost(self.relayed_bytes * 2)
