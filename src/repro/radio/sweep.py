"""Vectorized per-epoch neighbour sweeps (numpy).

The scalar discovery path answers "who is near device d?" one device
at a time: per scan it gathers the grid cells the radio disc overlaps,
filters candidates by exact squared distance and sorts the survivors.
At crowd scale (n >= 1024) thousands of scans repeat that walk per
epoch even though *positions only change at movement ticks* — between
ticks every scan re-derives the same topology.

This module answers the question for *every* device in one shot: all
positions are batched into float64 arrays, candidate pairs are
generated from a dense cell-occupancy table (bincount + cumsum + pure
gathers — no per-candidate binary search), and a single elementwise
pass applies the exact same ``dx*dx + dy*dy <= radius*radius``
comparison the scalar path uses
(:meth:`repro.mobility.world.World.nodes_within`).  IEEE-754
arithmetic is deterministic elementwise, so the resulting listings are
*bit-identical* to the scalar ones — the lockstep property test in
``tests/test_vector_sweep.py`` and the sharded equivalence gate both
referee this.

The cell bucketing here is only a candidate generator: cell indexes
are derived with :func:`numpy.floor_divide`, whose rare edge rounding
may disagree with the grid's ``int(x // size)`` by one cell, so the
search reach carries one guard ring.  Candidates never affect output
— the exact distance mask does — so the guard ring costs a little
masking work and buys unconditional correctness.

``numpy`` is an optional dependency: :func:`available` gates every
caller, and ``REPRO_VECTOR_SWEEP=0`` restores the scalar path even
when numpy is importable (see :mod:`repro.radio.medium`).
"""

from __future__ import annotations

import math

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None  # type: ignore[assignment]

#: Dense cell tables above this size fall back to the (slower but
#: memory-proportional-to-occupancy) sorted-key path — only reachable
#: with a degenerate bounds/cell-size ratio.
_DENSE_CELL_CAP = 1 << 22


def available() -> bool:
    """Whether the vectorized sweep can run on this interpreter."""
    return _np is not None


def sweep_pairs(xs, ys, radius: float, cell_size: float):
    """All-pairs-within-``radius`` listings for one batch of positions.

    Args:
        xs: Device x coordinates, float64, in listing (id-sorted) order.
        ys: Device y coordinates, same order.
        radius: Radio range in metres (exact squared-distance cutoff).
        cell_size: Bucketing pitch for candidate generation; correctness
            holds for any positive value, speed is best near ``radius``.

    Returns:
        ``(starts, flat)`` where ``flat[starts[i]:starts[i + 1]]`` holds
        the indices of device ``i``'s in-range neighbours in ascending
        index order (self excluded).  Both are plain Python lists so
        callers never box numpy scalars on their hot path.
    """
    if _np is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("numpy is not available")
    n = xs.shape[0]
    if n == 0:
        return [0], []
    cx = _np.floor_divide(xs, cell_size).astype(_np.int64)
    cy = _np.floor_divide(ys, cell_size).astype(_np.int64)
    # +1 guard ring: floor_divide's edge rounding vs the grid's
    # ``int(x // size)`` can shift a cell index by one.
    reach = int(math.ceil(radius / cell_size)) + 1
    span = 2 * reach + 1
    # Dense cell-occupancy table over the populated bounding box, with
    # a ``reach``-wide empty margin so every offset lookup stays in
    # bounds without clipping.  World coordinates are clamped to the
    # world rect, so the table is small (bounds/cell_size per axis).
    min_cx = int(cx.min())
    min_cy = int(cy.min())
    ncy = int(cy.max()) - min_cy + 1 + 2 * reach
    ncx = int(cx.max()) - min_cx + 1 + 2 * reach
    if ncx * ncy > _DENSE_CELL_CAP:  # pragma: no cover - degenerate geometry
        raise ValueError(
            f"cell table {ncx}x{ncy} exceeds the dense sweep cap; "
            f"disable the vector sweep (REPRO_VECTOR_SWEEP=0)")
    lin = (cx - (min_cx - reach)) * ncy + (cy - (min_cy - reach))
    # Stable sort by cell: within a cell, candidates keep ascending
    # device index, which *is* the scalar path's sorted-id order.
    order = _np.argsort(lin, kind="stable")
    cell_counts = _np.bincount(lin, minlength=ncx * ncy)
    cell_starts = _np.empty(ncx * ncy + 1, dtype=_np.int64)
    cell_starts[0] = 0
    _np.cumsum(cell_counts, out=cell_starts[1:])
    # One flat (span^2 * n) target array: every device crossed with
    # every cell offset, resolved by pure table gathers.
    deltas = (_np.arange(-reach, reach + 1) * ncy)[:, None] \
        + _np.arange(-reach, reach + 1)[None, :]
    targets = (lin[None, :] + deltas.reshape(-1, 1)).ravel()
    left = cell_starts[targets]
    counts = cell_starts[targets + 1]
    counts -= left
    # Most offset cells are empty (the guard ring especially); dropping
    # them before the repeat-expansion shrinks its input ~10x.
    occupied = counts > 0
    counts = counts[occupied]
    left = left[occupied]
    dev_base = _np.tile(_np.arange(n), span * span)[occupied]
    total = int(counts.sum())
    if total == 0:
        return [0] * (n + 1), []
    dev = _np.repeat(dev_base, counts)
    # Expand each [left_i, left_i + count_i) range into explicit
    # indexes: a global arange minus each element's start offset in
    # the output, plus its range start.
    group_starts = _np.cumsum(counts) - counts
    pos = (_np.arange(total)
           - _np.repeat(group_starts, counts)
           + _np.repeat(left, counts))
    cand = order[pos]
    dx = xs[cand] - xs[dev]
    dy = ys[cand] - ys[dev]
    d2 = dx * dx
    d2 += dy * dy
    mask = d2 <= radius * radius
    mask &= cand != dev
    # Sort surviving pairs device-major with neighbours ascending via
    # one composite int64 key (cand < n, so the packing is injective
    # and order-preserving) — cheaper than an indirect lexsort.
    combo = dev[mask]
    combo *= n
    combo += cand[mask]
    combo.sort()
    all_dev = combo // n
    all_nbr = combo
    all_nbr %= n
    counts = _np.bincount(all_dev, minlength=n)
    starts = _np.empty(n + 1, dtype=_np.int64)
    starts[0] = 0
    _np.cumsum(counts, out=starts[1:])
    return starts.tolist(), all_nbr.tolist()


def positions_array(nodes, ids):
    """Batch node positions into float64 arrays in ``ids`` order."""
    if _np is None:  # pragma: no cover - callers gate on available()
        raise RuntimeError("numpy is not available")
    n = len(ids)
    xs = _np.empty(n, dtype=_np.float64)
    ys = _np.empty(n, dtype=_np.float64)
    for index, node_id in enumerate(ids):
        position = nodes[node_id].position
        xs[index] = position.x
        ys[index] = position.y
    return xs, ys
