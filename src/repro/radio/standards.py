"""Registry of concrete technology parameterisations.

Two groups live here:

* The three PeerHood plugin technologies (:data:`BLUETOOTH`,
  :data:`WLAN_80211B` exposed as the default "wlan", :data:`GPRS`) with
  timing constants from the specs cited in §2.4.
* The full Table 1 WLAN-standards registry plus the "other
  technologies" of §2.4.4 (IrDA, RFID, ZigBee) so the Table 1 bench can
  regenerate the paper's standards table from code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.radio.technology import Technology

# -- PeerHood plugin technologies -------------------------------------------

#: Bluetooth 1.2-class radio as used by the paper's 3COM dongles: ~10 m
#: range, 721 kbps asymmetric data rate, inquiry of a few seconds and
#: ~1.28 s paging before L2CAP setup (§2.4.1).
BLUETOOTH = Technology(
    name="bluetooth",
    range_m=10.0,
    bandwidth_bps=721_000.0,
    latency_s=0.030,
    setup_time_s=1.92,          # paging (1.28 s) + L2CAP channel setup
    discovery_time_s=5.12,      # inquiry scan window (4 x 1.28 s trains)
    cost_per_mb=0.0,
)

#: 802.11b ad-hoc WLAN — the PeerHood WLANPlugin's broadcast-based
#: discovery over direct IP connections (§4.2.3).
WLAN = Technology(
    name="wlan",
    range_m=60.0,
    bandwidth_bps=5_500_000.0,  # practical throughput of 11 Mbps 802.11b
    latency_s=0.005,
    setup_time_s=0.25,
    discovery_time_s=1.0,       # one broadcast round + reply window
    cost_per_mb=0.0,
)

#: GPRS via operator gateway: wide-area, slow, costly and relayed
#: (§2.4.3: 9.6-171 kbps envelope; we use a practical mid-band rate).
GPRS = Technology(
    name="gprs",
    range_m=None,
    bandwidth_bps=40_000.0,
    latency_s=0.600,
    setup_time_s=2.5,           # PDP context activation
    discovery_time_s=4.0,       # proxy registry round-trip
    cost_per_mb=2.0,
    needs_gateway=True,
)

#: IrDA: line-of-sight, ~1 m; kept for the §2.4.4 comparison benches.
IRDA = Technology(
    name="irda",
    range_m=1.0,
    bandwidth_bps=4_000_000.0,
    latency_s=0.010,
    setup_time_s=0.5,
    discovery_time_s=2.0,
)

#: ZigBee: low rate, low power (§2.4.4).
ZIGBEE = Technology(
    name="zigbee",
    range_m=30.0,
    bandwidth_bps=250_000.0,
    latency_s=0.015,
    setup_time_s=0.03,
    discovery_time_s=0.5,
)

#: RFID: near-field tag reading; modelled as an extremely short-range,
#: tiny-payload technology (§2.4.4).
RFID = Technology(
    name="rfid",
    range_m=0.5,
    bandwidth_bps=26_000.0,
    latency_s=0.002,
    setup_time_s=0.01,
    discovery_time_s=0.1,
)


# -- Table 1: WLAN standards ------------------------------------------------

@dataclass(frozen=True)
class WlanStandard:
    """One row of the paper's Table 1.

    Attributes:
        standard: IEEE designation.
        max_rate_mbps: Peak data rate in Mbit/s.
        band: Description of the radio band.
        security: Security mechanisms listed by the paper.
        description: Abridged descriptive notes from Table 1.
        technology: A :class:`Technology` parameterised for this
            standard, usable anywhere the generic WLAN descriptor is.
    """

    standard: str
    max_rate_mbps: float
    band: str
    security: tuple[str, ...]
    description: str
    technology: Technology


def _wlan_variant(name: str, rate_mbps: float, range_m: float) -> Technology:
    practical = rate_mbps * 0.5  # MAC overhead halves usable throughput
    return Technology(
        name=name,
        range_m=range_m,
        bandwidth_bps=practical * 1_000_000.0,
        latency_s=0.005,
        setup_time_s=0.25,
        discovery_time_s=1.0,
    )


WLAN_80211 = WlanStandard(
    standard="IEEE 802.11",
    max_rate_mbps=2.0,
    band="2.4GHz",
    security=("WEP", "WPA"),
    description="This standard was extended to 802.11b",
    technology=_wlan_variant("wlan-802.11", 2.0, 50.0),
)

WLAN_80211A = WlanStandard(
    standard="IEEE 802.11a",
    max_rate_mbps=54.0,
    band="5GHz",
    security=("WEP", "WPA"),
    description=("Eight channels; less RF interference than b/g; better "
                 "multimedia support; shorter range; not interoperable "
                 "with 802.11b"),
    technology=_wlan_variant("wlan-802.11a", 54.0, 35.0),
)

WLAN_80211B = WlanStandard(
    standard="IEEE 802.11b",
    max_rate_mbps=11.0,
    band="2.4GHz",
    security=("WEP", "WPA"),
    description=("Not interoperable with 802.11a; fewer APs needed; "
                 "high-speed access up to 300 feet; 14 channels"),
    technology=_wlan_variant("wlan-802.11b", 11.0, 60.0),
)

WLAN_80211G = WlanStandard(
    standard="IEEE 802.11g",
    max_rate_mbps=54.0,
    band="2.4GHz",
    security=("WEP", "WPA"),
    description=("May replace 802.11b; improved security; compatible "
                 "with 802.11b; 14 channels"),
    technology=_wlan_variant("wlan-802.11g", 54.0, 60.0),
)

WIMAX_80216 = WlanStandard(
    standard="IEEE 802.16/a",
    max_rate_mbps=70.0,
    band="10 to 66 GHz",
    security=("DES3", "AES"),
    description=("Specification for fixed broadband wireless "
                 "metropolitan access networks (MANs)"),
    technology=_wlan_variant("wimax-802.16", 70.0, 5_000.0),
)


def wlan_standards_table() -> list[WlanStandard]:
    """All Table 1 rows in the paper's order."""
    return [WLAN_80211, WLAN_80211A, WLAN_80211B, WLAN_80211G, WIMAX_80216]


def all_technologies() -> dict[str, Technology]:
    """Every named plugin-grade technology descriptor."""
    return {tech.name: tech
            for tech in (BLUETOOTH, WLAN, GPRS, IRDA, ZIGBEE, RFID)}
