"""Uniform spatial hash grid for O(cell occupancy) proximity queries.

``World.nodes_within`` used to scan every node for every query, which
made each discovery scan O(N) and a scan round O(N²) at crowd scale.
The grid buckets nodes into square cells keyed by integer coordinates;
a disc query only visits the cells its bounding square overlaps, so the
cost follows local density rather than world population.

Beyond membership, every cell carries a monotonically increasing
*epoch* counter bumped whenever the set of positions inside the cell
changes (a node enters, leaves, moves within it, or is touched by an
adapter state change).  Summing the epochs of the cells a disc covers
yields a cheap *region stamp*: if no position inside (or entering /
leaving) the disc's cell cover changed, the stamp is unchanged, so a
memoized neighbour listing stamped with it is still valid.  This is
what lets the radio medium keep everyone else's cached topology when
one node moves — the incremental alternative to dropping every cache
on every movement tick.
"""

from __future__ import annotations

from repro.mobility.geometry import Point


class SpatialGrid:
    """Uniform hash grid over the plane with per-cell change epochs.

    Args:
        cell_size: Edge length of one square cell in metres.  Queries
            are correct for any positive value; performance is best
            when it is close to the largest query radius in use (one
            disc then covers at most 3x3 cells).
    """

    __slots__ = ("cell_size", "generation", "_cells", "_where", "_epochs")

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0.0:
            raise ValueError(f"cell_size must be positive, got {cell_size!r}")
        self.cell_size = cell_size
        #: Bumped when the grid is rebuilt with a new cell size; region
        #: stamps embed it so stamps from different geometries never
        #: compare equal by coincidence.
        self.generation = 0
        self._cells: dict[tuple[int, int], set[str]] = {}
        self._where: dict[str, tuple[int, int]] = {}
        self._epochs: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._where

    def key_for(self, x: float, y: float) -> tuple[int, int]:
        """Cell coordinates containing the point ``(x, y)``."""
        size = self.cell_size
        return (int(x // size), int(y // size))

    def _bump(self, key: tuple[int, int]) -> None:
        self._epochs[key] = self._epochs.get(key, 0) + 1

    # -- membership ---------------------------------------------------------

    def insert(self, node_id: str, position: Point) -> None:
        """Add a node; raises if the id is already present."""
        if node_id in self._where:
            raise ValueError(f"node {node_id!r} already in grid")
        key = self.key_for(position.x, position.y)
        self._where[node_id] = key
        bucket = self._cells.get(key)
        if bucket is None:
            bucket = self._cells[key] = set()
        bucket.add(node_id)
        self._bump(key)

    def remove(self, node_id: str) -> None:
        """Remove a node; raises ``KeyError`` if absent."""
        key = self._where.pop(node_id)
        bucket = self._cells[key]
        bucket.discard(node_id)
        if not bucket:
            del self._cells[key]
        self._bump(key)

    def move(self, node_id: str, position: Point) -> bool:
        """Re-bucket a node after a position change.

        Returns ``True`` when the node crossed into another cell (the
        only case that costs set operations); a within-cell move just
        bumps the cell's epoch, because distances to the node changed
        even though its bucket did not.
        """
        new_key = self.key_for(position.x, position.y)
        old_key = self._where[node_id]
        if new_key == old_key:
            self._bump(old_key)
            return False
        self._where[node_id] = new_key
        bucket = self._cells[old_key]
        bucket.discard(node_id)
        if not bucket:
            del self._cells[old_key]
        new_bucket = self._cells.get(new_key)
        if new_bucket is None:
            new_bucket = self._cells[new_key] = set()
        new_bucket.add(node_id)
        self._bump(old_key)
        self._bump(new_key)
        return True

    def touch(self, node_id: str) -> None:
        """Bump the node's cell epoch without moving it.

        Used for non-positional changes that still affect who-sees-whom
        (an adapter powering on or off): every cached listing whose
        region covers the node's cell must re-derive.
        """
        self._bump(self._where[node_id])

    # -- queries ------------------------------------------------------------

    def cell_range(self, center: Point,
                   radius: float) -> tuple[int, int, int, int]:
        """Inclusive cell-coordinate bounds covering the disc."""
        size = self.cell_size
        return (int((center.x - radius) // size),
                int((center.x + radius) // size),
                int((center.y - radius) // size),
                int((center.y + radius) // size))

    def candidates(self, center: Point, radius: float) -> list[str]:
        """Node ids in every cell the disc's bounding square overlaps.

        A superset of the nodes within ``radius``; callers filter by
        exact distance.  Cost is O(cells covered + occupants), which at
        bounded density is independent of world population.
        """
        min_cx, max_cx, min_cy, max_cy = self.cell_range(center, radius)
        cells = self._cells
        found: list[str] = []
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                bucket = cells.get((cx, cy))
                if bucket:
                    found.extend(bucket)
        return found

    def region_stamp(self, center: Point,
                     radius: float) -> tuple[int, ...]:
        """Opaque stamp identifying the state of the disc's cell cover.

        Equal stamps guarantee the *same* cells were covered and that
        no node inside them moved, entered, left or was touched since
        the earlier stamp was taken (epochs only grow, so the sum over
        a fixed cover only grows).  The cover bounds are part of the
        stamp: when the disc's centre drifts onto a different cell set,
        the epoch sums of the old and new covers are sums over
        *different* cells and can coincide numerically — without the
        bounds, such a collision would validate a stale listing.  The
        grid generation is included so stamps taken before a
        :meth:`rebuild` never match stamps taken after.
        """
        min_cx, max_cx, min_cy, max_cy = self.cell_range(center, radius)
        epochs = self._epochs
        total = 0
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                total += epochs.get((cx, cy), 0)
        return (self.generation, min_cx, max_cx, min_cy, max_cy, total)

    # -- maintenance --------------------------------------------------------

    def rebuild(self, cell_size: float, positions: dict[str, Point]) -> None:
        """Re-bucket everything under a new cell size.

        Called when a technology with a larger radio range attaches and
        the world grows the cell size to match; O(N), but only ever
        triggered during scenario setup.
        """
        if cell_size <= 0.0:
            raise ValueError(f"cell_size must be positive, got {cell_size!r}")
        self.cell_size = cell_size
        self.generation += 1
        self._cells.clear()
        self._where.clear()
        self._epochs.clear()
        for node_id, position in positions.items():
            key = self.key_for(position.x, position.y)
            self._where[node_id] = key
            bucket = self._cells.get(key)
            if bucket is None:
                bucket = self._cells[key] = set()
            bucket.add(node_id)

    def __repr__(self) -> str:
        return (f"SpatialGrid(cell={self.cell_size:g}m, "
                f"{len(self._where)} nodes, {len(self._cells)} cells)")
