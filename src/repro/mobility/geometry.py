"""Plane geometry helpers for the mobility world."""

from __future__ import annotations

import math
from dataclasses import dataclass


class Point:
    """A position on the 2D plane, in metres.

    Treated as immutable everywhere (methods return new points), but
    hand-rolled rather than a frozen dataclass: walkers construct one
    per movement tick, and frozen-dataclass ``__init__`` pays two
    ``object.__setattr__`` calls per instance on that hot path.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        self.x = x
        self.y = y

    def __repr__(self) -> str:
        return f"Point(x={self.x!r}, y={self.y!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Point):
            return self.x == other.x and self.y == other.y
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def moved_towards(self, target: Point, step: float) -> Point:
        """Return the point ``step`` metres from here towards ``target``.

        Never overshoots: if ``target`` is closer than ``step``, the
        target itself is returned.
        """
        gap = distance(self, target)
        if gap <= step or gap == 0.0:
            return target
        fraction = step / gap
        return Point(self.x + (target.x - self.x) * fraction,
                     self.y + (target.y - self.y) * fraction)

    def offset(self, dx: float, dy: float) -> Point:
        """Return this point translated by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return math.hypot(a.x - b.x, a.y - b.y)


@dataclass(frozen=True)
class Rect:
    """Axis-aligned bounding rectangle for the simulated area."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x <= self.min_x or self.max_y <= self.min_y:
            raise ValueError(f"degenerate rectangle {self!r}")

    @property
    def width(self) -> float:
        """Horizontal extent in metres."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Vertical extent in metres."""
        return self.max_y - self.min_y

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside (or on the edge of) the rect."""
        return (self.min_x <= point.x <= self.max_x
                and self.min_y <= point.y <= self.max_y)

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the nearest position inside the rect."""
        x = point.x
        y = point.y
        if self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y:
            return point  # already inside: no fresh allocation
        return Point(min(max(x, self.min_x), self.max_x),
                     min(max(y, self.min_y), self.max_y))

    def random_point(self, rng) -> Point:
        """Uniform random point inside the rectangle."""
        return Point(rng.uniform(self.min_x, self.max_x),
                     rng.uniform(self.min_y, self.max_y))
