"""Mobility substrate: a 2D world of moving devices.

The paper's "mobile environment" (Figure 1) is modelled as a bounded
2D plane on which each personal trusted device follows a mobility
model.  The radio medium queries the world for inter-device distances;
PeerHood's active monitoring reacts to devices crossing range
boundaries (Figure 5).
"""

from repro.mobility.geometry import Point, Rect, distance
from repro.mobility.models import (
    BusRoute,
    LinearCrossing,
    MobilityModel,
    PathFollower,
    RandomWalk,
    RandomWaypoint,
    Stationary,
)
from repro.mobility.grid import SpatialGrid
from repro.mobility.world import (
    MobileNode,
    MovementReport,
    World,
    spatial_index_enabled,
)

__all__ = [
    "BusRoute",
    "LinearCrossing",
    "MobileNode",
    "MobilityModel",
    "MovementReport",
    "PathFollower",
    "Point",
    "RandomWalk",
    "RandomWaypoint",
    "Rect",
    "SpatialGrid",
    "Stationary",
    "World",
    "distance",
    "spatial_index_enabled",
]
