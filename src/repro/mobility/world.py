"""The mobile world: nodes, positions and proximity queries.

Proximity queries are served by a uniform :class:`~repro.mobility.grid.
SpatialGrid` so ``nodes_within`` costs O(cell occupancy) instead of
O(N), and movement is reported *per node* (a :class:`MovementReport`)
so listeners such as the radio medium can invalidate incrementally
instead of dropping all memoized topology on every tick.

Setting the environment variable ``REPRO_SPATIAL_INDEX=0`` disables
the grid and falls back to brute-force linear scans with whole-world
notifications — kept for A/B benchmarking and as an oracle in tests.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from collections.abc import Callable, Iterator, Sequence
from typing import Any

from repro.mobility.geometry import Point, Rect, distance
from repro.mobility.grid import SpatialGrid
from repro.mobility.models import MobilityModel, Stationary
from repro.simenv import Environment, PeriodicTimer

#: Starting grid cell size; ``require_cell_size`` grows it to the
#: largest attached local-radio range (e.g. 60 m once WLAN attaches).
DEFAULT_CELL_SIZE = 25.0


class MobileNode:
    """A device's physical presence in the world."""

    def __init__(self, node_id: str, position: Point,
                 model: MobilityModel | None = None) -> None:
        self.node_id = node_id
        self.position = position
        self.model = model if model is not None else Stationary()

    def __repr__(self) -> str:
        return (f"MobileNode({self.node_id!r}, "
                f"({self.position.x:.1f}, {self.position.y:.1f}))")


class MovementReport:
    """What changed in one notification: which nodes, and how.

    ``moved`` lists every node whose position changed (``crossed`` is
    the subset that landed in a different grid cell); ``added`` and
    ``removed`` cover population changes.  Listeners that only care
    *that* something happened can ignore the payload — the legacy
    no-argument ``on_movement`` callbacks still fire alongside.
    """

    __slots__ = ("moved", "crossed", "added", "removed")

    def __init__(self, moved: tuple[str, ...] = (),
                 crossed: tuple[str, ...] = (),
                 added: tuple[str, ...] = (),
                 removed: tuple[str, ...] = ()) -> None:
        self.moved = moved
        self.crossed = crossed
        self.added = added
        self.removed = removed

    def changed_ids(self) -> tuple[str, ...]:
        """Every node id this report touches, deduplicated."""
        if not (self.added or self.removed):
            return self.moved
        seen = dict.fromkeys(self.moved)
        seen.update(dict.fromkeys(self.added))
        seen.update(dict.fromkeys(self.removed))
        return tuple(seen)

    def __repr__(self) -> str:
        return (f"MovementReport(moved={len(self.moved)}, "
                f"crossed={len(self.crossed)}, added={len(self.added)}, "
                f"removed={len(self.removed)})")


def spatial_index_enabled() -> bool:
    """Whether new worlds use the spatial grid (REPRO_SPATIAL_INDEX)."""
    return os.environ.get("REPRO_SPATIAL_INDEX", "1") != "0"


class World:
    """Bounded 2D plane holding every mobile node.

    The world ticks positions forward on a periodic timer and notifies
    movement listeners after each tick.  The radio
    :class:`~repro.radio.medium.Medium` is the primary listener: it
    re-derives link reachability from the new positions.

    Args:
        env: Simulation environment providing time and randomness.
        bounds: Simulated area; defaults to a 200 m x 200 m square —
            generous for the Bluetooth-scale neighbourhoods of the paper.
        tick: Seconds between position updates.
        cell_size: Initial spatial-grid cell edge; grown on demand by
            :meth:`require_cell_size`.  ``None`` picks the default.
    """

    def __init__(self, env: Environment, bounds: Rect | None = None,
                 tick: float = 0.5, cell_size: float | None = None) -> None:
        self.env = env
        self.bounds = bounds if bounds is not None else Rect(0.0, 0.0, 200.0, 200.0)
        self.tick = tick
        self._nodes: dict[str, MobileNode] = {}
        self._listeners: list[Callable[[], None]] = []
        self._report_listeners: list[Callable[[MovementReport], None]] = []
        self._grid: SpatialGrid | None = (
            SpatialGrid(cell_size if cell_size is not None else DEFAULT_CELL_SIZE)
            if spatial_index_enabled() else None)
        self._batch_depth = 0
        self._pending: dict[str, set[str]] = {
            "moved": set(), "crossed": set(), "added": set(), "removed": set()}
        self._timer = PeriodicTimer(env, tick, self._advance)
        self._last_tick_time = env.now

    @property
    def grid(self) -> SpatialGrid | None:
        """The backing spatial index (``None`` in brute-force mode)."""
        return self._grid

    # -- population -------------------------------------------------------

    def add_node(self, node_id: str, position: Point,
                 model: MobilityModel | None = None) -> MobileNode:
        """Place a new node; raises if the id already exists."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already in world")
        if not self.bounds.contains(position):
            position = self.bounds.clamp(position)
        node = MobileNode(node_id, position, model)
        self._nodes[node_id] = node
        if self._grid is not None:
            self._grid.insert(node_id, position)
        self._notify(MovementReport(added=(node_id,)))
        return node

    def remove_node(self, node_id: str) -> None:
        """Remove a node (device switched off / left the simulation)."""
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id!r} not in world")
        del self._nodes[node_id]
        if self._grid is not None:
            self._grid.remove(node_id)
        self._notify(MovementReport(removed=(node_id,)))

    def node(self, node_id: str) -> MobileNode:
        """Look up a node by id."""
        return self._nodes[node_id]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[MobileNode]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    # -- queries ---------------------------------------------------------

    def distance_between(self, a: str, b: str) -> float:
        """Metres between two nodes."""
        return distance(self._nodes[a].position, self._nodes[b].position)

    def nodes_within(self, node_id: str, radius: float) -> list[MobileNode]:
        """All *other* nodes within ``radius`` metres of ``node_id``.

        Sorted by node id so callers see a deterministic order
        regardless of which grid cells the neighbours came from.
        """
        nodes = self._nodes
        center = nodes[node_id].position
        cx, cy = center.x, center.y
        # Compare squared distances: one multiply beats a libm hypot
        # call per candidate, and this loop runs for every discovery
        # scan of every device.
        radius_sq = radius * radius
        found = []
        if self._grid is None:
            for node in nodes.values():
                position = node.position
                dx = position.x - cx
                dy = position.y - cy
                if dx * dx + dy * dy <= radius_sq and node.node_id != node_id:
                    found.append(node)
        else:
            for other_id in self._grid.candidates(center, radius):
                node = nodes[other_id]
                position = node.position
                dx = position.x - cx
                dy = position.y - cy
                if dx * dx + dy * dy <= radius_sq and other_id != node_id:
                    found.append(node)
        found.sort(key=lambda node: node.node_id)
        return found

    def positions_of(self, ids: Sequence[str]) -> tuple[Any, Any]:
        """Batch positions into float64 ``(xs, ys)`` arrays, ``ids`` order.

        Vector-sweep support (:mod:`repro.radio.sweep`); requires numpy.
        """
        from repro.radio import sweep
        return sweep.positions_array(self._nodes, ids)

    def region_stamp(self, node_id: str, radius: float) -> tuple[int, ...]:
        """Change stamp for the disc around ``node_id`` (see grid docs).

        Constant in brute-force mode — callers relying on stamps for
        cache validity must install a clear-all movement listener there.
        """
        if self._grid is None:
            return (0, 0)
        return self._grid.region_stamp(self._nodes[node_id].position, radius)

    # -- grid maintenance -------------------------------------------------

    def require_cell_size(self, range_m: float) -> None:
        """Grow the grid cell to at least ``range_m`` metres.

        Called by the radio medium when a local technology attaches, so
        the cell size tracks the largest radio range in use and a
        neighbour query touches a handful of cells.
        """
        grid = self._grid
        if grid is None or range_m <= grid.cell_size:
            return
        grid.rebuild(range_m, {node_id: node.position
                               for node_id, node in self._nodes.items()})

    def touch_node(self, node_id: str) -> None:
        """Mark a node changed without moving it (adapter toggles)."""
        if self._grid is not None and node_id in self._nodes:
            self._grid.touch(node_id)

    # -- movement ------------------------------------------------------------

    def move_node(self, node_id: str, position: Point) -> None:
        """Teleport a node (used by tests and scenario setup)."""
        node = self._nodes[node_id]
        node.position = self.bounds.clamp(position)
        crossed = True
        if self._grid is not None:
            crossed = self._grid.move(node_id, node.position)
        self._notify(MovementReport(
            moved=(node_id,), crossed=(node_id,) if crossed else ()))

    def on_movement(self, listener: Callable[[], None]) -> None:
        """Register a callback invoked after every position change."""
        self._listeners.append(listener)

    def on_moves(self, listener: Callable[[MovementReport], None]) -> None:
        """Register a callback receiving per-node movement reports."""
        self._report_listeners.append(listener)

    @contextmanager
    def batch(self) -> Iterator[World]:
        """Coalesce notifications across a bulk mutation.

        Populating a 1,024-node testbed fires one listener pass per
        ``add_node`` otherwise — O(N) passes over listeners that each
        do O(N) work downstream.  Inside ``with world.batch():`` all
        reports merge and listeners fire once on exit (and not at all
        when nothing changed).  Reentrant; only the outermost exit
        flushes.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self._flush_pending()

    def stop(self) -> None:
        """Stop the movement timer (ends the simulation's busy loop)."""
        self._timer.stop()

    def _advance(self) -> None:
        dt = self.env.now - self._last_tick_time
        self._last_tick_time = self.env.now
        if dt <= 0.0:
            return
        grid = self._grid
        bounds = self.bounds
        moved: list[str] = []
        crossed: list[str] = []
        for node in self._nodes.values():
            model = node.model
            if type(model) is Stationary:
                continue
            new_position = bounds.clamp(model.step(node.position, dt))
            if new_position != node.position:
                node.position = new_position
                moved.append(node.node_id)
                if grid is not None and grid.move(node.node_id, new_position):
                    crossed.append(node.node_id)
        if moved:
            self._notify(MovementReport(moved=tuple(moved),
                                        crossed=tuple(crossed)))

    def _notify(self, report: MovementReport) -> None:
        if self._batch_depth > 0:
            pending = self._pending
            pending["moved"].update(report.moved)
            pending["crossed"].update(report.crossed)
            pending["added"].update(report.added)
            pending["removed"].update(report.removed)
            return
        for listener in self._listeners:
            listener()
        for report_listener in self._report_listeners:
            report_listener(report)

    def _flush_pending(self) -> None:
        pending = self._pending
        if not (pending["moved"] or pending["crossed"] or pending["added"]
                or pending["removed"]):
            return
        report = MovementReport(moved=tuple(sorted(pending["moved"])),
                                crossed=tuple(sorted(pending["crossed"])),
                                added=tuple(sorted(pending["added"])),
                                removed=tuple(sorted(pending["removed"])))
        for bucket in pending.values():
            bucket.clear()
        self._notify(report)
