"""The mobile world: nodes, positions and proximity queries."""

from __future__ import annotations

from typing import Callable, Iterator

from repro.mobility.geometry import Point, Rect, distance
from repro.mobility.models import MobilityModel, Stationary
from repro.simenv import Environment, PeriodicTimer


class MobileNode:
    """A device's physical presence in the world."""

    def __init__(self, node_id: str, position: Point,
                 model: MobilityModel | None = None) -> None:
        self.node_id = node_id
        self.position = position
        self.model = model if model is not None else Stationary()

    def __repr__(self) -> str:
        return (f"MobileNode({self.node_id!r}, "
                f"({self.position.x:.1f}, {self.position.y:.1f}))")


class World:
    """Bounded 2D plane holding every mobile node.

    The world ticks positions forward on a periodic timer and notifies
    movement listeners after each tick.  The radio
    :class:`~repro.radio.medium.Medium` is the primary listener: it
    re-derives link reachability from the new positions.

    Args:
        env: Simulation environment providing time and randomness.
        bounds: Simulated area; defaults to a 200 m x 200 m square —
            generous for the Bluetooth-scale neighbourhoods of the paper.
        tick: Seconds between position updates.
    """

    def __init__(self, env: Environment, bounds: Rect | None = None,
                 tick: float = 0.5) -> None:
        self.env = env
        self.bounds = bounds if bounds is not None else Rect(0.0, 0.0, 200.0, 200.0)
        self.tick = tick
        self._nodes: dict[str, MobileNode] = {}
        self._listeners: list[Callable[[], None]] = []
        self._timer = PeriodicTimer(env, tick, self._advance)
        self._last_tick_time = env.now

    # -- population -------------------------------------------------------

    def add_node(self, node_id: str, position: Point,
                 model: MobilityModel | None = None) -> MobileNode:
        """Place a new node; raises if the id already exists."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already in world")
        if not self.bounds.contains(position):
            position = self.bounds.clamp(position)
        node = MobileNode(node_id, position, model)
        self._nodes[node_id] = node
        self._notify()
        return node

    def remove_node(self, node_id: str) -> None:
        """Remove a node (device switched off / left the simulation)."""
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id!r} not in world")
        del self._nodes[node_id]
        self._notify()

    def node(self, node_id: str) -> MobileNode:
        """Look up a node by id."""
        return self._nodes[node_id]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[MobileNode]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    # -- queries ---------------------------------------------------------

    def distance_between(self, a: str, b: str) -> float:
        """Metres between two nodes."""
        return distance(self._nodes[a].position, self._nodes[b].position)

    def nodes_within(self, node_id: str, radius: float) -> list[MobileNode]:
        """All *other* nodes within ``radius`` metres of ``node_id``."""
        center = self._nodes[node_id].position
        return [node for node in self._nodes.values()
                if node.node_id != node_id
                and distance(center, node.position) <= radius]

    # -- movement ------------------------------------------------------------

    def move_node(self, node_id: str, position: Point) -> None:
        """Teleport a node (used by tests and scenario setup)."""
        self._nodes[node_id].position = self.bounds.clamp(position)
        self._notify()

    def on_movement(self, listener: Callable[[], None]) -> None:
        """Register a callback invoked after every position change."""
        self._listeners.append(listener)

    def stop(self) -> None:
        """Stop the movement timer (ends the simulation's busy loop)."""
        self._timer.stop()

    def _advance(self) -> None:
        dt = self.env.now - self._last_tick_time
        self._last_tick_time = self.env.now
        if dt <= 0.0:
            return
        moved = False
        for node in self._nodes.values():
            new_position = node.model.step(node.position, dt)
            new_position = self.bounds.clamp(new_position)
            if new_position != node.position:
                node.position = new_position
                moved = True
        if moved:
            self._notify()

    def _notify(self) -> None:
        for listener in self._listeners:
            listener()
