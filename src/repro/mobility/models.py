"""Mobility models.

Each model answers one question: *where is the node after ``dt`` more
seconds, given where it is now?*  The world calls ``step`` on every
position-update tick.  Models are deliberately stateful objects rather
than pure functions because random-waypoint and path followers carry
leg state between ticks.

Models included:

* :class:`Stationary` — desktop PCs of the paper's testbed (Table 5).
* :class:`RandomWalk` — Brownian-style drift for crowd scenes.
* :class:`RandomWaypoint` — the classic ad-hoc-network evaluation model;
  pick a destination, walk there at a sampled speed, pause, repeat.
* :class:`PathFollower` — follow a fixed polyline (corridors, routes).
* :class:`BusRoute` — a shared :class:`PathFollower` loop for the
  "mobile community in a bus" scenario of §5.1.
* :class:`LinearCrossing` — walk a straight line through the area; used
  to reproduce Figure 5's enter-range / leave-range churn precisely.
"""

from __future__ import annotations

import math
from random import Random
from collections.abc import Sequence
from typing import Protocol

from repro.mobility.geometry import Point, Rect


class MobilityModel(Protocol):
    """Protocol every mobility model implements."""

    def step(self, position: Point, dt: float) -> Point:
        """Return the new position after ``dt`` seconds."""
        ...  # pragma: no cover - protocol stub


class Stationary:
    """A node that never moves (desktop PCs in the paper's testbed)."""

    def step(self, position: Point, dt: float) -> Point:
        """Return ``position`` unchanged."""
        return position


class RandomWalk:
    """Random direction changes with constant speed, clamped to bounds.

    Args:
        bounds: Area the node may not leave.
        speed: Metres per second.
        rng: Random stream (owned by the environment).
        turn_interval: Seconds between direction re-draws.
    """

    def __init__(self, bounds: Rect, speed: float, rng: Random,
                 turn_interval: float = 5.0) -> None:
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed!r}")
        self._bounds = bounds
        self._speed = speed
        self._rng = rng
        self._turn_interval = turn_interval
        self._heading = rng.uniform(0.0, 2.0 * math.pi)
        self._until_turn = turn_interval

    def step(self, position: Point, dt: float) -> Point:
        """Advance along the current heading, re-drawing it periodically."""
        self._until_turn -= dt
        if self._until_turn <= 0.0:
            self._heading = self._rng.uniform(0.0, 2.0 * math.pi)
            self._until_turn = self._turn_interval
        moved = position.offset(math.cos(self._heading) * self._speed * dt,
                                math.sin(self._heading) * self._speed * dt)
        clamped = self._bounds.clamp(moved)
        if clamped != moved:
            # Bounce off the wall by reversing heading.
            self._heading = (self._heading + math.pi) % (2.0 * math.pi)
        return clamped


class RandomWaypoint:
    """Random-waypoint mobility: walk to a random target, pause, repeat.

    Speeds are drawn uniformly from ``[min_speed, max_speed]`` per leg,
    pauses from ``[0, max_pause]`` — the standard parameterisation in
    the ad-hoc networking literature the thesis cites for dynamic group
    work (Hong & Gerla 2002).
    """

    def __init__(self, bounds: Rect, rng: Random, *,
                 min_speed: float = 0.5, max_speed: float = 1.5,
                 max_pause: float = 10.0) -> None:
        if not 0 <= min_speed <= max_speed:
            raise ValueError("need 0 <= min_speed <= max_speed")
        self._bounds = bounds
        self._rng = rng
        self._min_speed = min_speed
        self._max_speed = max_speed
        self._max_pause = max_pause
        self._target: Point | None = None
        self._speed = 0.0
        self._pause_left = 0.0

    def step(self, position: Point, dt: float) -> Point:
        """Advance one tick of walk-pause-walk behaviour."""
        if self._pause_left > 0.0:
            self._pause_left = max(0.0, self._pause_left - dt)
            return position
        if self._target is None:
            self._target = self._bounds.random_point(self._rng)
            self._speed = self._rng.uniform(self._min_speed, self._max_speed)
        new_position = position.moved_towards(self._target, self._speed * dt)
        if new_position == self._target:
            self._target = None
            self._pause_left = self._rng.uniform(0.0, self._max_pause)
        return new_position


class PathFollower:
    """Follow a polyline of waypoints at constant speed.

    Args:
        waypoints: At least two points defining the path.
        speed: Metres per second along the path.
        loop: Return to the first waypoint after the last and repeat.
    """

    def __init__(self, waypoints: Sequence[Point], speed: float,
                 loop: bool = False) -> None:
        if len(waypoints) < 2:
            raise ValueError("a path needs at least two waypoints")
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed!r}")
        self._waypoints = list(waypoints)
        self._speed = speed
        self._loop = loop
        self._next_index = 1

    @property
    def finished(self) -> bool:
        """True once a non-looping path has reached its final waypoint."""
        return not self._loop and self._next_index >= len(self._waypoints)

    def step(self, position: Point, dt: float) -> Point:
        """Advance ``speed * dt`` metres along the remaining path."""
        remaining = self._speed * dt
        while remaining > 0.0 and not self.finished:
            target = self._waypoints[self._next_index]
            new_position = position.moved_towards(target, remaining)
            travelled = math.hypot(new_position.x - position.x,
                                   new_position.y - position.y)
            remaining -= travelled
            position = new_position
            if position == target:
                self._next_index += 1
                if self._loop and self._next_index >= len(self._waypoints):
                    self._next_index = 0
            if travelled == 0.0 and position != target:
                break  # safety: no progress possible
        return position


class BusRoute(PathFollower):
    """A looping path at vehicle speed for the bus-community scenario.

    All passengers of one bus share a single :class:`BusRoute` instance
    plus a per-passenger fixed offset, so they move rigidly together —
    exactly the "instant mobile community" of §5.1.
    """

    def __init__(self, stops: Sequence[Point], speed: float = 8.0) -> None:
        super().__init__(stops, speed, loop=True)


class LinearCrossing:
    """Walk a straight line from ``start`` to ``end`` once, then stop.

    The deterministic workhorse of the Figure 5 churn experiments: with
    a known speed and radio range, the enter/leave times of the crossing
    node are exactly computable, so tests can assert PeerHood's
    monitoring callbacks fire at the right virtual times.
    """

    def __init__(self, start: Point, end: Point, speed: float) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed!r}")
        self.start = start
        self.end = end
        self._speed = speed
        self._done = False

    @property
    def finished(self) -> bool:
        """True once the node reached ``end``."""
        return self._done

    def step(self, position: Point, dt: float) -> Point:
        """Move towards ``end``; stop permanently on arrival."""
        if self._done:
            return position
        new_position = position.moved_towards(self.end, self._speed * dt)
        if new_position == self.end:
            self._done = True
        return new_position
