"""Command-line interface: run the headline experiments from a shell.

Usage::

    peerhood-community demo              # quickstart neighbourhood
    peerhood-community table8 [--trials N]
    peerhood-community msc FIGURE        # 11..17: render one paper MSC
    peerhood-community ablation NAME     # semantics | technology | interval
    peerhood-community overlay           # k-hop overlay discovery demo
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.eval.testbed import Testbed

    bed = Testbed(seed=args.seed)
    alice = bed.add_member("alice", ["football", "music"])
    bob = bed.add_member("bob", ["football", "movies"])
    carol = bed.add_member("carol", ["music", "movies"])
    bed.run(30.0)
    print("Dynamic groups after 30 simulated seconds:")
    for member in (alice, bob, carol):
        print(f"  {member.member_id}: {member.groups()}")
    members = bed.execute(alice.app.view_all_members())
    print(f"alice's member list: {[m['member_id'] for m in members]}")
    bed.stop()
    return 0


def _cmd_table8(args: argparse.Namespace) -> int:
    from repro.eval.table8 import format_table8, run_table8

    results = run_table8(seed=args.seed, trials=args.trials)
    print(format_table8(results))
    return 0


def _cmd_msc(args: argparse.Namespace) -> int:
    from repro.eval.mscfigures import render_figure

    print(render_figure(args.figure, seed=args.seed))
    return 0


def _cmd_overlay(args: argparse.Namespace) -> int:
    from repro.adhoc import NeighborGraph, OverlayGroupDiscovery, RelayNode
    from repro.eval.testbed import Testbed
    from repro.mobility import Point
    from repro.radio.standards import BLUETOOTH

    bed = Testbed(seed=args.seed, technologies=("bluetooth",))
    members = []
    for index in range(6):
        member = bed.add_member(f"n{index}", ["football"],
                                position=Point(60.0 + index * 8.0, 100.0))
        RelayNode(bed.env, member.device.stack, BLUETOOTH)
        members.append(member)
    bed.run(40.0)
    graph = NeighborGraph(bed.medium, "bluetooth")
    print("Overlay dynamic group discovery over a 6-device chain:")
    for k in (1, 2, 3, 5):
        overlay = OverlayGroupDiscovery(bed.env, members[0].device.stack,
                                        graph, BLUETOOTH,
                                        members[0].app.store)
        start = bed.env.now
        bed.execute(overlay.discover(k=k), timeout=1200.0)
        print(f"  k={k}: group size "
              f"{len(overlay.members_of('football'))}, "
              f"discovery {bed.env.now - start:.2f} s")
    bed.stop()
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    if args.name == "semantics":
        from repro.eval.ablations import run_semantics_ablation

        result = run_semantics_ablation(seed=args.seed)
        print(f"groups before teaching: {result.groups_before}")
        print(f"groups after teaching:  {result.groups_after}")
        print(f"merged group members:   {result.merged_members_after}")
    elif args.name == "technology":
        from repro.eval.ablations import run_technology_ablation

        for row in run_technology_ablation(seed=args.seed):
            print(f"{row.technology:10s} formation={row.formation_time_s:7.2f}s "
                  f"bytes={row.bytes_sent:6d} cost={row.cost:.4f}")
    elif args.name == "interval":
        from repro.eval.ablations import run_scan_interval_sweep

        for point in run_scan_interval_sweep(seed=args.seed):
            print(f"scan_interval={point.scan_interval_s:5.1f}s "
                  f"formation={point.formation_time_s:6.2f}s")
    else:
        print(f"unknown ablation {args.name!r}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="peerhood-community",
        description="Social networking on mobile environment on top of "
                    "PeerHood - reproduction CLI")
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed (default 0)")
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run the quickstart neighbourhood")
    demo.set_defaults(handler=_cmd_demo)

    table8 = commands.add_parser("table8", help="reproduce Table 8")
    table8.add_argument("--trials", type=int, default=3)
    table8.set_defaults(handler=_cmd_table8)

    msc = commands.add_parser("msc", help="render a paper MSC figure (11-17)")
    msc.add_argument("figure", type=int, choices=range(11, 18))
    msc.set_defaults(handler=_cmd_msc)

    ablation = commands.add_parser("ablation", help="run one ablation study")
    ablation.add_argument("name",
                          choices=("semantics", "technology", "interval"))
    ablation.set_defaults(handler=_cmd_ablation)

    overlay = commands.add_parser(
        "overlay", help="k-hop overlay group discovery demo (§6 future work)")
    overlay.set_defaults(handler=_cmd_overlay)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``peerhood-community`` script."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
