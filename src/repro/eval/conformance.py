"""Wire-transcript capture and comparison for transport conformance.

The conformance suite replays each script from
:mod:`repro.community.exchanges` through every transport backend and
captures the raw frames as seen from the client side.  This module
holds the pieces that are about *evidence*, not about driving:

* :class:`FrameRecord` / :class:`Transcript` — the captured wire
  bytes, in order, with direction;
* :func:`first_divergence` / :func:`render_diff` — locating and
  explaining the first frame where two backends disagreed;
* :func:`write_artifacts` — dumping the transcripts to disk so a CI
  failure uploads exactly what each backend put on the wire.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Where CI expects failure artifacts (uploaded by the workflow).
DEFAULT_ARTIFACT_DIR = Path("conformance-artifacts")

_PREVIEW_BYTES = 96


@dataclass(frozen=True)
class FrameRecord:
    """One frame on the wire, from the client's perspective.

    Attributes:
        direction: ``"send"`` (client to server) or ``"recv"``.
        data: The exact frame bytes, length prefix included.
    """

    direction: str
    data: bytes


@dataclass
class Transcript:
    """Ordered wire capture of one exchange on one backend."""

    backend: str
    exchange: str
    frames: list[FrameRecord] = field(default_factory=list)

    def record(self, direction: str, data: bytes) -> None:
        """Append one frame (tap callback for the transports)."""
        self.frames.append(FrameRecord(direction, data))

    @property
    def total_bytes(self) -> int:
        """Wire bytes across all captured frames."""
        return sum(len(frame.data) for frame in self.frames)

    def as_dict(self) -> dict:
        """JSON-ready dump (frame bytes hex-encoded)."""
        return {
            "backend": self.backend,
            "exchange": self.exchange,
            "frame_count": len(self.frames),
            "total_bytes": self.total_bytes,
            "frames": [{"direction": frame.direction,
                        "bytes": len(frame.data),
                        "hex": frame.data.hex()}
                       for frame in self.frames],
        }


def first_divergence(left: Transcript, right: Transcript) -> int | None:
    """Index of the first frame where the transcripts differ.

    ``None`` means byte-identical frame-for-frame; an index equal to
    the shorter length means one transcript is a strict prefix of the
    other.
    """
    for index, (ours, theirs) in enumerate(zip(left.frames, right.frames)):
        if ours.direction != theirs.direction or ours.data != theirs.data:
            return index
    if len(left.frames) != len(right.frames):
        return min(len(left.frames), len(right.frames))
    return None


def _preview(data: bytes) -> str:
    head = data[:_PREVIEW_BYTES]
    suffix = "..." if len(data) > _PREVIEW_BYTES else ""
    return f"{head.hex()}{suffix}"


def render_diff(left: Transcript, right: Transcript) -> str:
    """Human-readable explanation of the first transcript divergence."""
    index = first_divergence(left, right)
    if index is None:
        return (f"transcripts identical: {len(left.frames)} frames, "
                f"{left.total_bytes} bytes")
    lines = [
        f"transcripts diverge at frame {index} "
        f"({left.backend}: {len(left.frames)} frames / "
        f"{left.total_bytes} bytes, "
        f"{right.backend}: {len(right.frames)} frames / "
        f"{right.total_bytes} bytes)",
    ]
    for transcript in (left, right):
        if index < len(transcript.frames):
            frame = transcript.frames[index]
            lines.append(f"  {transcript.backend}: {frame.direction} "
                         f"{len(frame.data)}B {_preview(frame.data)}")
        else:
            lines.append(f"  {transcript.backend}: <no frame {index}>")
    return "\n".join(lines)


def write_artifacts(transcripts: list[Transcript],
                    directory: Path = DEFAULT_ARTIFACT_DIR) -> list[Path]:
    """Dump transcripts as JSON files; returns the written paths.

    Called by the conformance suite on assertion failure so CI can
    upload the evidence.
    """
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for transcript in transcripts:
        path = directory / f"{transcript.exchange}.{transcript.backend}.json"
        path.write_text(json.dumps(transcript.as_dict(), indent=2,
                                   sort_keys=True) + "\n")
        written.append(path)
    return written
