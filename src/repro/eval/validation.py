"""Calibration validation: how close is the reproduction to the paper?

Computes per-cell relative errors of a measured Table 8 against the
published one and checks the paper's structural claims.  Used by the
Table 8 bench, the validation tests, and for regenerating the
EXPERIMENTS.md comparison after recalibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.table8 import PAPER_TABLE8
from repro.sns.workflows import TaskTimes

TASK_FIELDS = ("search_s", "join_s", "member_list_s", "profile_s")


@dataclass(frozen=True)
class CellError:
    """One cell's deviation from the paper."""

    column: str
    task: str
    paper: float
    measured: float

    @property
    def relative(self) -> float | None:
        """Relative error; ``None`` for the paper's zero cells."""
        if self.paper == 0.0:
            return None
        return (self.measured - self.paper) / self.paper


@dataclass(frozen=True)
class ValidationReport:
    """Full comparison of a measured table against the paper."""

    cells: tuple[CellError, ...]
    shape_violations: tuple[str, ...]

    @property
    def max_abs_relative(self) -> float:
        """Worst |relative error| over non-zero cells."""
        errors = [abs(cell.relative) for cell in self.cells
                  if cell.relative is not None]
        return max(errors) if errors else 0.0

    @property
    def mean_abs_relative(self) -> float:
        """Mean |relative error| over non-zero cells."""
        errors = [abs(cell.relative) for cell in self.cells
                  if cell.relative is not None]
        return sum(errors) / len(errors) if errors else 0.0

    @property
    def shape_holds(self) -> bool:
        """Whether every structural claim of the paper held."""
        return not self.shape_violations


def validate_table8(measured: dict[str, TaskTimes],
                    paper: dict[str, TaskTimes] | None = None
                    ) -> ValidationReport:
    """Compare a measured Table 8 against the paper's."""
    paper = paper if paper is not None else PAPER_TABLE8
    cells: list[CellError] = []
    for column, measured_times in measured.items():
        if column not in paper:
            continue
        paper_times = paper[column]
        for task in TASK_FIELDS:
            cells.append(CellError(column, task,
                                   getattr(paper_times, task),
                                   getattr(measured_times, task)))

    violations: list[str] = []
    phc = measured.get("PeerHood Community")
    if phc is not None:
        if phc.join_s != 0.0:
            violations.append("PeerHood join time is not zero")
        for column, times in measured.items():
            if column != "PeerHood Community" and times.total_s <= phc.total_s:
                violations.append(f"PeerHood does not beat {column}")
    for site in ("Facebook", "HI5"):
        n810 = measured.get(f"{site} / Nokia N810")
        n95 = measured.get(f"{site} / Nokia N95")
        if n810 is not None and n95 is not None \
                and n95.total_s <= n810.total_s:
            violations.append(f"{site}: N95 not slower than N810")
    return ValidationReport(tuple(cells), tuple(violations))


def format_validation(report: ValidationReport) -> str:
    """Human-readable validation summary."""
    lines = [f"cells compared: {len(report.cells)}",
             f"mean |relative error| (non-zero cells): "
             f"{report.mean_abs_relative:.1%}",
             f"max  |relative error| (non-zero cells): "
             f"{report.max_abs_relative:.1%}"]
    scored = [(cell, relative) for cell in report.cells
              if (relative := cell.relative) is not None]
    worst = sorted(scored, key=lambda pair: -abs(pair[1]))[:3]
    for cell, relative in worst:
        lines.append(f"  worst: {cell.column} / {cell.task}: "
                     f"paper {cell.paper:.0f}s, measured "
                     f"{cell.measured:.0f}s ({relative:+.0%})")
    if report.shape_holds:
        lines.append("shape claims: all hold")
    else:
        lines.extend(f"SHAPE VIOLATION: {violation}"
                     for violation in report.shape_violations)
    return "\n".join(lines)
