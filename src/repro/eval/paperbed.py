"""The paper's test environment, as data and as a buildable testbed.

Tables 4 and 5 specify the software and hardware the reference
implementation ran on; Appendix 1 shows the room (two desktop PCs and
two laptops).  :func:`build_paper_testbed` recreates that room:
stationary desktop PCs and laptops within Bluetooth range, Bluetooth
only, PeerHood Community on all of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.testbed import MemberHandle, Testbed
from repro.mobility.geometry import Point


@dataclass(frozen=True)
class SoftwareSpec:
    """One row of Table 4."""

    software: str
    version: str


@dataclass(frozen=True)
class HardwareSpec:
    """One row of Table 5."""

    name: str
    processor: str
    memory_mb: float
    os: str
    bluetooth: str


#: Table 4, verbatim.
SOFTWARE_SPECS: tuple[SoftwareSpec, ...] = (
    SoftwareSpec("PeerHood", "Version 0.2"),
    SoftwareSpec("GNU C++ Compiler", "Version 4.2.3-2ubuntu7"),
)

#: Table 5, verbatim (the 3COM dongles served the desktop PCs).
HARDWARE_SPECS: tuple[HardwareSpec, ...] = (
    HardwareSpec("Desktop PC1", "AMD Athlon(tm) 64 Processor 3000+ MHZ",
                 1005.0, "Ubuntu (Release 8.04 (hardy))",
                 "Bluetooth(TM) 3COM(R) dongle"),
    HardwareSpec("Desktop PC2", "Intel(R) Pentium(R) III CPU 1200 MHZ",
                 757.5, "Ubuntu (Release 8.04 (hardy))",
                 "Bluetooth(TM) 3COM(R) dongle"),
    HardwareSpec("Laptop (IBM ThinkPad T40)",
                 "Intel(R) Pentium(R) M Processor 1600 MHZ",
                 1536.0, "Ubuntu (Release 7.04 (feisty))",
                 "Inbuilt Bluetooth(TM)"),
)


def build_paper_testbed(seed: int = 0, *, scan_interval: float = 10.0
                        ) -> tuple[Testbed, dict[str, MemberHandle]]:
    """Room 6604: PC1, PC2 and two laptops, Bluetooth only.

    Members carry the Football interest the paper tested with, plus
    per-member extras so non-shared groups exist too.  Returns the
    testbed and member handles keyed by short names.
    """
    bed = Testbed(seed=seed, technologies=("bluetooth",),
                  scan_interval=scan_interval)
    members = {
        "pc1": bed.add_member("pc1", ["football", "music"],
                              position=Point(100.0, 100.0)),
        "pc2": bed.add_member("pc2", ["football", "movies"],
                              position=Point(104.0, 100.0)),
        "t40": bed.add_member("t40", ["football", "music", "hiking"],
                              position=Point(100.0, 104.0)),
        "laptop2": bed.add_member("laptop2", ["movies", "hiking"],
                                  position=Point(104.0, 104.0)),
    }
    return bed, members
