"""Workload generators for the experiment benches."""

from __future__ import annotations

import math
from random import Random

from repro.eval.testbed import MemberHandle, Testbed
from repro.mobility.geometry import Point, Rect
from repro.mobility.models import RandomWalk

#: Interest pool for synthetic populations; overlaps are common enough
#: that neighbourhood-scale groups always form.
INTEREST_POOL = (
    "football", "music", "movies", "photography", "travel", "cooking",
    "gaming", "books", "hiking", "cycling", "tennis", "ice hockey",
)


def random_interests(rng: Random, minimum: int = 1, maximum: int = 4,
                     pool: tuple[str, ...] = INTEREST_POOL) -> list[str]:
    """A random interest set of 1-4 interests from the pool."""
    count = rng.randint(minimum, min(maximum, len(pool)))
    return rng.sample(pool, count)


def populate_neighborhood(bed: Testbed, count: int, *,
                          stream: str = "workload",
                          shared_interest: str | None = None,
                          radius: float = 8.0) -> list[MemberHandle]:
    """Add ``count`` members clustered inside Bluetooth range.

    Args:
        bed: Target testbed.
        count: Members to create (named ``m00``, ``m01``...).
        stream: Random stream name for interest draws.
        shared_interest: If set, every member additionally holds this
            interest so one guaranteed group spans everyone.
        radius: Cluster radius in metres.

    Returns the created member handles.
    """
    rng = bed.env.random.stream(stream)
    members = []
    center = Point(100.0, 100.0)
    for index in range(count):
        interests = random_interests(rng)
        if shared_interest and shared_interest not in interests:
            interests.append(shared_interest)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        distance = rng.uniform(0.0, radius)
        position = Point(center.x + distance * math.cos(angle),
                         center.y + distance * math.sin(angle))
        members.append(bed.add_member(f"m{index:02d}", interests,
                                      position=position))
    return members


#: Lattice spacing of the constant-density crowd in metres.  Inside
#: WLAN range (60 m) of the nearest handful of neighbours, outside
#: Bluetooth range of almost everyone — a festival lawn, not a meeting
#: room.  Sparse enough that a device's radio disc holds a small,
#: constant neighbourhood while the roster keeps growing with ``n``.
CROWD_PITCH_M = 50.0


def crowd_bounds(count: int, pitch: float = CROWD_PITCH_M) -> Rect:
    """Square bounds sized for ``count`` members at constant density.

    Side grows with sqrt(count), so doubling the crowd doubles the
    area and each device's neighbourhood stays the same size — the
    regime where per-device work should be O(1) and only quadratic
    bookkeeping shows up as superlinear wall time.
    """
    side = pitch * max(2, math.isqrt(max(1, count - 1)) + 1)
    return Rect(0.0, 0.0, side, side)


def populate_crowd(bed: Testbed, count: int, *,
                   stream: str = "crowd",
                   walker_fraction: float = 0.25,
                   walker_speed: float = 1.2,
                   shared_interest: str | None = None) -> list[MemberHandle]:
    """Add ``count`` members spread over the whole testbed at constant
    density, a fraction of them walking.

    Members land on a jittered square lattice filling ``bed``'s bounds
    (pair :func:`crowd_bounds` with the same ``count``).  Each member
    independently becomes a pedestrian-speed :class:`RandomWalk` walker
    with probability ``walker_fraction`` — enough churn that topology
    maintenance costs show, while most links survive between scans.

    Population runs inside ``world.batch()`` so listeners hear one
    coalesced report instead of ``count`` separate ones.

    Returns the created member handles (named ``m0000``, ``m0001``...).
    """
    rng = bed.env.random.stream(stream)
    bounds = bed.world.bounds
    columns = max(2, math.isqrt(max(1, count - 1)) + 1)
    pitch_x = bounds.width / columns
    pitch_y = bounds.height / columns
    members = []
    with bed.world.batch():
        for index in range(count):
            row, column = divmod(index, columns)
            position = Point(
                bounds.min_x + (column + 0.5 + rng.uniform(-0.3, 0.3)) * pitch_x,
                bounds.min_y + (row + 0.5 + rng.uniform(-0.3, 0.3)) * pitch_y)
            interests = random_interests(rng)
            if shared_interest and shared_interest not in interests:
                interests.append(shared_interest)
            model = None
            if rng.random() < walker_fraction:
                model = RandomWalk(bounds, walker_speed,
                                   bed.env.random.stream(f"{stream}.walk{index}"),
                                   turn_interval=8.0)
            members.append(bed.add_member(f"m{index:04d}", interests,
                                          position=position, model=model))
    return members
