"""Workload generators for the experiment benches."""

from __future__ import annotations

import math
from random import Random

from repro.eval.testbed import MemberHandle, Testbed
from repro.mobility.geometry import Point

#: Interest pool for synthetic populations; overlaps are common enough
#: that neighbourhood-scale groups always form.
INTEREST_POOL = (
    "football", "music", "movies", "photography", "travel", "cooking",
    "gaming", "books", "hiking", "cycling", "tennis", "ice hockey",
)


def random_interests(rng: Random, minimum: int = 1, maximum: int = 4,
                     pool: tuple[str, ...] = INTEREST_POOL) -> list[str]:
    """A random interest set of 1-4 interests from the pool."""
    count = rng.randint(minimum, min(maximum, len(pool)))
    return rng.sample(pool, count)


def populate_neighborhood(bed: Testbed, count: int, *,
                          stream: str = "workload",
                          shared_interest: str | None = None,
                          radius: float = 8.0) -> list[MemberHandle]:
    """Add ``count`` members clustered inside Bluetooth range.

    Args:
        bed: Target testbed.
        count: Members to create (named ``m00``, ``m01``...).
        stream: Random stream name for interest draws.
        shared_interest: If set, every member additionally holds this
            interest so one guaranteed group spans everyone.
        radius: Cluster radius in metres.

    Returns the created member handles.
    """
    rng = bed.env.random.stream(stream)
    members = []
    center = Point(100.0, 100.0)
    for index in range(count):
        interests = random_interests(rng)
        if shared_interest and shared_interest not in interests:
            interests.append(shared_interest)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        distance = rng.uniform(0.0, radius)
        position = Point(center.x + distance * math.cos(angle),
                         center.y + distance * math.sin(angle))
        members.append(bed.add_member(f"m{index:02d}", interests,
                                      position=position))
    return members
