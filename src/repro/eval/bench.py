"""Wall-clock benchmark subsystem (``repro.eval.bench``).

Everything else under ``repro.eval`` measures *simulated* seconds — the
paper's Table 8 and Figures 11-17 numbers.  This module measures what
the simulation costs the host CPU, so the repo finally has a wall-clock
performance trajectory: named scenarios, an events/sec kernel metric,
and a schema-versioned ``BENCH_v2.json`` that CI diffs against the
checked-in ``benchmarks/baseline.json``.

Scenarios cover the paths the ROADMAP's scaling work keeps hitting:
testbed boot, a mobile constant-density discovery crowd at
N = 4/16/64/256/1024 devices, the full Table 8 workflow, a ``PS_*``
request round-trip burst, a chunked file transfer, and a chaos replay
at the pinned seed 101.  The discovery family holds per-device density
constant (see :func:`repro.eval.workloads.populate_crowd`) so wall
time should grow *linearly* with N — any superlinear growth is
quadratic bookkeeping (linear proximity scans, whole-world cache
invalidation) showing through.

``run_bench(jobs=N)`` fans scenarios across worker processes; the
deterministic fields (``events_processed``, ``sim_seconds``) are
identical at any job count, only wall-clock fields vary.

Run via ``scripts/bench.py``; see the "Wall-clock performance" section
of EXPERIMENTS.md for baseline numbers.
"""

from __future__ import annotations

import gc
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from collections.abc import Callable

from repro.eval.parallel import parallel_map
from repro.eval.testbed import Testbed
from repro.eval.workloads import crowd_bounds, populate_crowd
from repro.net.faults import FaultConfig
from repro.net.retry import RetryPolicy
from repro.shard.partition import PARTITION_KINDS
from repro.shard.runner import (ShardedResult, ShardedRunner, ShardWorkload,
                                clustered_workload, crowd_workload)
from repro.simenv import events as _events

#: Bump when the JSON layout changes; consumers refuse unknown majors.
BENCH_SCHEMA = "repro.bench/v2"
BENCH_SCHEMA_VERSION = 2

#: Keys every per-scenario record carries.
SCENARIO_KEYS = ("wall_seconds", "events_processed", "events_per_sec",
                 "rss_mb", "sim_seconds")

#: Keys an ``--alloc`` record carries (under the ``"alloc"`` key).
ALLOC_KEYS = ("gc_collections", "gc_collected", "gc_uncollectable",
              "tracemalloc_peak_kb", "events_processed")

#: Scenarios whose baseline processed fewer events than this are
#: jitter-dominated — wall time is scheduler noise around milliseconds
#: of real work — and exempt from the relative regression gate (the
#: quick-mode chaos replay runs ~581 events and used to flake the 30%
#: gate on nothing).  A wide absolute guard still catches blowups.
MIN_GATED_EVENTS = 1000

#: Keys every report carries at the top level.
REPORT_KEYS = ("schema", "schema_version", "git_sha", "python",
               "platform", "quick", "calibration_seconds", "scenarios")


def _rss_mb() -> float:
    """Peak resident set size of this process in MiB."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalise to MiB.
    if sys.platform == "darwin":  # pragma: no cover
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def git_sha() -> str:
    """Current commit hash, or ``"unknown"`` outside a work tree."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def calibrate() -> float:
    """Seconds a fixed pure-python workload takes on this host.

    Stored in every report so regression checks can scale a baseline
    recorded on one machine to the speed of another (a 30%% wall-clock
    tolerance is meaningless across CI runner generations otherwise).
    """
    start = time.perf_counter()
    total = 0
    for i in range(400_000):
        total += i % 7
    assert total > 0
    return time.perf_counter() - start


# -- scenarios ---------------------------------------------------------------

#: Retry policy for the chaos replay — mirrors tests/chaos CHAOS_POLICY
#: so the bench exercises the same schedule shape CI pins.
_CHAOS_POLICY = RetryPolicy(max_attempts=4, base_delay_s=0.5,
                            max_delay_s=4.0, attempt_timeout_s=15.0,
                            budget_s=120.0)

_INTEREST_CYCLE = (["music", "biking"], ["music", "chess"],
                   ["biking", "chess"], ["music"])


def _populate(bed: Testbed, count: int) -> None:
    for index in range(count):
        bed.add_member(f"m{index:03d}",
                       list(_INTEREST_CYCLE[index % len(_INTEREST_CYCLE)]))


def _scenario_boot(quick: bool) -> float:
    bed = Testbed(seed=11)
    _populate(bed, 16)
    bed.run(1.0)  # first world tick: daemons spin up, timers arm
    bed.stop()
    return bed.env.now


def _discovery_round(n: int) -> Callable[[bool], float]:
    """A mobile constant-density crowd running active discovery.

    Density (not area) is held constant as ``n`` grows and a quarter of
    the crowd walks, so every tick moves nodes and every scan queries
    the neighbourhood — the workload where linear proximity scans and
    whole-world cache invalidation used to go quadratic.  The 1 s scan
    interval is PeerHood's active monitoring turned up to the rate the
    seamless-connectivity logic wants anyway.
    """
    def run(quick: bool) -> float:
        bed = Testbed(seed=11, bounds=crowd_bounds(n), scan_interval=1.0)
        populate_crowd(bed, n, shared_interest="music")
        # Fifteen scan rounds: every daemon completes repeated inquiry
        # + service-discovery + interest-probe rounds while walkers
        # churn the topology underneath it.
        bed.run(30.0)
        bed.stop()
        return bed.env.now
    return run


def _scenario_table8(quick: bool) -> float:
    from repro.eval.table8 import run_table8
    trials = 1 if quick else 3
    table = run_table8(seed=0, trials=trials)
    # Virtual seconds actually simulated: each trial of each column
    # plays its four tasks once, and TaskTimes.total_s is the per-trial
    # mean, so the grand total is the sum over columns times trials.
    return sum(times.total_s for times in table.values()) * trials


def _scenario_ps_roundtrip(quick: bool) -> float:
    bed = Testbed(seed=23)
    _populate(bed, 8)
    bed.run(30.0)
    alice = bed.members["m000"].app
    rounds = 40 if quick else 150
    for _ in range(rounds):
        members = bed.execute(alice.view_all_members())
        assert isinstance(members, list) and members
        profile = bed.execute(alice.view_member_profile("m001"))
        assert profile is not None
    bed.stop()
    return bed.env.now


def _scenario_file_transfer(quick: bool) -> float:
    bed = Testbed(seed=31)
    _populate(bed, 2)
    size = (1 if quick else 4) * 1024 * 1024
    bed.members["m001"].app.accept_trusted("m000")
    bed.members["m001"].app.share_file("payload.bin", size)
    bed.run(30.0)
    alice = bed.members["m000"].app
    outcome = bed.execute(alice.download_file("m001", "payload.bin"))
    assert getattr(outcome, "complete", False), "fault-free download failed"
    bed.stop()
    return bed.env.now


def _scenario_chaos_replay(quick: bool) -> float:
    bed = Testbed(seed=101)
    names = ("alice", "bob", "carol", "dave")
    for name, interests in zip(names, _INTEREST_CYCLE, strict=True):
        bed.add_member(name, list(interests), retry_policy=_CHAOS_POLICY)
    bed.members["bob"].app.accept_trusted("alice")
    bed.members["bob"].app.share_file("mixtape.mp3", 96 * 1024)
    bed.run(30.0)
    bed.enable_faults(FaultConfig.chaos(0.2))
    alice = bed.members["alice"].app
    bed.execute(alice.view_all_members())
    bed.execute(alice.view_interest_list())
    bed.execute(alice.view_member_profile("bob"))
    bed.execute(alice.comment_profile("bob", "nice mix"))
    bed.execute(alice.view_trusted_friends("bob"))
    bed.execute(alice.view_shared_content("bob"))
    bed.execute(alice.send_message("bob", "hi", "hello"))
    bed.disable_faults()
    bed.run(60.0 if quick else 180.0)  # post-chaos convergence healing
    bed.stop()
    return bed.env.now


#: Ordered scenario registry: name -> callable(quick) -> sim seconds.
SCENARIOS: dict[str, Callable[[bool], float]] = {
    "testbed_boot": _scenario_boot,
    "discovery_n4": _discovery_round(4),
    "discovery_n16": _discovery_round(16),
    "discovery_n64": _discovery_round(64),
    "discovery_n256": _discovery_round(256),
    "discovery_n1024": _discovery_round(1024),
    "table8_workflow": _scenario_table8,
    "ps_roundtrip": _scenario_ps_roundtrip,
    "file_transfer": _scenario_file_transfer,
    "chaos_replay_101": _scenario_chaos_replay,
}

#: Sharded-engine workloads, selected by ``run_bench(..., shards=N)``.
#: The discovery family mirrors the legacy scenarios' crowd geometry;
#: ``discovery_n100k`` and the stretch ``city_n1M`` exist only here —
#: they are what the sharded engine is *for* and never run by default
#: (too heavy for the blocking quick-bench path; the CI
#: ``sharded-equivalence`` job runs n100k explicitly).  Scenario names
#: shared with :data:`SCENARIOS` run the same crowd through the shard
#: kernel instead of the full PS_* testbed, so compare ``--shards``
#: runs only against other ``--shards`` runs.
SHARDED_SCENARIOS: dict[str, ShardWorkload] = {
    "discovery_n4": crowd_workload(4, seed=11, sim_seconds=30.0),
    "discovery_n16": crowd_workload(16, seed=11, sim_seconds=30.0),
    "discovery_n64": crowd_workload(64, seed=11, sim_seconds=30.0),
    "discovery_n256": crowd_workload(256, seed=11, sim_seconds=30.0),
    "discovery_n1024": crowd_workload(1024, seed=11, sim_seconds=30.0),
    "discovery_n100k": crowd_workload(100_000, seed=11, sim_seconds=12.0),
    "city_n1M": crowd_workload(1_000_000, seed=11, sim_seconds=4.0,
                               scan_interval=2.0, window=2.0),
    # Clustered (hotspot) variants: the adversarial case for the strip
    # partition.  The hotspots line up along a vertical "main street"
    # (tight horizontal spread, wide vertical spread), so one strip
    # does nearly all the scan work while a 2D tiling can still
    # separate the clusters by row.  The 1 s window gives the
    # rebalancer (one window of loads + one window of adoption lag)
    # time to level the map while most scan rounds are still ahead.
    # ``flash_city_n1M`` adds drift: the hotspots themselves migrate
    # across the map (a moving flash crowd), so no static assignment
    # stays good and the rebalancer has to keep up.
    # (Seed 13, not 11: seed 11 happens to park the main street dead
    # on a strip boundary, halving the very imbalance these scenarios
    # exist to exhibit.)
    "crowd_clustered_n256": clustered_workload(256, seed=13,
                                               sim_seconds=30.0,
                                               clusters=4,
                                               center_spread=0.05,
                                               center_spread_y=0.3,
                                               scan_interval=2.0,
                                               window=1.0),
    "crowd_clustered_n100k": clustered_workload(100_000, seed=13,
                                                sim_seconds=16.0,
                                                clusters=4,
                                                center_spread=0.05,
                                                center_spread_y=0.3,
                                                scan_interval=2.0,
                                                window=1.0),
    "flash_city_n1M": clustered_workload(1_000_000, seed=13,
                                         sim_seconds=4.0,
                                         clusters=4,
                                         center_spread=0.05,
                                         center_spread_y=0.3,
                                         scan_interval=2.0, window=1.0,
                                         drift_speed=3.0),
}


# -- running ------------------------------------------------------------------


@dataclass
class ScenarioResult:
    """One scenario's wall-clock measurement."""

    scenario: str
    wall_seconds: float
    events_processed: int
    events_per_sec: float
    rss_mb: float
    sim_seconds: float
    alloc: dict | None = None
    #: Shard-engine metrics (partition kind, imbalance factor, tiles
    #: migrated, critical path); ``None`` for unsharded scenarios.
    sharded: dict | None = None

    def as_dict(self) -> dict:
        record = {"wall_seconds": self.wall_seconds,
                  "events_processed": self.events_processed,
                  "events_per_sec": self.events_per_sec,
                  "rss_mb": self.rss_mb,
                  "sim_seconds": self.sim_seconds}
        if self.alloc is not None:
            record["alloc"] = self.alloc
        if self.sharded is not None:
            record["sharded"] = self.sharded
        return record


def measure_alloc(fn: Callable[[bool], float], quick: bool) -> dict:
    """Allocation profile of one instrumented scenario pass.

    Runs the scenario once more with the cyclic collector *enabled*
    (so ``gc.get_stats()`` deltas mean something) and tracemalloc
    tracing every allocation.  Tracing costs roughly 2x wall clock,
    which is why this is a separate pass and never contaminates the
    timed repeats.  Keys: :data:`ALLOC_KEYS`.
    """
    import tracemalloc
    gc.collect()
    before = gc.get_stats()
    events_before = _events.events_popped_global
    tracemalloc.start()
    try:
        fn(quick)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    after = gc.get_stats()

    def delta(key: str) -> int:
        return sum(a[key] - b[key]
                   for a, b in zip(after, before, strict=True))

    return {"gc_collections": delta("collections"),
            "gc_collected": delta("collected"),
            "gc_uncollectable": delta("uncollectable"),
            "tracemalloc_peak_kb": round(peak / 1024.0, 1),
            "events_processed": _events.events_popped_global - events_before}


def run_scenario(name: str, *, quick: bool = False,
                 repeats: int | None = None,
                 alloc: bool = False) -> ScenarioResult:
    """Time one named scenario; best-of-``repeats`` wall clock.

    ``alloc=True`` appends one extra instrumented pass (see
    :func:`measure_alloc`) and attaches its profile to the record.
    """
    fn = SCENARIOS[name]
    if repeats is None:
        repeats = 2 if quick else 3
    best_wall = float("inf")
    best_events = 0
    sim_seconds = 0.0
    for _ in range(repeats):
        # Collect garbage left by earlier scenarios/repeats so each
        # measurement starts from a quiet heap, then keep the cyclic
        # collector off inside the timed region (timeit/pyperf's
        # policy): collection pauses scale with *heap size*, so they
        # charge the 1,024-device scenarios superlinearly for work
        # that is the host collector's, not the simulation's.
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        before = _events.events_popped_global
        start = time.perf_counter()
        try:
            sim_seconds = fn(quick)
        finally:
            if gc_was_enabled:
                gc.enable()
        wall = time.perf_counter() - start
        events = _events.events_popped_global - before
        if wall < best_wall:
            best_wall, best_events = wall, events
    rate = best_events / best_wall if best_wall > 0 else 0.0
    return ScenarioResult(scenario=name, wall_seconds=best_wall,
                          events_processed=best_events,
                          events_per_sec=rate, rss_mb=_rss_mb(),
                          sim_seconds=sim_seconds,
                          alloc=measure_alloc(fn, quick) if alloc else None)


def run_sharded_scenario(name: str, *, shards: int,
                         collect_logs: bool = False,
                         processes: bool | None = None,
                         partition: str = "strip",
                         rebalance: bool = False,
                         alloc: bool = False,
                         ) -> tuple[ScenarioResult, ShardedResult]:
    """Run one sharded-engine scenario and time it.

    Returns both the wall-clock record (``events_processed`` counts
    *device-attributable* events — walker moves, scans, sightings —
    which are shard-count-invariant by the determinism contract) and
    the full :class:`ShardedResult` for equivalence checking.  One
    repeat: the deterministic fields cannot vary, and the expensive
    scenarios are exactly the ones repeats would punish.

    The record's ``sharded`` sub-dict carries the load-quality figures
    the tile-partition work is judged by: the imbalance factor, the
    tiles migrated by the rebalancer, and the critical path — the sum
    over windows of the slowest shard's busy seconds, i.e. the wall
    clock an ideal one-core-per-shard host would need.  On a host with
    fewer cores than shards, ``critical_path_events_per_sec`` (not the
    serialised ``events_per_sec``) is the figure that reflects the
    partition's parallel quality.

    ``alloc=True`` appends one extra pass with per-shard gc/tracemalloc
    accounting *inside each worker* (the timed run never carries that
    overhead) and attaches the per-shard profiles to the record.
    """
    workload = SHARDED_SCENARIOS[name]
    runner = ShardedRunner(workload, shards, processes=processes,
                           collect_logs=collect_logs, partition=partition,
                           rebalance=rebalance)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    start = time.perf_counter()
    try:
        outcome = runner.run()
    finally:
        if gc_was_enabled:
            gc.enable()
    wall = time.perf_counter() - start
    rate = outcome.events / wall if wall > 0 else 0.0
    critical = outcome.critical_path_seconds
    critical_rate = outcome.events / critical if critical > 0 else 0.0
    sharded = {"shards": shards,
               "partition": outcome.partition,
               "tiles": outcome.tiles,
               "rebalance": rebalance,
               "rebalances": outcome.rebalances,
               "tiles_migrated": outcome.tiles_migrated,
               "imbalance_factor": round(outcome.imbalance_factor, 4),
               "critical_path_seconds": critical,
               "critical_path_events_per_sec": critical_rate,
               "migrations": outcome.migrations,
               "windows": outcome.windows,
               "ghost_peak": outcome.ghost_peak}
    alloc_record = None
    if alloc:
        probe = ShardedRunner(workload, shards, processes=processes,
                              collect_logs=collect_logs,
                              partition=partition, rebalance=rebalance,
                              measure_alloc=True).run()
        per_shard = probe.per_shard_alloc or {}
        alloc_record = {
            "per_shard": {str(shard): dict(profile)
                          for shard, profile in sorted(per_shard.items())},
            "tracemalloc_peak_kb": max(
                (profile["tracemalloc_peak_kb"]
                 for profile in per_shard.values()), default=0),
            "events_processed": probe.events}
    result = ScenarioResult(scenario=name, wall_seconds=wall,
                            events_processed=outcome.events,
                            events_per_sec=rate,
                            rss_mb=max(_rss_mb(), outcome.worker_rss_mb),
                            sim_seconds=outcome.sim_seconds,
                            alloc=alloc_record,
                            sharded=sharded)
    return result, outcome


def _scenario_task(task: tuple[str, bool, int | None, bool]) -> ScenarioResult:
    """Picklable per-scenario unit for the parallel runner."""
    name, quick, repeats, alloc = task
    return run_scenario(name, quick=quick, repeats=repeats, alloc=alloc)


def run_bench(*, quick: bool = False,
              scenarios: list[str] | None = None,
              repeats: int | None = None,
              jobs: int = 1,
              shards: int | None = None,
              partition: str = "strip",
              rebalance: bool = False,
              alloc: bool = False,
              progress: Callable[[str, ScenarioResult], None] | None = None,
              ) -> dict:
    """Run scenarios and return the ``BENCH_v2.json`` report dict.

    ``jobs > 1`` fans scenarios across worker processes.  Scenario
    results merge in registry order and the simulations themselves are
    seed-deterministic, so ``events_processed`` and ``sim_seconds``
    are identical to a serial run; wall-clock fields are whatever the
    (now contended) host delivers, so parallel runs suit correctness
    smoke and sweep fan-out, not regression timing.

    ``shards=N`` routes every scenario with a :data:`SHARDED_SCENARIOS`
    workload through the sharded single-world engine on ``N`` region
    shards (other scenarios run unchanged — sharding does not apply to
    them, so they are trivially identical at any shard count).  The
    deterministic fields are shard-count-invariant; only wall-clock
    fields change with ``N``.  Mutually exclusive with ``jobs > 1``:
    shard workers already use the host's cores.  ``partition`` selects
    the region geometry (``strip`` or ``tile``) and ``rebalance=True``
    lets the coordinator reassign tiles between shards at window edges
    — both only meaningful with ``shards``.

    ``alloc=True`` adds an ``"alloc"`` sub-record to every scenario:
    :func:`measure_alloc` gc/tracemalloc deltas from one extra
    instrumented pass.  Sharded scenarios self-instrument inside each
    worker process and report *per-shard* profiles.
    """
    if partition not in PARTITION_KINDS:
        raise ValueError(f"unknown partition {partition!r}; "
                         f"expected one of {PARTITION_KINDS}")
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        if jobs > 1:
            raise ValueError("--shards and --jobs both multiply processes; "
                             "use one or the other")
    elif partition != "strip" or rebalance:
        raise ValueError("--partition/--rebalance only apply to sharded "
                         "runs; pass --shards N")
    known = set(SCENARIOS)
    if shards is not None:
        known |= set(SHARDED_SCENARIOS)
    names = list(SCENARIOS) if scenarios is None else scenarios
    unknown = [name for name in names if name not in known]
    if unknown:
        hint = ("" if shards is not None else
                " (sharded-only scenarios need --shards N)")
        raise KeyError(f"unknown scenarios {unknown}; "
                       f"known: {sorted(known)}{hint}")
    report: dict = {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "calibration_seconds": calibrate(),
        "scenarios": {},
    }
    if shards is not None:
        report["shards"] = shards
        report["partition"] = partition
        report["rebalance"] = rebalance
        for name in names:
            if name in SHARDED_SCENARIOS:
                result, _ = run_sharded_scenario(
                    name, shards=shards, partition=partition,
                    rebalance=rebalance, alloc=alloc)
            else:
                result = run_scenario(name, quick=quick, repeats=repeats,
                                      alloc=alloc)
            record = result.as_dict()
            if name in SHARDED_SCENARIOS:
                record["shards"] = shards
            report["scenarios"][name] = record
            if progress is not None:
                progress(name, result)
    elif jobs <= 1:
        for name in names:
            result = run_scenario(name, quick=quick, repeats=repeats,
                                  alloc=alloc)
            report["scenarios"][name] = result.as_dict()
            if progress is not None:
                progress(name, result)
    else:
        tasks = [(name, quick, repeats, alloc) for name in names]
        for result in parallel_map(_scenario_task, tasks, jobs=jobs):
            report["scenarios"][result.scenario] = result.as_dict()
            if progress is not None:
                progress(result.scenario, result)
    return report


# -- regression checking -------------------------------------------------------


def compare_reports(current: dict, baseline: dict, *,
                    tolerance: float = 0.30,
                    slack_seconds: float = 0.05,
                    min_events: int = MIN_GATED_EVENTS) -> list[str]:
    """Regression messages comparing ``current`` against ``baseline``.

    A scenario regresses when its wall time exceeds the baseline's by
    more than ``tolerance`` after scaling for host speed (ratio of the
    two calibration workloads, clamped so a wildly different host
    cannot mask — or fabricate — a regression).  ``slack_seconds`` of
    absolute headroom keeps millisecond-scale scenarios from tripping
    the relative gate on scheduler jitter.  Scenarios whose baseline
    processed fewer than ``min_events`` events are jitter-dominated
    and bypass the relative gate entirely; they keep a wide absolute
    guard (4x host-scaled wall + 1 s) so a genuine order-of-magnitude
    blowup still fails.  Returns ``[]`` when everything is within
    tolerance.
    """
    problems: list[str] = []
    if baseline.get("schema_version") != BENCH_SCHEMA_VERSION:
        return [f"baseline schema_version "
                f"{baseline.get('schema_version')!r} != "
                f"{BENCH_SCHEMA_VERSION} — regenerate the baseline"]
    base_cal = float(baseline.get("calibration_seconds") or 0.0)
    cur_cal = float(current.get("calibration_seconds") or 0.0)
    scale = 1.0
    if base_cal > 0 and cur_cal > 0:
        scale = min(4.0, max(0.25, cur_cal / base_cal))
    for name, base in baseline.get("scenarios", {}).items():
        mine = current.get("scenarios", {}).get(name)
        if mine is None:
            problems.append(f"{name}: present in baseline but not run")
            continue
        if int(base.get("events_processed") or 0) < min_events:
            guard = float(base["wall_seconds"]) * scale * 4.0 + 1.0
            if float(mine["wall_seconds"]) > guard:
                problems.append(
                    f"{name}: wall {mine['wall_seconds']:.3f}s blows the "
                    f"jitter-exempt guard {guard:.3f}s (baseline "
                    f"{base['wall_seconds']:.3f}s at "
                    f"{base['events_processed']} events < {min_events})")
            continue
        allowed = (float(base["wall_seconds"]) * scale * (1.0 + tolerance)
                   + slack_seconds)
        if float(mine["wall_seconds"]) > allowed:
            problems.append(
                f"{name}: wall {mine['wall_seconds']:.3f}s exceeds "
                f"baseline {base['wall_seconds']:.3f}s "
                f"(host-scaled limit {allowed:.3f}s, "
                f"events/sec {mine['events_per_sec']:.0f} "
                f"vs baseline {base['events_per_sec']:.0f})")
    return problems
