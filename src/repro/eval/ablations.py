"""Ablation experiments for the design choices DESIGN.md calls out.

Three studies the thesis motivates but does not run:

* **Semantics** (§5.2.6 / §6): how many spuriously-split groups does
  semantic teaching merge, and what does membership look like after?
* **Technology choice** (§5.1): group-formation latency over
  Bluetooth vs WLAN vs GPRS, plus the data cost of each.
* **Scan interval** (§6 "performance testing during the dynamic group
  discovery"): how the PHD discovery period trades freshness against
  formation latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.testbed import Testbed
from repro.mobility.geometry import Point


@dataclass(frozen=True)
class SemanticsResult:
    """Before/after picture of the biking-vs-cycling experiment."""

    groups_before: tuple[str, ...]
    groups_after: tuple[str, ...]
    biking_members_before: tuple[str, ...]
    merged_members_after: tuple[str, ...]


def run_semantics_ablation(seed: int = 0) -> SemanticsResult:
    """§5.2.6's exact failure case, then the future-work fix.

    Three members: one says "biking", one says "cycling", one says
    both-ish ("biking").  Without semantics the group splits; after
    ``teach_semantics("biking", "cycling")`` one merged group remains.
    """
    bed = Testbed(seed=seed, semantic=True, technologies=("bluetooth",))
    rider_a = bed.add_member("ann", ["biking", "music"])
    bed.add_member("ben", ["cycling", "music"])
    bed.add_member("cat", ["biking", "movies"])
    bed.run(40.0)

    engine = rider_a.app.engine
    groups_before = tuple(engine.group_names())
    biking_before = tuple(engine.members_of("biking"))

    engine.teach_semantics("biking", "cycling")
    groups_after = tuple(engine.group_names())
    merged_after = tuple(engine.members_of("biking"))
    bed.stop()
    return SemanticsResult(groups_before, groups_after,
                           biking_before, merged_after)


@dataclass(frozen=True)
class TechnologyResult:
    """Formation latency and cost for one technology."""

    technology: str
    formation_time_s: float
    bytes_sent: int
    cost: float


def run_technology_ablation(seed: int = 0) -> list[TechnologyResult]:
    """Group formation over each single technology (§5.1's cost claim)."""
    results = []
    for technology in ("bluetooth", "wlan", "gprs"):
        bed = Testbed(seed=seed, technologies=(technology,))
        observer = bed.add_member("alice", ["football"])
        bed.add_member("bob", ["football"])
        start = bed.env.now
        while "football" not in observer.app.my_groups():
            if not bed.env.step():
                raise RuntimeError(f"no group formed over {technology}")
            if bed.env.now - start > 300.0:
                raise RuntimeError(f"{technology}: formation took > 300 s")
        formation = bed.env.now - start
        adapters = bed.medium.adapters_of("alice") + bed.medium.adapters_of("bob")
        sent = sum(adapter.bytes_sent for adapter in adapters)
        cost = sum(adapter.cost_incurred for adapter in adapters)
        if technology == "gprs":
            cost += bed.gateway.total_cost()
        bed.stop()
        results.append(TechnologyResult(technology, formation, sent, cost))
    return results


@dataclass(frozen=True)
class ScanIntervalPoint:
    """One point of the scan-interval sweep."""

    scan_interval_s: float
    formation_time_s: float
    scans_performed: int


def run_scan_interval_sweep(intervals: tuple[float, ...] = (2.0, 5.0, 10.0,
                                                            20.0, 40.0),
                            seed: int = 0) -> list[ScanIntervalPoint]:
    """Formation latency of a late-arriving peer vs discovery period.

    The peer appears just *after* the observer's first scan finished —
    in the idle window before the next periodic scan — so that next
    scan is what finds it, making the interval the dominant term.
    That is the trade-off §6 asks to quantify.
    """
    points = []
    for interval in intervals:
        bed = Testbed(seed=seed, technologies=("bluetooth",),
                      scan_interval=interval)
        observer = bed.add_member("alice", ["football"],
                                  position=Point(100.0, 100.0))
        # The first (empty) inquiry lasts at most ~5.8 s; 6.0 s lands in
        # the idle window for every interval in the sweep.
        bed.run(6.0)
        arrival = bed.env.now
        bed.add_member("bob", ["football"], position=Point(103.0, 100.0))
        while "football" not in observer.app.my_groups():
            if not bed.env.step():
                raise RuntimeError("no group formed")
            if bed.env.now - arrival > 600.0:
                raise RuntimeError("formation took > 600 s")
        plugin = observer.device.daemon.plugins["bluetooth"]
        points.append(ScanIntervalPoint(interval, bed.env.now - arrival,
                                        plugin.scan_count))
        bed.stop()
    return points
