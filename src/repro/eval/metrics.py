"""Churn and discovery metrics for dynamic-group experiments.

§6 names "performance testing during the dynamic group discovery ...
in order to analyze the efficiency of such dynamic group discovery"
as future work.  This module computes the statistics that analysis
needs from data the system already records: group membership history
(:class:`~repro.community.groups.MembershipEvent`) and the engine's
probe log.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.community.discovery import DynamicGroupEngine
from repro.community.groups import Group
from repro.net.retry import RetryCounters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.community.app import CommunityApp
    from repro.eval.testbed import Testbed
    from repro.net.faults import FaultInjector
    from repro.peerhood.daemon import PeerHoodDaemon


@dataclass(frozen=True)
class GroupChurnStats:
    """Membership-churn statistics of one group.

    Attributes:
        interest: Group name.
        joins / leaves: Event counts.
        unique_members: Distinct members ever seen.
        peak_size: Largest simultaneous membership.
        mean_stay_s: Mean membership duration across completed stays.
    """

    interest: str
    joins: int
    leaves: int
    unique_members: int
    peak_size: int
    mean_stay_s: float | None


def churn_stats(group: Group, now: float | None = None) -> GroupChurnStats:
    """Compute churn statistics from a group's membership history.

    Open-ended stays (members still present) are excluded from
    ``mean_stay_s`` unless ``now`` is given, in which case they are
    truncated at ``now``.
    """
    joins = leaves = 0
    current: dict[str, float] = {}
    stays: list[float] = []
    size = peak = 0
    seen: set[str] = set()
    for event in group.history:
        seen.add(event.member_id)
        if event.joined:
            joins += 1
            size += 1
            peak = max(peak, size)
            current[event.member_id] = event.time
        else:
            leaves += 1
            size -= 1
            joined_at = current.pop(event.member_id, None)
            if joined_at is not None:
                stays.append(event.time - joined_at)
    if now is not None:
        stays.extend(now - joined_at for joined_at in current.values())
    mean_stay = sum(stays) / len(stays) if stays else None
    return GroupChurnStats(group.interest, joins, leaves, len(seen), peak,
                           mean_stay)


@dataclass(frozen=True)
class DiscoveryStats:
    """Probe-latency statistics of one engine.

    Attributes:
        probes: Completed interest probes.
        mean_probe_s / max_probe_s: Probe durations (connect + request
            + reply), excluding the radio scan that preceded them.
        matched_probes: Probes that produced at least one group match.
    """

    probes: int
    mean_probe_s: float | None
    max_probe_s: float | None
    matched_probes: int


def discovery_stats(engine: DynamicGroupEngine) -> DiscoveryStats:
    """Summarise an engine's probe log."""
    durations = [record.finished_at - record.started_at
                 for record in engine.probe_log]
    matched = sum(1 for record in engine.probe_log if record.matched)
    if not durations:
        return DiscoveryStats(0, None, None, 0)
    return DiscoveryStats(len(durations),
                          sum(durations) / len(durations),
                          max(durations), matched)


def summarize_engine(engine: DynamicGroupEngine,
                     now: float | None = None) -> dict:
    """One dict with discovery stats plus per-group churn stats."""
    return {
        "discovery": discovery_stats(engine),
        "groups": {name: churn_stats(group, now)
                   for name, group in engine.groups.items()},
    }


# -- fault / retry accounting -------------------------------------------------

def fault_retry_summary(apps: Iterable[CommunityApp], *,
                        injector: FaultInjector | None = None,
                        daemons: Iterable[PeerHoodDaemon] = ()) -> dict:
    """Aggregate fault-injection and retry activity across a run.

    Folds every community app's client and downloader
    :class:`~repro.net.retry.RetryCounters` into one neighbourhood-wide
    tally, adds server-side rejection counts, the daemons' flap-recovery
    work and (when an injector is given) the injected-fault totals.
    The result is a plain nested dict, JSON-ready for chaos reports.
    """
    client = RetryCounters()
    transfer = RetryCounters()
    bad_requests = 0
    send_failures = 0
    for app in apps:
        client.merge(app.client.retry_counters)
        transfer.merge(app.downloader.retry_counters)
        bad_requests += app.server.bad_requests
        send_failures += app.server.send_failures
    rediscovery_probes = 0
    stale_dropped = 0
    for daemon in daemons:
        rediscovery_probes += daemon.rediscovery_probes
        stale_dropped += daemon.stale_connections_dropped
    summary = {
        "client": client.as_dict(),
        "transfer": transfer.as_dict(),
        "server": {
            "bad_requests": bad_requests,
            "send_failures": send_failures,
        },
        "daemon": {
            "rediscovery_probes": rediscovery_probes,
            "stale_connections_dropped": stale_dropped,
        },
    }
    if injector is not None:
        summary["faults"] = injector.counters.as_dict()
    return summary


def summarize_testbed_faults(bed: Testbed) -> dict:
    """:func:`fault_retry_summary` over everything a testbed holds."""
    return fault_retry_summary(
        (member.app for member in bed.members.values()),
        injector=bed.faults,
        daemons=(handle.daemon for handle in bed.devices.values()))
