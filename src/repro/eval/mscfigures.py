"""Regenerating the paper's MSC figures (11-17) from live runs.

Each figure function builds the paper's neighbourhood (the observing
client plus two serving peers), lets discovery settle, clears the
recorder, performs exactly the figure's operation and returns the
recorded chart.  The arrows therefore come from the actual protocol
exchange, not from a drawing.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

from repro.eval.testbed import Testbed
from repro.msc.render import render_msc
from repro.msc.trace import MscRecorder

FIGURE_TITLES = {
    11: "Figure 11: MSC Get Member List",
    12: "Figure 12: MSC Get Interests List",
    13: "Figure 13: MSC View Member Profile",
    14: "Figure 14: MSC Put Profile Comment",
    15: "Figure 15: MSC View Members Trusted Friends",
    16: "Figure 16: MSC View Members Shared Content",
    17: "Figure 17: MSC Send Message",
}


def _build_bed(seed: int) -> Testbed:
    bed = Testbed(seed=seed, technologies=("bluetooth",))
    bed.add_member("alice", ["football", "music"])
    bob = bed.add_member("bob", ["football", "movies"])
    bed.add_member("carol", ["music", "movies"])
    # Figure 16 needs trust and content on the serving side.
    bob.app.accept_trusted("alice")
    bob.app.share_file("match_highlights.mp4", 2_500_000)
    bob.app.share_file("lineup.txt", 2_048)
    bed.run(40.0)  # discovery + dynamic groups settle
    return bed


def _figure_operation(bed: Testbed, figure: int) -> Generator:
    alice = bed.members["alice"].app
    operations: dict[int, Callable[[], Generator]] = {
        11: alice.view_all_members,
        12: alice.view_interest_list,
        13: lambda: alice.view_member_profile("bob"),
        14: lambda: alice.comment_profile("bob", "Great match yesterday!"),
        15: lambda: alice.view_trusted_friends("bob"),
        16: lambda: alice.view_shared_content("bob"),
        17: lambda: alice.send_message("bob", "hello",
                                       "See you at the stadium."),
    }
    return operations[figure]()


def record_figure(figure: int, seed: int = 0) -> tuple[MscRecorder, object]:
    """Run one figure's operation; returns (recorder view, op result)."""
    if figure not in FIGURE_TITLES:
        raise ValueError(f"no MSC for figure {figure}; choose 11-17")
    bed = _build_bed(seed)
    bed.recorder.clear()
    result = bed.execute(_figure_operation(bed, figure))
    recorder = bed.recorder.subchart(
        ["client:alice", "server:bob", "server:carol"])
    bed.stop()
    return recorder, result


def render_figure(figure: int, seed: int = 0) -> str:
    """The ASCII MSC for one paper figure."""
    recorder, _ = record_figure(figure, seed)
    return render_msc(recorder, title=FIGURE_TITLES[figure])
