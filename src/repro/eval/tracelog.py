"""Structured event tracing for simulation runs.

A :class:`TraceLog` subscribes to the observable seams of one testbed —
PeerHood device events, community probe completions, group membership
changes — and records them as typed entries with virtual timestamps.
Runs can be exported as JSON lines for offline analysis and summarised
for quick inspection; scenario tests use it to assert event *ordering*
across subsystems (device found before probe, probe before group join).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eval.testbed import MemberHandle, Testbed


@dataclass(frozen=True)
class TraceEntry:
    """One recorded event.

    Attributes:
        time: Virtual time.
        device_id: Observing device.
        kind: Event type (``device_found``, ``device_lost``,
            ``services_updated``, ``probe``, ``group_join``,
            ``group_leave``).
        detail: Event-specific payload.
    """

    time: float
    device_id: str
    kind: str
    detail: dict


class TraceLog:
    """Event collector for one testbed."""

    def __init__(self) -> None:
        self.entries: list[TraceEntry] = []

    # -- wiring ----------------------------------------------------------------

    def attach_device(self, device_id: str, daemon) -> None:
        """Subscribe to one daemon's discovery events."""
        daemon.on_device_found(
            lambda found: self._record(daemon.env.now, device_id,
                                       "device_found", {"device": found}))
        daemon.on_device_lost(
            lambda lost: self._record(daemon.env.now, device_id,
                                      "device_lost", {"device": lost}))
        daemon.on_services_updated(
            lambda updated: self._record(daemon.env.now, device_id,
                                         "services_updated",
                                         {"device": updated}))

    def attach_member(self, member: MemberHandle) -> None:
        """Subscribe to a member's daemon plus group-change polling.

        Group joins/leaves are recorded by wrapping the registry's
        bookkeeping (membership events already carry reasons and
        timestamps; the log just mirrors them as they happen).
        """
        self.attach_device(member.device_id, member.device.daemon)
        engine = member.app.engine
        original_ensure = engine.groups.ensure
        log = self

        def traced_ensure(interest: str, when: float):
            group = original_ensure(interest, when)
            if not hasattr(group, "_trace_wrapped"):
                group._trace_wrapped = True
                original_add, original_remove = group.add, group.remove

                def traced_add(member_id, when, reason="dynamic"):
                    changed = original_add(member_id, when, reason)
                    if changed:
                        log._record(when, member.device_id, "group_join",
                                    {"group": group.interest,
                                     "member": member_id, "reason": reason})
                    return changed

                def traced_remove(member_id, when, reason="departed"):
                    changed = original_remove(member_id, when, reason)
                    if changed:
                        log._record(when, member.device_id, "group_leave",
                                    {"group": group.interest,
                                     "member": member_id, "reason": reason})
                    return changed

                group.add = traced_add
                group.remove = traced_remove
            return group

        engine.groups.ensure = traced_ensure

    def attach_testbed(self, bed: Testbed) -> None:
        """Subscribe to every member already in the testbed."""
        for member in bed.members.values():
            self.attach_member(member)

    # -- recording ------------------------------------------------------------

    def _record(self, time: float, device_id: str, kind: str,
                detail: dict) -> None:
        self.entries.append(TraceEntry(time, device_id, kind, detail))

    # -- queries --------------------------------------------------------------

    def of_kind(self, kind: str) -> list[TraceEntry]:
        """Entries of one event type, in time order."""
        return [entry for entry in self.entries if entry.kind == kind]

    def for_device(self, device_id: str) -> list[TraceEntry]:
        """Entries observed by one device."""
        return [entry for entry in self.entries
                if entry.device_id == device_id]

    def summary(self) -> dict[str, int]:
        """Event counts by kind."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        return counts

    # -- export -----------------------------------------------------------------

    def export_jsonl(self, path: str | Path) -> int:
        """Write entries as JSON lines; returns the entry count."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for entry in self.entries:
                handle.write(json.dumps({
                    "time": entry.time,
                    "device": entry.device_id,
                    "kind": entry.kind,
                    "detail": entry.detail,
                }, sort_keys=True) + "\n")
        return len(self.entries)

    @staticmethod
    def load_jsonl(path: str | Path) -> TraceLog:
        """Rebuild a log exported with :meth:`export_jsonl`."""
        log = TraceLog()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                data = json.loads(line)
                log._record(data["time"], data["device"], data["kind"],
                            data["detail"])
        return log
