"""Plain-text table formatting for bench output.

The benches print tables shaped like the paper's so the reproduction
can be eyeballed against the original side by side.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    columns = [[str(header)] for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match headers {headers!r}")
        for index, cell in enumerate(row):
            columns[index].append(str(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(header.ljust(width)
                             for header, width in zip(headers, widths,
                                                      strict=True))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(width)
                                for cell, width in zip(row, widths,
                                                       strict=True)))
    return "\n".join(lines)


def seconds(value: float) -> str:
    """Format a duration the way Table 8 does ("58 Seconds")."""
    return f"{value:.0f} Seconds"
