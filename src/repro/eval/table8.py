"""Table 8: the paper's headline experiment.

Five columns — Facebook and Hi5 on Nokia N810/N95, and PeerHood
Community on the laptop/desktop testbed — each measured on four tasks:
search an interest group, join it, view the member list, view one
member's profile.

The SNS columns run :class:`~repro.sns.workflows.SnsWorkflow` against a
seeded site database.  The PeerHood column runs the real simulated
stack: group-search time is the virtual time from application start
until dynamic group discovery has formed the group (inquiry + service
discovery + interest probe), join time is structurally zero, and the
two viewing tasks drive the actual ``PS_*`` operations plus the same
human model the SNS columns use (Table 8 timed a person at a terminal
on both sides).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.eval.reporting import format_table, seconds
from repro.eval.testbed import Testbed
from repro.sns.census import census_row, seed_database_from_census
from repro.sns.database import SnsDatabase
from repro.sns.devices import NOKIA_N810, NOKIA_N95, AccessDevice
from repro.sns.human import HumanModel
from repro.sns.server import SnsServer
from repro.sns.sites import FACEBOOK_2008, HI5_2008, SiteProfile
from repro.sns.workflows import SnsWorkflow, TaskTimes

#: The paper's Table 8, for shape comparison in benches and
#: EXPERIMENTS.md.  Values in seconds, tasks in the paper's order.
PAPER_TABLE8: dict[str, TaskTimes] = {
    "Facebook / Nokia N810": TaskTimes(58.0, 17.0, 8.0, 11.0),
    "Facebook / Nokia N95": TaskTimes(75.0, 24.0, 31.0, 27.0),
    "HI5 / Nokia N810": TaskTimes(50.0, 25.0, 18.0, 32.0),
    "HI5 / Nokia N95": TaskTimes(69.0, 40.0, 32.0, 40.0),
    "PeerHood Community": TaskTimes(11.0, 0.0, 15.0, 19.0),
}


@dataclass(frozen=True)
class ConsoleUi:
    """The reference application's text interface (Figure 10) on the
    paper's laptop/desktop testbed: menu navigation and list reading
    costs for the human model."""

    nav_s: float = 3.0
    scan_s_per_item: float = 2.2
    menu_read_s: float = 5.2
    profile_read_s: float = 13.0


# -- SNS columns ----------------------------------------------------------


def build_sns(site: SiteProfile, seed: int, *, population: int = 400,
              group_members: int = 30) -> SnsServer:
    """A seeded site with the paper's test group populated."""
    rng = Random(seed)
    database = SnsDatabase()
    row = census_row("Facebook" if site is FACEBOOK_2008 else "Fotolog")
    seed_database_from_census(database, row, rng,
                              scale=max(1, row.registered_users // population))
    group = "England Football"
    members = [f"user{index:06d}" for index in range(group_members)]
    for user_id in members:
        database.join_group(group, user_id)
    # The tester's own account, used by the join task.
    for trial in range(64):
        database.register_user(f"tester{trial}", f"Tester {trial}")
    return SnsServer(site, database)


def run_sns_column(site: SiteProfile, device: AccessDevice, *,
                   seed: int = 0, trials: int = 5) -> TaskTimes:
    """Average Table 8 task times for one (site, device) cell."""
    totals = [0.0, 0.0, 0.0, 0.0]
    for trial in range(trials):
        server = build_sns(site, seed + trial)
        workflow = SnsWorkflow(server, device, Random(seed * 1000 + trial))
        times = workflow.run_table8_tasks("England Football",
                                          "England Football",
                                          user_id=f"tester{trial}")
        for index, value in enumerate((times.search_s, times.join_s,
                                       times.member_list_s, times.profile_s)):
            totals[index] += value
    return TaskTimes(*(total / trials for total in totals))


# -- PeerHood Community column ---------------------------------------------------


def _group_formed(bed: Testbed, member, interest: str) -> bool:
    members = bed.members[member].app.group_members(interest)
    me = bed.members[member].member_id
    return len([m for m in members if m != me]) > 0


def run_peerhood_column(*, seed: int = 0, trials: int = 5,
                        neighbors: int = 3,
                        ui: ConsoleUi | None = None) -> TaskTimes:
    """Average Table 8 task times for the PeerHood Community column.

    Each trial builds a fresh Bluetooth neighbourhood (the paper's
    room: one observer plus ``neighbors`` peers sharing the Football
    interest), measures group-formation time, confirms zero-cost join,
    then times the two viewing tasks with the console human model.
    """
    ui = ui if ui is not None else ConsoleUi()
    totals = [0.0, 0.0, 0.0, 0.0]
    for trial in range(trials):
        bed = Testbed(seed=seed + trial, technologies=("bluetooth",))
        observer = bed.add_member("alice", ["football", "music"])
        for index in range(neighbors):
            extra = ["movies"] if index % 2 else ["music"]
            bed.add_member(f"peer{index}", ["football"] + extra)
        human = HumanModel(bed.env.random.stream("table8-human"))

        # Task 1: group search = app start -> group formed dynamically.
        # (The app start/menu moment is part of the paper's stopwatch.)
        start = bed.env.now
        while not _group_formed(bed, "alice", "football"):
            if not bed.env.step():
                raise RuntimeError("simulation idle before group formed")
            if bed.env.now - start > 120.0:
                raise RuntimeError("group did not form within 120 s")
        search_s = (bed.env.now - start) + human.think(0.8)

        # Task 2: join.  Dynamic discovery already placed us in the
        # group ("Already in the Group") - verify, cost nothing.
        assert "football" in observer.app.my_groups()
        join_s = 0.0

        # Task 3: view member list (menu -> PS_GETONLINEMEMBERLIST -> scan).
        member_list_s = human.navigate(ui.nav_s) + human.think(ui.menu_read_s)
        op_start = bed.env.now
        members = bed.execute(observer.app.view_all_members())
        member_list_s += bed.env.now - op_start
        member_list_s += human.scan_list(len(members), ui.scan_s_per_item)

        # Task 4: view one member's profile (menu -> select -> read).
        target = members[0]["member_id"]
        profile_s = human.navigate(ui.nav_s) + human.navigate(ui.nav_s)
        op_start = bed.env.now
        profile = bed.execute(observer.app.view_member_profile(target))
        profile_s += bed.env.now - op_start
        profile_s += human.read_page(ui.profile_read_s)
        assert profile is not None and profile["member_id"] == target

        bed.stop()
        for index, value in enumerate((search_s, join_s,
                                       member_list_s, profile_s)):
            totals[index] += value
    return TaskTimes(*(total / trials for total in totals))


# -- the full table ----------------------------------------------------------


def run_table8(*, seed: int = 0, trials: int = 5) -> dict[str, TaskTimes]:
    """All five Table 8 columns, measured."""
    return {
        "Facebook / Nokia N810": run_sns_column(FACEBOOK_2008, NOKIA_N810,
                                                seed=seed, trials=trials),
        "Facebook / Nokia N95": run_sns_column(FACEBOOK_2008, NOKIA_N95,
                                               seed=seed, trials=trials),
        "HI5 / Nokia N810": run_sns_column(HI5_2008, NOKIA_N810,
                                           seed=seed, trials=trials),
        "HI5 / Nokia N95": run_sns_column(HI5_2008, NOKIA_N95,
                                          seed=seed, trials=trials),
        "PeerHood Community": run_peerhood_column(seed=seed, trials=trials),
    }


def format_table8(measured: dict[str, TaskTimes],
                  paper: dict[str, TaskTimes] | None = PAPER_TABLE8) -> str:
    """Render measured (and optionally paper) values side by side."""
    headers = ["Task"] + list(measured)
    task_names = ("Average Group search Time", "Average Group Join Time",
                  "Viewing Member List Average Time",
                  "Viewing one Member profile Average Time", "Total Time Taken")

    def row_values(times: TaskTimes) -> tuple[float, ...]:
        return (times.search_s, times.join_s, times.member_list_s,
                times.profile_s, times.total_s)

    rows = []
    for index, task in enumerate(task_names):
        row = [task]
        for column in measured:
            cell = seconds(row_values(measured[column])[index])
            if paper is not None and column in paper:
                cell += f"  (paper: {row_values(paper[column])[index]:.0f})"
            row.append(cell)
        rows.append(row)
    return format_table(headers, rows,
                        title="Table 8: time records, measured vs paper")
