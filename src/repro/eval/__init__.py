"""Experiment harness: testbeds, workloads and table formatting.

Everything ``benchmarks/`` and ``examples/`` share lives here so each
bench stays a thin, readable driver.
"""

from repro.eval.testbed import DeviceHandle, MemberHandle, Testbed

__all__ = ["DeviceHandle", "MemberHandle", "Testbed"]
