"""Testbed: one-call assembly of a complete simulated neighbourhood.

A :class:`Testbed` wires the whole stack — environment, world, medium,
gateway, per-device network stacks, PeerHood daemons and PeerHood
Community applications — the way the paper's test environment did
(Appendix 1: two desktop PCs and two laptops in room 6604).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Generator

from repro.community.app import CommunityApp
from repro.mobility.geometry import Point, Rect
from repro.mobility.models import MobilityModel
from repro.mobility.world import World
from repro.msc.trace import MscRecorder
from repro.net.faults import FaultConfig, FaultInjector
from repro.net.retry import RetryPolicy
from repro.net.stack import NetworkStack, StackRegistry
from repro.peerhood.daemon import PeerHoodDaemon
from repro.peerhood.library import PeerHoodLibrary
from repro.peerhood.plugins import BTPlugin, GPRSPlugin, WLANPlugin
from repro.peerhood.seamless import SeamlessConnectivityManager
from repro.radio.gprs import GprsGateway
from repro.radio.medium import Medium
from repro.radio.standards import BLUETOOTH, GPRS, WLAN
from repro.simenv import Environment

_TECHNOLOGY_BY_NAME = {
    "bluetooth": BLUETOOTH,
    "wlan": WLAN,
    "gprs": GPRS,
}


@dataclass
class DeviceHandle:
    """A plain PeerHood device (no community app)."""

    device_id: str
    stack: NetworkStack
    daemon: PeerHoodDaemon
    library: PeerHoodLibrary

    def seamless(self, **kwargs) -> SeamlessConnectivityManager:
        """Attach a seamless-connectivity manager to this device."""
        return SeamlessConnectivityManager(self.daemon, **kwargs)


@dataclass
class MemberHandle:
    """A device running PeerHood Community with a logged-in member."""

    device: DeviceHandle
    app: CommunityApp

    @property
    def device_id(self) -> str:
        """The device id (also used as the node id in the world)."""
        return self.device.device_id

    @property
    def member_id(self) -> str:
        """The logged-in member's id."""
        profile = self.app.profile
        if profile is None:
            raise RuntimeError(f"nobody logged in on {self.device_id!r}")
        return profile.member_id

    def groups(self) -> list[str]:
        """Groups the member currently belongs to."""
        return self.app.my_groups()


class Testbed:
    """A ready-to-run simulated mobile neighbourhood.

    Args:
        seed: Root random seed (full determinism).
        bounds: Simulated area.
        technologies: Technology names every new device gets by default.
        scan_interval: PeerHood discovery-loop period in seconds.
        semantic: Give community apps a teachable semantic matcher.
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, seed: int = 0, *,
                 bounds: Rect | None = None,
                 technologies: tuple[str, ...] = ("bluetooth", "wlan"),
                 scan_interval: float = 10.0,
                 semantic: bool = False) -> None:
        self.env = Environment(seed=seed)
        self.world = World(self.env, bounds)
        self.medium = Medium(self.world)
        self.registry = StackRegistry()
        self.gateway = GprsGateway()
        self.recorder = MscRecorder()
        self.default_technologies = technologies
        self.scan_interval = scan_interval
        self.semantic = semantic
        self.devices: dict[str, DeviceHandle] = {}
        self.members: dict[str, MemberHandle] = {}
        self.faults: FaultInjector | None = None
        self._placement_index = 0
        if "gprs" in technologies:
            self.medium.register_gateway("gprs")

    # -- fault injection ------------------------------------------------------

    def enable_faults(self, config: FaultConfig | None = None, *,
                      stream: str = "faults") -> FaultInjector:
        """Install a seeded :class:`FaultInjector` on the shared medium.

        Idempotent per testbed: a second call reconfigures the existing
        injector (keeping its counters and RNG position) instead of
        replacing it, so a chaos run can ramp rates mid-flight.
        """
        if self.faults is None:
            self.faults = FaultInjector(self.env, self.medium, config,
                                        stream=stream)
            self.faults.install()
        else:
            if config is not None:
                self.faults.config = config
            self.faults.enabled = True
        return self.faults

    def disable_faults(self) -> None:
        """Suspend injection (counters survive for the final report)."""
        if self.faults is not None:
            self.faults.enabled = False

    # -- building ----------------------------------------------------------

    def _default_position(self) -> Point:
        """Deterministic close-cluster placement (all in BT range)."""
        center = Point(100.0, 100.0)
        index = self._placement_index
        self._placement_index += 1
        if index == 0:
            return center
        ring = 1 + (index - 1) // 6
        angle = (index - 1) % 6 * (math.pi / 3.0) + ring * 0.5
        radius = 3.0 * ring
        return Point(center.x + radius * math.cos(angle),
                     center.y + radius * math.sin(angle))

    def add_device(self, device_id: str, *, position: Point | None = None,
                   model: MobilityModel | None = None,
                   technologies: tuple[str, ...] | None = None,
                   start_daemon: bool = True) -> DeviceHandle:
        """Add a PeerHood-capable device to the world."""
        if device_id in self.devices:
            raise ValueError(f"device {device_id!r} already exists")
        technologies = technologies or self.default_technologies
        self.world.add_node(device_id,
                            position or self._default_position(), model)
        stack = NetworkStack(self.env, self.medium, device_id, self.registry)
        plugins = []
        for name in technologies:
            technology = _TECHNOLOGY_BY_NAME[name]
            self.medium.attach(device_id, technology)
            if name == "bluetooth":
                plugin = BTPlugin(self.env, self.medium, stack, device_id)
            elif name == "wlan":
                plugin = WLANPlugin(self.env, self.medium, stack, device_id)
            elif name == "gprs":
                self.medium.register_gateway("gprs")
                plugin = GPRSPlugin(self.env, self.medium, stack,
                                    device_id, self.gateway)
            # The registry entry may be a variant (e.g. a lossy or
            # alternate-standard parameterisation); the plugin must use
            # the same descriptor the adapter was attached with.
            plugin.technology = technology
            plugins.append(plugin)
        daemon = PeerHoodDaemon(self.env, self.medium, stack, device_id,
                                plugins, scan_interval=self.scan_interval)
        if start_daemon:
            daemon.start()
        handle = DeviceHandle(device_id, stack, daemon,
                              PeerHoodLibrary(daemon))
        self.devices[device_id] = handle
        return handle

    def add_member(self, name: str, interests: list[str], *,
                   position: Point | None = None,
                   model: MobilityModel | None = None,
                   technologies: tuple[str, ...] | None = None,
                   full_name: str = "", password: str = "pw",
                   auto_login: bool = True,
                   retry_policy: RetryPolicy | None = None) -> MemberHandle:
        """Add a device running PeerHood Community with one profile.

        The member id, username and device id all equal ``name`` —
        one person, one PTD, as in the paper's tests.
        """
        device = self.add_device(name, position=position, model=model,
                                 technologies=technologies)
        app = CommunityApp(device.library, self.recorder,
                           semantic=self.semantic,
                           retry_policy=retry_policy)
        app.create_profile(member_id=name, username=name, password=password,
                           full_name=full_name or name.capitalize(),
                           interests=interests)
        if auto_login:
            app.login(name, password)
        app.start()
        member = MemberHandle(device, app)
        self.members[name] = member
        return member

    # -- running ------------------------------------------------------------

    def run(self, duration: float) -> float:
        """Advance the simulation by ``duration`` virtual seconds."""
        return self.env.run(until=self.env.now + duration)

    def execute(self, generator: Generator, *, timeout: float = 600.0):
        """Run a process generator to completion and return its result.

        Drives the event loop (timers keep firing) until the spawned
        process finishes; raises ``TimeoutError`` if it takes more than
        ``timeout`` virtual seconds.
        """
        process = self.env.spawn(generator, name="testbed.execute")
        # The harness observes the result itself (re-raising failures
        # from process.result), so the kernel must not also report the
        # failure as unobserved.
        self.env.acknowledge_failure(process)  # sync failure at spawn
        process.done.wait(lambda _value: None)  # later failures
        deadline = self.env.now + timeout
        while process.alive:
            if not self.env.step():
                raise RuntimeError("simulation went idle with the "
                                   "operation still pending")
            if self.env.now > deadline:
                raise TimeoutError(
                    f"operation still running after {timeout} simulated seconds")
        return process.result

    def stop(self) -> None:
        """Stop world ticks and daemons (lets the event queue drain)."""
        self.world.stop()
        for handle in self.devices.values():
            handle.daemon.stop()
