"""Process-parallel fan-out for bench scenarios and sweep points.

Every simulation is single-threaded and deterministic given its seed,
so independent scenarios / sweep points parallelise perfectly across
processes.  :func:`parallel_map` is the one primitive: an
order-preserving map over picklable tasks, run serially for
``jobs <= 1`` and on a spawn-context process pool otherwise.

Design rules the callers follow:

* **Determinism lives in the task, not the schedule.**  Each task
  carries its own seed (derived from the task definition, never from
  worker identity or completion order), so the merged results are
  identical to a serial run — only wall-clock fields may differ.
* **Order-preserving merge.**  ``ProcessPoolExecutor.map`` yields
  results in submission order regardless of completion order, so
  reports assemble identically at any job count.
* **Spawn, not fork.**  Spawned workers re-import the task module from
  scratch — the same constraint CI runners and macOS impose — so a
  pickling regression surfaces immediately instead of only off-Linux.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Callable, Iterable
from typing import TypeVar

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


def parallel_map(fn: Callable[[_Task], _Result], tasks: Iterable[_Task], *,
                 jobs: int = 1) -> list[_Result]:
    """Map ``fn`` over ``tasks`` on ``jobs`` worker processes.

    Results keep task order.  ``jobs=1`` (or a single task) runs in
    the calling process with no multiprocessing machinery at all, so
    the serial path stays debuggable and exceptions propagate plainly.
    ``jobs < 1`` is rejected — a zero or negative job count is always
    a caller bug (a mistyped CLI flag), never a request for serial.
    ``fn`` must be a module-level callable and both tasks and results
    must pickle; worker exceptions propagate to the caller.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    tasks = list(tasks)
    if jobs == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    context = multiprocessing.get_context("spawn")
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        return list(pool.map(fn, tasks))
