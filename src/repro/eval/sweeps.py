"""Parameter sweeps over neighbourhood shape.

Two sweeps the thesis' analysis invites but never runs:

* **Density** — how does the time to a *complete* group (every
  co-interested neighbour discovered) grow with neighbourhood size?
  Bluetooth inquiry slows with responder count and every member costs
  a probe, so formation is super-linear in crowd size.
* **Interest fragmentation** — with a fixed crowd, how does the size
  of the interest vocabulary fragment the neighbourhood into many
  small groups (the §5.2.6 problem grown to population scale)?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.testbed import Testbed
from repro.eval.workloads import populate_neighborhood


@dataclass(frozen=True)
class DensityPoint:
    """One neighbourhood-size measurement.

    Attributes:
        members: Total devices in the cluster.
        complete_at_s: Virtual time until the observer's shared group
            contained every other member.
        bytes_sent: Radio traffic the observer emitted getting there.
    """

    members: int
    complete_at_s: float
    bytes_sent: int


def density_sweep(counts: tuple[int, ...] = (2, 4, 8, 12),
                  seed: int = 0) -> list[DensityPoint]:
    """Formation-completeness time as the crowd grows."""
    points = []
    for count in counts:
        bed = Testbed(seed=seed, technologies=("bluetooth",))
        members = populate_neighborhood(bed, count,
                                        shared_interest="football")
        observer = members[0]
        expected = {member.member_id for member in members}
        while set(observer.app.group_members("football")) != expected:
            if not bed.env.step():
                raise RuntimeError("group never completed")
            if bed.env.now > 600.0:
                raise RuntimeError(f"no complete group for {count} members "
                                   f"within 600 s")
        adapter = bed.medium.adapter(observer.device_id, "bluetooth")
        points.append(DensityPoint(count, bed.env.now, adapter.bytes_sent))
        bed.stop()
    return points


@dataclass(frozen=True)
class FragmentationPoint:
    """One vocabulary-size measurement.

    Attributes:
        pool_size: Distinct interests in circulation.
        groups: Non-empty groups the observer sees.
        largest_group: Size of the observer's biggest group.
        singleton_groups: Groups holding only the observer.
    """

    pool_size: int
    groups: int
    largest_group: int
    singleton_groups: int


def fragmentation_sweep(pool_sizes: tuple[int, ...] = (2, 4, 8, 12),
                        members: int = 10,
                        seed: int = 0) -> list[FragmentationPoint]:
    """Group fragmentation as the interest vocabulary grows."""
    from repro.eval.workloads import INTEREST_POOL

    points = []
    for pool_size in pool_sizes:
        pool = INTEREST_POOL[:pool_size]
        bed = Testbed(seed=seed, technologies=("bluetooth",))
        rng = bed.env.random.stream("fragmentation")
        from repro.eval.workloads import random_interests
        from repro.mobility.geometry import Point

        handles = []
        for index in range(members):
            if index == 0:
                # The observer holds the whole vocabulary so every
                # group in the room is visible from one device.
                interests = list(pool)
            else:
                interests = random_interests(rng, minimum=1,
                                             maximum=min(3, pool_size),
                                             pool=pool)
            handles.append(bed.add_member(f"m{index:02d}", interests))
        bed.run(90.0)
        observer = handles[0]
        groups = observer.app.engine.groups.non_empty()
        sizes = [len(group) for group in groups]
        points.append(FragmentationPoint(
            pool_size=pool_size,
            groups=len(groups),
            largest_group=max(sizes) if sizes else 0,
            singleton_groups=sum(1 for size in sizes if size == 1)))
        bed.stop()
    return points
