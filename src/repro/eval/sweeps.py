"""Parameter sweeps over neighbourhood shape.

Three sweeps the thesis' analysis invites but never runs:

* **Density** — how does the time to a *complete* group (every
  co-interested neighbour discovered) grow with neighbourhood size?
  Bluetooth inquiry slows with responder count and every member costs
  a probe, so formation is super-linear in crowd size.
* **Interest fragmentation** — with a fixed crowd, how does the size
  of the interest vocabulary fragment the neighbourhood into many
  small groups (the §5.2.6 problem grown to population scale)?
* **Hotspot concentration** — as a city crowd piles into venue
  hotspots, how fast does the strip partition's shard imbalance grow,
  and how much of it does the tile rebalancer claw back?

Each sweep point is an independent seed-deterministic simulation, so
sweeps fan out across worker processes (``jobs=N``) through
:func:`repro.eval.parallel.parallel_map` and merge back in input
order — byte-identical to the serial run.  (The hotspot sweep records
only simulation-derived load figures, never wall clocks, to keep that
invariant.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.parallel import parallel_map
from repro.eval.testbed import Testbed
from repro.eval.workloads import (INTEREST_POOL, populate_neighborhood,
                                  random_interests)
from repro.shard import ShardedRunner, clustered_workload


@dataclass(frozen=True)
class DensityPoint:
    """One neighbourhood-size measurement.

    Attributes:
        members: Total devices in the cluster.
        complete_at_s: Virtual time until the observer's shared group
            contained every other member.
        bytes_sent: Radio traffic the observer emitted getting there.
    """

    members: int
    complete_at_s: float
    bytes_sent: int


def density_point(count: int, seed: int = 0, *,
                  technologies: tuple[str, ...] = ("bluetooth",),
                  radius: float = 8.0,
                  deadline_s: float = 600.0) -> DensityPoint:
    """Formation-completeness time for one cluster size.

    ``technologies``/``radius`` widen the cluster past Bluetooth scale:
    the historical sweep packs everyone inside a 8 m Bluetooth huddle,
    while 64+ members need WLAN range (``radius`` up to ~55 m) to be a
    single connected neighbourhood.
    """
    bed = Testbed(seed=seed, technologies=technologies)
    members = populate_neighborhood(bed, count, shared_interest="football",
                                    radius=radius)
    observer = members[0]
    expected = {member.member_id for member in members}
    while set(observer.app.group_members("football")) != expected:
        if not bed.env.step():
            raise RuntimeError("group never completed")
        if bed.env.now > deadline_s:
            raise RuntimeError(f"no complete group for {count} members "
                               f"within {deadline_s:g} s")
    adapter = bed.medium.adapter(observer.device_id, technologies[0])
    point = DensityPoint(count, bed.env.now, adapter.bytes_sent)
    bed.stop()
    return point


def _density_task(task: tuple) -> DensityPoint:
    """Picklable per-point unit for the parallel runner."""
    count, seed, technologies, radius, deadline_s = task
    return density_point(count, seed, technologies=tuple(technologies),
                         radius=radius, deadline_s=deadline_s)


def density_sweep(counts: tuple[int, ...] = (2, 4, 8, 12),
                  seed: int = 0, *,
                  technologies: tuple[str, ...] = ("bluetooth",),
                  radius: float = 8.0,
                  deadline_s: float = 600.0,
                  jobs: int = 1) -> list[DensityPoint]:
    """Formation-completeness time as the crowd grows."""
    tasks = [(count, seed, technologies, radius, deadline_s)
             for count in counts]
    return parallel_map(_density_task, tasks, jobs=jobs)


@dataclass(frozen=True)
class FragmentationPoint:
    """One vocabulary-size measurement.

    Attributes:
        pool_size: Distinct interests in circulation.
        groups: Non-empty groups the observer sees.
        largest_group: Size of the observer's biggest group.
        singleton_groups: Groups holding only the observer.
    """

    pool_size: int
    groups: int
    largest_group: int
    singleton_groups: int


def fragmentation_point(pool_size: int, members: int = 10,
                        seed: int = 0) -> FragmentationPoint:
    """Group fragmentation for one vocabulary size."""
    pool = INTEREST_POOL[:pool_size]
    bed = Testbed(seed=seed, technologies=("bluetooth",))
    rng = bed.env.random.stream("fragmentation")
    handles = []
    for index in range(members):
        # The observer (index 0) holds the whole vocabulary so every
        # group in the room is visible from one device.
        interests = (list(pool) if index == 0
                     else random_interests(rng, minimum=1,
                                           maximum=min(3, pool_size),
                                           pool=pool))
        handles.append(bed.add_member(f"m{index:02d}", interests))
    bed.run(90.0)
    observer = handles[0]
    groups = observer.app.engine.groups.non_empty()
    sizes = [len(group) for group in groups]
    point = FragmentationPoint(
        pool_size=pool_size,
        groups=len(groups),
        largest_group=max(sizes) if sizes else 0,
        singleton_groups=sum(1 for size in sizes if size == 1))
    bed.stop()
    return point


def _fragmentation_task(task: tuple) -> FragmentationPoint:
    """Picklable per-point unit for the parallel runner."""
    pool_size, members, seed = task
    return fragmentation_point(pool_size, members, seed)


def fragmentation_sweep(pool_sizes: tuple[int, ...] = (2, 4, 8, 12),
                        members: int = 10,
                        seed: int = 0, *,
                        jobs: int = 1) -> list[FragmentationPoint]:
    """Group fragmentation as the interest vocabulary grows."""
    tasks = [(pool_size, members, seed) for pool_size in pool_sizes]
    return parallel_map(_fragmentation_task, tasks, jobs=jobs)


@dataclass(frozen=True)
class HotspotPoint:
    """One hotspot-concentration measurement.

    Attributes:
        hot_fraction: Share of the crowd packed into venue hotspots
            (the rest is uniform background).
        strip_imbalance: Per-shard event imbalance (max/mean over the
            run) under the static strip partition.
        tile_imbalance: Same figure under the tile partition with the
            dynamic rebalancer on.
        rebalances: Windows at which the rebalancer changed the map.
        tiles_migrated: Total tile reassignments across the run.
        events: Discovery events processed (identical for both
            partitions — the geometry never changes the physics).
    """

    hot_fraction: float
    strip_imbalance: float
    tile_imbalance: float
    rebalances: int
    tiles_migrated: int
    events: int


def hotspot_point(hot_fraction: float, count: int = 256, *,
                  shards: int = 4, seed: int = 13) -> HotspotPoint:
    """Strip-vs-tile shard imbalance at one crowd concentration.

    The workload is the "main street" geometry the clustered bench
    scenarios use: four Gaussian hotspots sharing one vertical strip
    (tight x-spread) but spread out in y — the shape a strip partition
    cannot separate and a 2D tiling can.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in [0, 1], "
                         f"got {hot_fraction!r}")
    workload = clustered_workload(count, seed=seed, sim_seconds=12.0,
                                  clusters=4, hot_fraction=hot_fraction,
                                  center_spread=0.05, center_spread_y=0.3,
                                  scan_interval=2.0, window=1.0)
    # Inline scheduler: byte-identical to spawned workers, and sweep
    # points already fan out one process each under ``jobs=N`` (nested
    # spawn is off-limits inside pool workers anyway).
    strip = ShardedRunner(workload, shards, processes=False,
                          collect_logs=False).run()
    tile = ShardedRunner(workload, shards, processes=False,
                         collect_logs=False, partition="tile",
                         rebalance=True).run()
    if tile.events != strip.events:  # pragma: no cover - equivalence gate
        raise RuntimeError(f"partition changed the physics: strip "
                           f"{strip.events} vs tile {tile.events} events")
    return HotspotPoint(hot_fraction=hot_fraction,
                        strip_imbalance=round(strip.imbalance_factor, 4),
                        tile_imbalance=round(tile.imbalance_factor, 4),
                        rebalances=tile.rebalances,
                        tiles_migrated=tile.tiles_migrated,
                        events=strip.events)


def _hotspot_task(task: tuple) -> HotspotPoint:
    """Picklable per-point unit for the parallel runner."""
    hot_fraction, count, shards, seed = task
    return hotspot_point(hot_fraction, count, shards=shards, seed=seed)


def hotspot_sweep(hot_fractions: tuple[float, ...] = (0.0, 0.3, 0.6, 0.9),
                  count: int = 256, *,
                  shards: int = 4,
                  seed: int = 13,
                  jobs: int = 1) -> list[HotspotPoint]:
    """Shard imbalance as the crowd concentrates into hotspots."""
    tasks = [(hot_fraction, count, shards, seed)
             for hot_fraction in hot_fractions]
    return parallel_map(_hotspot_task, tasks, jobs=jobs)
