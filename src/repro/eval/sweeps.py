"""Parameter sweeps over neighbourhood shape.

Two sweeps the thesis' analysis invites but never runs:

* **Density** — how does the time to a *complete* group (every
  co-interested neighbour discovered) grow with neighbourhood size?
  Bluetooth inquiry slows with responder count and every member costs
  a probe, so formation is super-linear in crowd size.
* **Interest fragmentation** — with a fixed crowd, how does the size
  of the interest vocabulary fragment the neighbourhood into many
  small groups (the §5.2.6 problem grown to population scale)?

Each sweep point is an independent seed-deterministic simulation, so
sweeps fan out across worker processes (``jobs=N``) through
:func:`repro.eval.parallel.parallel_map` and merge back in input
order — byte-identical to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.parallel import parallel_map
from repro.eval.testbed import Testbed
from repro.eval.workloads import (INTEREST_POOL, populate_neighborhood,
                                  random_interests)


@dataclass(frozen=True)
class DensityPoint:
    """One neighbourhood-size measurement.

    Attributes:
        members: Total devices in the cluster.
        complete_at_s: Virtual time until the observer's shared group
            contained every other member.
        bytes_sent: Radio traffic the observer emitted getting there.
    """

    members: int
    complete_at_s: float
    bytes_sent: int


def density_point(count: int, seed: int = 0, *,
                  technologies: tuple[str, ...] = ("bluetooth",),
                  radius: float = 8.0,
                  deadline_s: float = 600.0) -> DensityPoint:
    """Formation-completeness time for one cluster size.

    ``technologies``/``radius`` widen the cluster past Bluetooth scale:
    the historical sweep packs everyone inside a 8 m Bluetooth huddle,
    while 64+ members need WLAN range (``radius`` up to ~55 m) to be a
    single connected neighbourhood.
    """
    bed = Testbed(seed=seed, technologies=technologies)
    members = populate_neighborhood(bed, count, shared_interest="football",
                                    radius=radius)
    observer = members[0]
    expected = {member.member_id for member in members}
    while set(observer.app.group_members("football")) != expected:
        if not bed.env.step():
            raise RuntimeError("group never completed")
        if bed.env.now > deadline_s:
            raise RuntimeError(f"no complete group for {count} members "
                               f"within {deadline_s:g} s")
    adapter = bed.medium.adapter(observer.device_id, technologies[0])
    point = DensityPoint(count, bed.env.now, adapter.bytes_sent)
    bed.stop()
    return point


def _density_task(task: tuple) -> DensityPoint:
    """Picklable per-point unit for the parallel runner."""
    count, seed, technologies, radius, deadline_s = task
    return density_point(count, seed, technologies=tuple(technologies),
                         radius=radius, deadline_s=deadline_s)


def density_sweep(counts: tuple[int, ...] = (2, 4, 8, 12),
                  seed: int = 0, *,
                  technologies: tuple[str, ...] = ("bluetooth",),
                  radius: float = 8.0,
                  deadline_s: float = 600.0,
                  jobs: int = 1) -> list[DensityPoint]:
    """Formation-completeness time as the crowd grows."""
    tasks = [(count, seed, technologies, radius, deadline_s)
             for count in counts]
    return parallel_map(_density_task, tasks, jobs=jobs)


@dataclass(frozen=True)
class FragmentationPoint:
    """One vocabulary-size measurement.

    Attributes:
        pool_size: Distinct interests in circulation.
        groups: Non-empty groups the observer sees.
        largest_group: Size of the observer's biggest group.
        singleton_groups: Groups holding only the observer.
    """

    pool_size: int
    groups: int
    largest_group: int
    singleton_groups: int


def fragmentation_point(pool_size: int, members: int = 10,
                        seed: int = 0) -> FragmentationPoint:
    """Group fragmentation for one vocabulary size."""
    pool = INTEREST_POOL[:pool_size]
    bed = Testbed(seed=seed, technologies=("bluetooth",))
    rng = bed.env.random.stream("fragmentation")
    handles = []
    for index in range(members):
        # The observer (index 0) holds the whole vocabulary so every
        # group in the room is visible from one device.
        interests = (list(pool) if index == 0
                     else random_interests(rng, minimum=1,
                                           maximum=min(3, pool_size),
                                           pool=pool))
        handles.append(bed.add_member(f"m{index:02d}", interests))
    bed.run(90.0)
    observer = handles[0]
    groups = observer.app.engine.groups.non_empty()
    sizes = [len(group) for group in groups]
    point = FragmentationPoint(
        pool_size=pool_size,
        groups=len(groups),
        largest_group=max(sizes) if sizes else 0,
        singleton_groups=sum(1 for size in sizes if size == 1))
    bed.stop()
    return point


def _fragmentation_task(task: tuple) -> FragmentationPoint:
    """Picklable per-point unit for the parallel runner."""
    pool_size, members, seed = task
    return fragmentation_point(pool_size, members, seed)


def fragmentation_sweep(pool_sizes: tuple[int, ...] = (2, 4, 8, 12),
                        members: int = 10,
                        seed: int = 0, *,
                        jobs: int = 1) -> list[FragmentationPoint]:
    """Group fragmentation as the interest vocabulary grows."""
    tasks = [(pool_size, members, seed) for pool_size in pool_sizes]
    return parallel_map(_fragmentation_task, tasks, jobs=jobs)
