"""Walk a source tree, apply the rule set, render reports.

The runner parses each file once, runs every applicable
:class:`~repro.analysis.core.FileRule` over it, then runs the
:class:`~repro.analysis.core.ProjectRule` set over the whole module
list.  File-scoped ``# repro: allow[RULE]`` comments move matching
findings into the *suppressed* list — still visible, still counted —
and an allowance that silences nothing becomes a ``SUP001`` finding of
its own, so suppressions can only ever describe real, current debt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Sequence

from repro.analysis.core import (
    FileRule,
    Finding,
    Module,
    ProjectRule,
    Suppression,
    all_rules,
    parse_module,
)

#: Report schema version stamped into ``--json`` output.
SCHEMA = "repro.analysis/v1"


@dataclass
class AnalysisReport:
    """Everything one analysis run learned."""

    root: str
    files: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for finding in self.findings:
            tally[finding.rule] = tally.get(finding.rule, 0) + 1
        return dict(sorted(tally.items()))

    def to_json(self) -> dict[str, object]:
        return {
            "schema": SCHEMA,
            "root": self.root,
            "files_scanned": len(self.files),
            "ok": self.ok,
            "counts": self.counts(),
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": [finding.to_json() for finding in self.suppressed],
            "suppressions": [s.to_json() for s in self.suppressions],
        }

    def render_human(self) -> str:
        """The multi-line human report ``scripts/check.py`` prints."""
        lines: list[str] = []
        for finding in sorted(self.findings):
            lines.append(finding.render())
        if self.suppressed:
            lines.append("")
            lines.append(f"suppressed ({len(self.suppressed)}):")
            for finding in sorted(self.suppressed):
                lines.append(f"  {finding.render()}")
        if self.suppressions:
            lines.append("")
            lines.append(f"suppressions in force ({len(self.suppressions)}):")
            for suppression in sorted(self.suppressions):
                lines.append(f"  {suppression.render()}")
        lines.append("")
        status = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        lines.append(f"{len(self.files)} file(s) scanned: {status}")
        return "\n".join(lines)


def analyze_tree(root: Path) -> AnalysisReport:
    """Analyze every ``*.py`` under ``root`` (sorted, deterministic)."""
    paths = sorted(path for path in root.rglob("*.py")
                   if "__pycache__" not in path.parts)
    return analyze_paths(paths, root=root)


def analyze_paths(paths: Sequence[Path],
                  root: Path | None = None) -> AnalysisReport:
    """Analyze an explicit file list (pre-commit's changed-file mode).

    Project rules see only the given modules; cross-file checks like
    PROTO001 therefore need the full-tree run to be authoritative.
    """
    report = AnalysisReport(root=str(root) if root is not None else "")
    modules: list[Module] = []
    for path in paths:
        display = path.as_posix()
        try:
            module = parse_module(path, root=root)
        except SyntaxError as exc:
            report.files.append(display)
            report.findings.append(Finding(
                path=display, line=exc.lineno or 1,
                col=(exc.offset or 1) - 1, rule="PARSE001",
                message=f"could not parse: {exc.msg}"))
            continue
        modules.append(module)
        report.files.append(module.display_path)

    rules = all_rules()
    raw: list[Finding] = []
    for module in modules:
        for rule in rules:
            if isinstance(rule, FileRule) and rule.applies_to(module):
                raw.extend(rule.check(module))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(modules))

    _apply_suppressions(report, modules, raw)
    report.findings.sort()
    report.suppressed.sort()
    report.suppressions.sort()
    return report


def _apply_suppressions(report: AnalysisReport, modules: Iterable[Module],
                        raw: list[Finding]) -> None:
    allowed: dict[tuple[str, str], Suppression] = {}
    for module in modules:
        report.suppressions.extend(module.suppressions)
        for suppression in module.suppressions:
            allowed[(module.display_path, suppression.rule)] = suppression

    used: set[tuple[str, str]] = set()
    for finding in raw:
        key = (finding.path, finding.rule)
        if key in allowed:
            used.add(key)
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)

    for key, suppression in allowed.items():
        if key not in used:
            report.findings.append(Finding(
                path=suppression.path, line=suppression.line, col=0,
                rule="SUP001",
                message=f"allow[{suppression.rule}] suppresses nothing; "
                        f"delete the stale comment"))


def parse_tree_ok(root: Path) -> bool:
    """Cheap syntax sanity check used by the self-tests."""
    for path in root.rglob("*.py"):
        if "__pycache__" in path.parts:
            continue
        try:
            ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            return False
    return True
