"""Walk a source tree, apply the rule set, render reports.

The runner parses each file once, runs every applicable
:class:`~repro.analysis.core.FileRule` over it, then runs the
:class:`~repro.analysis.core.ProjectRule` and
:class:`~repro.analysis.core.ContextRule` sets over the whole module
list (context rules share one call-graph/effect fixpoint via
:class:`~repro.analysis.core.ProjectContext`).  ``# repro:
allow[RULE]`` comments move matching findings into the *suppressed*
list — still visible, still counted per suppression — and an allowance
that silences nothing becomes a ``SUP001`` finding of its own, so
suppressions can only ever describe real, current debt.

Reports from :func:`analyze_paths` carry ``partial=True``: an explicit
file list (pre-commit's changed-file mode) denies the project rules
their full view, so such a run must never be mistaken for the
authoritative full-tree verdict that :func:`analyze_tree` stamps
``partial=False``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence

from repro.analysis.core import (
    ContextRule,
    FileRule,
    Finding,
    Module,
    ProjectContext,
    ProjectRule,
    Suppression,
    all_rules,
    parse_module,
)

#: Report schema version stamped into ``--json`` output.  v2 adds
#: ``partial``, per-suppression ``scope`` and ``absorbed`` counts.
SCHEMA = "repro.analysis/v2"


@dataclass
class AnalysisReport:
    """Everything one analysis run learned."""

    root: str
    files: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    #: How many findings each suppression absorbed this run.
    absorbed: dict[Suppression, int] = field(default_factory=dict)
    #: True when the run saw an explicit file list rather than the
    #: whole tree — project rules were (partially or fully) skipped.
    partial: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for finding in self.findings:
            tally[finding.rule] = tally.get(finding.rule, 0) + 1
        return dict(sorted(tally.items()))

    def to_json(self) -> dict[str, object]:
        return {
            "schema": SCHEMA,
            "root": self.root,
            "files_scanned": len(self.files),
            "ok": self.ok,
            "partial": self.partial,
            "counts": self.counts(),
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": [finding.to_json() for finding in self.suppressed],
            "suppressions": [
                {**s.to_json(), "absorbed": self.absorbed.get(s, 0)}
                for s in self.suppressions
            ],
        }

    def render_human(self) -> str:
        """The multi-line human report ``scripts/check.py`` prints."""
        lines: list[str] = []
        for finding in sorted(self.findings):
            lines.append(finding.render())
        if self.suppressed:
            lines.append("")
            lines.append(f"suppressed ({len(self.suppressed)}):")
            for finding in sorted(self.suppressed):
                lines.append(f"  {finding.render()}")
        if self.suppressions:
            lines.append("")
            lines.append(f"suppressions in force ({len(self.suppressions)}):")
            for suppression in sorted(self.suppressions):
                count = self.absorbed.get(suppression, 0)
                lines.append(f"  {suppression.render()} — absorbed "
                             f"{count} finding(s)")
        lines.append("")
        status = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        partial = " [partial run: project rules not authoritative]" \
            if self.partial else ""
        lines.append(f"{len(self.files)} file(s) scanned: {status}{partial}")
        return "\n".join(lines)


def analyze_tree(root: Path) -> AnalysisReport:
    """Analyze every ``*.py`` under ``root`` (sorted, deterministic)."""
    paths = sorted(path for path in root.rglob("*.py")
                   if "__pycache__" not in path.parts)
    report = analyze_paths(paths, root=root)
    report.partial = False  # the full tree: project rules saw everything
    return report


def analyze_paths(paths: Sequence[Path],
                  root: Path | None = None) -> AnalysisReport:
    """Analyze an explicit file list (pre-commit's changed-file mode).

    Project rules see only the given modules; cross-file checks like
    PROTO001 therefore need the full-tree run to be authoritative —
    the report says so via ``partial=True``.
    """
    report = AnalysisReport(root=str(root) if root is not None else "",
                            partial=True)
    modules: list[Module] = []
    for path in paths:
        display = path.as_posix()
        if root is not None:
            try:
                display = path.resolve().relative_to(
                    Path(root).resolve()).as_posix()
            except ValueError:
                pass
        try:
            module = parse_module(path, root=root)
        except SyntaxError as exc:
            report.files.append(display)
            offending = (exc.text or "").strip()
            detail = f"{exc.msg}: {offending!r}" if offending else exc.msg
            report.findings.append(Finding(
                path=display, line=exc.lineno or 1,
                col=(exc.offset or 1) - 1, rule="PARSE001",
                message=f"could not parse: {detail}"))
            continue
        modules.append(module)
        report.files.append(module.display_path)

    rules = all_rules()
    raw: list[Finding] = []
    for module in modules:
        for rule in rules:
            if isinstance(rule, FileRule) and rule.applies_to(module):
                raw.extend(rule.check(module))
    context = ProjectContext(modules)
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(modules))
        elif isinstance(rule, ContextRule):
            raw.extend(rule.check_context(context))

    _apply_suppressions(report, modules, raw)
    report.findings.sort()
    report.suppressed.sort()
    report.suppressions.sort()
    return report


def _apply_suppressions(report: AnalysisReport, modules: Sequence[Module],
                        raw: list[Finding]) -> None:
    by_key: dict[tuple[str, str], list[Suppression]] = {}
    for module in modules:
        report.suppressions.extend(module.suppressions)
        for suppression in module.suppressions:
            by_key.setdefault((module.display_path, suppression.rule),
                              []).append(suppression)
            report.absorbed.setdefault(suppression, 0)

    for finding in raw:
        match = _matching_suppression(
            by_key.get((finding.path, finding.rule), ()), finding.line)
        if match is not None:
            report.absorbed[match] = report.absorbed.get(match, 0) + 1
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)

    for suppression, count in report.absorbed.items():
        if count == 0:
            scope = "" if suppression.scope == "file" \
                else f" (scoped to {suppression.scope})"
            report.findings.append(Finding(
                path=suppression.path, line=suppression.line, col=0,
                rule="SUP001",
                message=f"allow[{suppression.rule}]{scope} suppresses "
                        f"nothing; delete the stale comment"))


def _matching_suppression(candidates: Sequence[Suppression],
                          line: int) -> Suppression | None:
    """The innermost suppression covering ``line``.

    Function-scoped allowances (smallest span) win over file-scoped
    ones, so the absorbed counts attribute findings to the most
    specific waiver in force.
    """
    best: Suppression | None = None
    for suppression in candidates:
        if not suppression.covers(line):
            continue
        if best is None:
            best = suppression
        elif suppression.span is not None and (
                best.span is None or
                (suppression.span[1] - suppression.span[0]) <
                (best.span[1] - best.span[0])):
            best = suppression
    return best


def parse_tree_ok(root: Path) -> bool:
    """Cheap syntax sanity check used by the self-tests."""
    for path in root.rglob("*.py"):
        if "__pycache__" in path.parts:
            continue
        try:
            ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            return False
    return True
