"""SARIF 2.1.0 rendering of an analysis report.

SARIF (Static Analysis Results Interchange Format) is the lingua
franca code-scanning UIs ingest — one ``run`` per tool invocation,
one ``result`` per finding, rule metadata under the tool's driver.
This module emits the minimal conforming subset: enough for GitHub's
code-scanning upload and for any SARIF viewer to show findings with
file/line/rule, nothing speculative.

Suppressed findings are *not* emitted: an in-force ``# repro:
allow[RULE]`` is reviewed, budgeted debt, and re-surfacing it in every
scan would train people to ignore the viewer.  The suppression count
lives in the run's ``properties`` bag instead, next to the ``partial``
flag for changed-file runs.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.core import all_rules
from repro.analysis.runner import AnalysisReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

TOOL_NAME = "repro-analysis"


def to_sarif(report: AnalysisReport) -> dict[str, Any]:
    """Render ``report`` as a SARIF 2.1.0 log object."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [_run(report)],
    }


def _run(report: AnalysisReport) -> dict[str, Any]:
    return {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "rules": [_rule_descriptor(rule) for rule in all_rules()],
            },
        },
        "results": [_result(finding) for finding in report.findings],
        "properties": {
            "filesScanned": len(report.files),
            "partial": report.partial,
            "suppressionsInForce": len(report.suppressions),
        },
    }


def _rule_descriptor(rule: Any) -> dict[str, Any]:
    return {
        "id": rule.code,
        "shortDescription": {"text": rule.summary},
    }


def _result(finding: Any) -> dict[str, Any]:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": finding.line,
                    # SARIF columns are 1-based; ast's are 0-based.
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }
