"""Project-wide call graph over parsed modules.

The file-local rules (SIM001–SIM005) see one tree at a time, which a
one-line helper defeats: move ``time.time()`` into ``util.py`` and the
sim-path module that calls it looks clean.  This module builds the
structure the interprocedural rules need — every function and method
in the analyzed module set, plus a call edge for every call site the
resolver can attribute to one of them.

Resolution is deliberately layered from precise to conservative:

* **local** — a bare name defined at the top level of the same module
  (functions, or classes resolving to their ``__init__``);
* **import** — a name or attribute chain rooted at an import, matched
  against the analyzed modules by dotted-path suffix, so ``from
  pkg.util import clock`` finds ``pkg/util/clock.py`` wherever the
  analysis root sits;
* **self** — ``self.m()`` inside a class body resolves to that class's
  own method;
* **typed** — ``x.m()`` where ``x`` is a parameter annotated with a
  project class, a local assigned from a project-class constructor, or
  a ``self.attr`` the class's ``__init__`` assigns from one;
* **name** — anything else of the form ``obj.m()`` falls back to
  *every* method named ``m`` in the project.  Dynamic dispatch we
  cannot type is over-approximated, never silently dropped: a spurious
  edge can at worst cause a reviewable false positive, a missing edge
  would hide a real nondeterminism leak.

Calls that resolve to nothing in the project (builtins, stdlib,
third-party) are recorded with their qualified external name when the
alias map can spell one — the effect inference reads those to seed
direct effects — and land in :attr:`CallGraph.unresolved` otherwise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.analysis.core import Module
from repro.analysis.astutil import import_aliases, qualified_name

#: Stable identifier of one analyzed function: ``<display_path>::<qualname>``.
FunctionId = str


@dataclass
class FunctionInfo:
    """One function or method in the analyzed module set."""

    function_id: FunctionId
    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Dotted nesting inside the module, e.g. ``ShardSim.collect_exchange``.
    qualname: str
    #: Enclosing class name for methods, ``None`` for plain functions.
    class_name: str | None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def package_parts(self) -> tuple[str, ...]:
        return tuple(self.module.display_path.split("/")[:-1])


@dataclass
class CallSite:
    """One call expression, attributed to the function containing it."""

    caller: FunctionId
    node: ast.Call
    #: Resolved project callees (several under name-fallback dispatch).
    callees: tuple[FunctionId, ...] = ()
    #: Qualified external name (``time.time``) when no project callee.
    external: str | None = None
    #: How the callee was found: local/import/self/typed/name/unresolved.
    resolution: str = "unresolved"

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class CallGraph:
    """Functions plus resolved call edges for one analyzed module set."""

    functions: dict[FunctionId, FunctionInfo] = field(default_factory=dict)
    #: caller -> every call site in its body (nested defs excluded:
    #: their calls belong to the nested function).
    calls: dict[FunctionId, list[CallSite]] = field(default_factory=dict)
    #: callee -> call sites that may dispatch to it (reverse edges).
    callers: dict[FunctionId, list[CallSite]] = field(default_factory=dict)
    #: Call sites no layer could resolve (dynamic, builtin, lambda...).
    unresolved: list[CallSite] = field(default_factory=list)

    def function_at(self, module: Module, qualname: str) -> FunctionInfo | None:
        return self.functions.get(f"{module.display_path}::{qualname}")


def build_call_graph(modules: Iterable[Module]) -> CallGraph:
    """Index every function in ``modules`` and resolve their call sites."""
    modules = list(modules)
    index = _ProjectIndex(modules)
    graph = CallGraph(functions=index.functions)
    for module in modules:
        resolver = _ModuleResolver(index, module)
        for info in index.functions_of(module):
            sites = resolver.resolve_calls(info)
            graph.calls[info.function_id] = sites
            for site in sites:
                if not site.callees and site.external is None:
                    graph.unresolved.append(site)
                for callee in site.callees:
                    graph.callers.setdefault(callee, []).append(site)
    return graph


# -- project-wide symbol index ----------------------------------------------


class _ProjectIndex:
    """Symbols the resolver looks up: functions, classes, module paths."""

    def __init__(self, modules: list[Module]) -> None:
        self.functions: dict[FunctionId, FunctionInfo] = {}
        #: module -> its functions, in source order.
        self._per_module: dict[str, list[FunctionInfo]] = {}
        #: module display path -> top-level name -> FunctionInfo.
        self.module_functions: dict[str, dict[str, FunctionInfo]] = {}
        #: module display path -> class name -> {method name -> info}.
        self.module_classes: dict[str, dict[str, dict[str, FunctionInfo]]] = {}
        #: class name -> {method name -> info} across the whole project
        #: (first definition wins on duplicate class names; lookups that
        #: matter are module-scoped first).
        self.classes: dict[str, dict[str, FunctionInfo]] = {}
        #: method name -> every method with that name (name fallback).
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        #: dotted-path parts of each module, for import resolution.
        self._module_parts: list[tuple[tuple[str, ...], Module]] = []
        for module in modules:
            self._index_module(module)

    def _index_module(self, module: Module) -> None:
        path = module.display_path
        self._per_module[path] = []
        self.module_functions[path] = {}
        self.module_classes[path] = {}
        parts = tuple(path[:-3].split("/"))  # strip ".py"
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        self._module_parts.append((parts, module))
        self._index_scope(module, module.tree.body, prefix="", class_name=None)

    def _index_scope(self, module: Module, body: list[ast.stmt],
                     prefix: str, class_name: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                info = FunctionInfo(
                    function_id=f"{module.display_path}::{qualname}",
                    module=module, node=node, qualname=qualname,
                    class_name=class_name)
                self.functions[info.function_id] = info
                self._per_module[module.display_path].append(info)
                if class_name is None and not prefix.count("."):
                    self.module_functions[module.display_path][node.name] = info
                if class_name is not None:
                    self.methods_by_name.setdefault(node.name, []).append(info)
                # Nested defs are indexed too (they are callers), but
                # stay out of the symbol tables — the resolver never
                # dispatches to a closure by name.
                self._index_scope(module, node.body,
                                  prefix=f"{qualname}.", class_name=None)
            elif isinstance(node, ast.ClassDef) and class_name is None \
                    and not prefix:
                methods: dict[str, FunctionInfo] = {}
                self.module_classes[module.display_path][node.name] = methods
                self.classes.setdefault(node.name, methods)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        qualname = f"{node.name}.{item.name}"
                        info = FunctionInfo(
                            function_id=(f"{module.display_path}::"
                                         f"{qualname}"),
                            module=module, node=item, qualname=qualname,
                            class_name=node.name)
                        self.functions[info.function_id] = info
                        self._per_module[module.display_path].append(info)
                        methods[item.name] = info
                        self.methods_by_name.setdefault(item.name,
                                                        []).append(info)
                        self._index_scope(module, item.body,
                                          prefix=f"{qualname}.",
                                          class_name=None)

    def functions_of(self, module: Module) -> list[FunctionInfo]:
        return self._per_module[module.display_path]

    def resolve_module(self, dotted: str) -> Module | None:
        """Match a dotted import path against the analyzed modules.

        Tries the full part sequence first, then progressively drops
        leading components, so ``repro.shard.engine`` finds
        ``shard/engine.py`` under an analysis root of ``src/repro``.
        The longest-suffix match wins; ties resolve to the first
        module in path order (deterministic).
        """
        want = tuple(dotted.split("."))
        for start in range(len(want)):
            suffix = want[start:]
            for parts, module in self._module_parts:
                if len(parts) >= len(suffix) and \
                        parts[-len(suffix):] == suffix:
                    return module
        return None

    def resolve_qualified(self,
                          qualified: str) -> tuple[str, tuple[str, ...]] | None:
        """Split a dotted chain into (module display path, remainder).

        The longest dotted prefix naming an analyzed module wins, so
        ``pkg.mod.Class.method`` resolves to ``pkg/mod.py`` with
        remainder ``("Class", "method")`` rather than mistaking
        ``Class`` for a module.
        """
        parts = qualified.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = self.resolve_module(".".join(parts[:split]))
            if module is not None:
                return module.display_path, tuple(parts[split:])
        return None


# -- per-module call resolution ---------------------------------------------


class _ModuleResolver:
    def __init__(self, index: _ProjectIndex, module: Module) -> None:
        self.index = index
        self.module = module
        self.aliases = import_aliases(module.tree)
        #: class name -> attribute name -> class name, from ``__init__``
        #: assignments and class-level annotations.
        self._attr_types = self._infer_attribute_types()

    # -- type inference ------------------------------------------------

    def _infer_attribute_types(self) -> dict[str, dict[str, str]]:
        types: dict[str, dict[str, str]] = {}
        for node in self.module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            attrs: dict[str, str] = {}
            types[node.name] = attrs
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and \
                        isinstance(item.target, ast.Name):
                    cls = self._class_named(item.annotation)
                    if cls is not None:
                        attrs[item.target.id] = cls
                elif isinstance(item, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)) and \
                        item.name == "__init__":
                    for stmt in ast.walk(item):
                        if isinstance(stmt, ast.Assign) and \
                                isinstance(stmt.value, ast.Call):
                            cls = self._constructed_class(stmt.value)
                            if cls is None:
                                continue
                            for target in stmt.targets:
                                if isinstance(target, ast.Attribute) and \
                                        isinstance(target.value, ast.Name) \
                                        and target.value.id == "self":
                                    attrs[target.attr] = cls
        return types

    def _class_named(self, node: ast.AST) -> str | None:
        """A project class an annotation or constructor name denotes."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            node = ast.parse(node.value, mode="eval").body \
                if _parses_as_name(node.value) else node
        if isinstance(node, ast.Name):
            if node.id in self.index.module_classes[self.module.display_path]:
                return node.id
            dotted = self.aliases.get(node.id)
            if dotted is not None:
                return self._qualified_class(dotted)
            return None
        if isinstance(node, ast.Attribute):
            dotted = qualified_name(node, self.aliases)
            if dotted is not None:
                return self._qualified_class(dotted)
        return None

    def _qualified_class(self, dotted: str) -> str | None:
        resolved = self.index.resolve_qualified(dotted)
        if resolved is not None:
            path, remainder = resolved
            if len(remainder) == 1 and \
                    remainder[0] in self.index.module_classes.get(path, {}):
                return remainder[0]
        return None

    def _constructed_class(self, call: ast.Call) -> str | None:
        return self._class_named(call.func)

    def _class_methods(self, class_name: str) -> dict[str, FunctionInfo]:
        local = self.index.module_classes[self.module.display_path]
        if class_name in local:
            return local[class_name]
        return self.index.classes.get(class_name, {})

    # -- call resolution -----------------------------------------------

    def resolve_calls(self, info: FunctionInfo) -> list[CallSite]:
        local_types = self._local_types(info.node)
        sites: list[CallSite] = []
        for call in _own_calls(info.node):
            sites.append(self._resolve_call(info, call, local_types))
        return sites

    def _local_types(self, function: ast.AST) -> dict[str, str]:
        """Parameter annotations plus constructor-assigned locals."""
        types: dict[str, str] = {}
        args = getattr(function, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.annotation is not None:
                    cls = self._class_named(arg.annotation)
                    if cls is not None:
                        types[arg.arg] = cls
        for node in _own_nodes(function):
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Call):
                cls = self._constructed_class(node.value)
                if cls is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = cls
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                cls = self._class_named(node.annotation)
                if cls is not None:
                    types[node.target.id] = cls
        return types

    def _resolve_call(self, info: FunctionInfo, call: ast.Call,
                      local_types: dict[str, str]) -> CallSite:
        func = call.func
        site = CallSite(caller=info.function_id, node=call)
        if isinstance(func, ast.Name):
            return self._resolve_name_call(site, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute_call(site, info, func, local_types)
        return site  # lambda/subscript/call-of-call: unresolved

    def _resolve_name_call(self, site: CallSite, name: str) -> CallSite:
        path = self.module.display_path
        local = self.index.module_functions[path].get(name)
        if local is not None:
            site.callees = (local.function_id,)
            site.resolution = "local"
            return site
        local_class = self.index.module_classes[path].get(name)
        if local_class is not None:
            return self._class_construction(site, local_class, "local")
        dotted = self.aliases.get(name)
        if dotted is not None:
            return self._resolve_dotted(site, dotted)
        return site

    def _class_construction(self, site: CallSite,
                            methods: dict[str, FunctionInfo],
                            resolution: str) -> CallSite:
        init = methods.get("__init__")
        site.resolution = resolution
        if init is not None:
            site.callees = (init.function_id,)
        return site

    def _resolve_dotted(self, site: CallSite, dotted: str) -> CallSite:
        resolved = self.index.resolve_qualified(dotted)
        if resolved is not None:
            path, remainder = resolved
            if len(remainder) == 1:
                symbol = remainder[0]
                function = self.index.module_functions.get(path,
                                                           {}).get(symbol)
                if function is not None:
                    site.callees = (function.function_id,)
                    site.resolution = "import"
                    return site
                methods = self.index.module_classes.get(path, {}).get(symbol)
                if methods is not None:
                    return self._class_construction(site, methods, "import")
            elif len(remainder) == 2:
                # ``mod.Class.method`` — an unbound-method reference.
                methods = self.index.module_classes.get(path,
                                                        {}).get(remainder[0])
                if methods is not None and remainder[1] in methods:
                    site.callees = (methods[remainder[1]].function_id,)
                    site.resolution = "import"
                    return site
        site.external = dotted
        return site

    def _resolve_attribute_call(self, site: CallSite, info: FunctionInfo,
                                func: ast.Attribute,
                                local_types: dict[str, str]) -> CallSite:
        dotted = qualified_name(func, self.aliases)
        if dotted is not None:
            return self._resolve_dotted(site, dotted)
        method = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and info.class_name is not None:
                own = self._class_methods(info.class_name).get(method)
                if own is not None:
                    site.callees = (own.function_id,)
                    site.resolution = "self"
                    return site
            cls = local_types.get(receiver.id)
            if cls is not None:
                typed = self._class_methods(cls).get(method)
                if typed is not None:
                    site.callees = (typed.function_id,)
                    site.resolution = "typed"
                    return site
        elif isinstance(receiver, ast.Attribute) and \
                isinstance(receiver.value, ast.Name) and \
                receiver.value.id == "self" and info.class_name is not None:
            attr_cls = self._attr_types.get(info.class_name,
                                            {}).get(receiver.attr)
            if attr_cls is not None:
                typed = self._class_methods(attr_cls).get(method)
                if typed is not None:
                    site.callees = (typed.function_id,)
                    site.resolution = "typed"
                    return site
        candidates = self.index.methods_by_name.get(method, ())
        if candidates:
            site.callees = tuple(sorted(candidate.function_id
                                        for candidate in candidates))
            site.resolution = "name"
        return site


# -- tree helpers ------------------------------------------------------------


def _own_nodes(function: ast.AST) -> list[ast.AST]:
    """Every node in ``function``'s own body, nested defs pruned."""
    nodes: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        nodes.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return nodes


def _own_calls(function: ast.AST) -> list[ast.Call]:
    calls = [node for node in _own_nodes(function)
             if isinstance(node, ast.Call)]
    calls.sort(key=lambda node: (node.lineno, node.col_offset))
    return calls


def _parses_as_name(text: str) -> bool:
    try:
        return isinstance(ast.parse(text, mode="eval").body,
                          (ast.Name, ast.Attribute))
    except SyntaxError:
        return False
