"""Rule framework for the simulation-safety analyzer.

A :class:`Module` is one parsed source file.  Rules come in two shapes:

* :class:`FileRule` — examines one module at a time.  Subclasses
  implement :meth:`FileRule.check` and yield :class:`Finding`\\ s; the
  :class:`ScopeTracker` helper answers the questions most rules ask
  (what function am I in? is it a generator?).
* :class:`ProjectRule` — examines the whole module set at once, for
  cross-file consistency checks like the protocol/handler/encoder
  triangle.

Rules self-register via the :func:`register` decorator so the runner,
the CLI, and the tests all agree on the active rule set without a
hand-maintained list.

Suppressions are **scoped and explicit**: a ``# repro: allow[SIM001]``
comment at module level silences that rule for the whole file, while
the same comment *inside a function body* silences it only for
findings within that function's line span — the preferred, surgical
form.  Every suppression is parsed into a :class:`Suppression` record
so the runner can count the findings each one absorbs, report them,
and gate their number — an allowance is visible debt, never a silent
one.

Interprocedural rules (DET/SHARD) run through a :class:`ProjectContext`
that builds the call graph and effect fixpoint once per analysis run
and shares them across every :class:`ContextRule`.
"""

from __future__ import annotations

import ast
import contextlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` — the human report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True, order=True)
class Suppression:
    """One ``# repro: allow[RULE]`` comment.

    ``scope`` is ``"file"`` for module-level comments; for a comment
    inside a function body it is that function's dotted qualname and
    ``span`` holds the function's (first, last) line — only findings
    inside the span are absorbed.
    """

    path: str
    line: int
    rule: str
    reason: str
    scope: str = "file"
    span: tuple[int, int] | None = field(default=None, compare=False,
                                         repr=False)

    def covers(self, line: int) -> bool:
        return self.span is None or self.span[0] <= line <= self.span[1]

    def render(self) -> str:
        reason = f" ({self.reason})" if self.reason else ""
        where = "" if self.scope == "file" else f" in {self.scope}"
        return f"{self.path}:{self.line}: allow[{self.rule}]{where}{reason}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "reason": self.reason,
            "scope": self.scope,
        }


#: Matches the allow-marker comment form: ``repro:`` then the rule
#: codes in square brackets, optionally ``-- reason`` after them.
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Z0-9_,\s]+)\]"
    r"(?:\s*(?:--|—)\s*(?P<reason>.*))?"
)


@dataclass
class Module:
    """A parsed source file plus everything rules need to inspect it."""

    path: Path
    #: Path as reported in findings — repo-relative where possible.
    display_path: str
    source: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)

    def allowed_rules(self) -> set[str]:
        return {suppression.rule for suppression in self.suppressions}


def parse_module(path: Path, root: Path | None = None) -> Module:
    """Parse ``path`` into a :class:`Module`.

    Raises :class:`SyntaxError` for unparsable source — the runner
    turns that into a finding rather than crashing the whole run.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    display = _display_path(path, root)
    suppressions = _parse_suppressions(source, display, tree)
    return Module(path=path, display_path=display, source=source,
                  tree=tree, suppressions=suppressions)


def _display_path(path: Path, root: Path | None) -> str:
    if root is not None:
        with contextlib.suppress(ValueError):
            return path.resolve().relative_to(root.resolve()).as_posix()
    return path.as_posix()


def _parse_suppressions(source: str, display_path: str,
                        tree: ast.Module) -> list[Suppression]:
    """Collect allow-comments from real COMMENT tokens only, so the
    marker can be *mentioned* in strings and docstrings without
    registering a suppression.

    A comment whose line falls inside a function body is scoped to the
    innermost such function; anywhere else it is file-scoped.
    """
    suppressions: list[Suppression] = []
    lines = io.StringIO(source)
    try:
        tokens = list(tokenize.generate_tokens(lines.readline))
    except tokenize.TokenError:
        return suppressions
    spans = _function_spans(tree)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(token.string)
        if match is None:
            continue
        reason = (match.group("reason") or "").strip()
        scope, span = _innermost_span(spans, token.start[0])
        for rule in match.group("rules").split(","):
            rule = rule.strip()
            if rule:
                suppressions.append(Suppression(
                    path=display_path, line=token.start[0],
                    rule=rule, reason=reason, scope=scope, span=span))
    return suppressions


def _function_spans(tree: ast.Module) -> list[tuple[int, int, str]]:
    """(first line, last line, qualname) for every function in the file."""
    spans: list[tuple[int, int, str]] = []

    def walk(body: list[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                spans.append((node.lineno, node.end_lineno or node.lineno,
                              qualname))
                walk(node.body, f"{qualname}.")
            elif isinstance(node, ast.ClassDef):
                walk(node.body, f"{prefix}{node.name}.")

    walk(tree.body, "")
    return spans


def _innermost_span(spans: list[tuple[int, int, str]],
                    line: int) -> tuple[str, tuple[int, int] | None]:
    """The tightest function span containing ``line`` (or file scope)."""
    best: tuple[int, int, str] | None = None
    for start, end, qualname in spans:
        if start <= line <= end and \
                (best is None or end - start < best[1] - best[0]):
            best = (start, end, qualname)
    if best is None:
        return "file", None
    return best[2], (best[0], best[1])


class Rule:
    """Common surface of every rule: a code and a one-line summary."""

    #: Stable identifier, e.g. ``"SIM001"`` — what suppressions name.
    code: str = ""
    #: One-line description shown by ``scripts/check.py --list-rules``.
    summary: str = ""


class FileRule(Rule):
    """A rule that inspects one module at a time."""

    def applies_to(self, module: Module) -> bool:
        """Whether this rule runs on ``module`` (default: every file)."""
        return True

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(path=module.display_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=self.code, message=message)


class ProjectRule(Rule):
    """A rule that inspects the whole module set for consistency."""

    def check_project(self, modules: Iterable[Module]) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectContext:
    """Shared interprocedural state for one analysis run.

    The call graph and the effect fixpoint are built lazily, once, and
    shared by every :class:`ContextRule` — three rules asking for
    effects cost one fixpoint.  Imports are deferred because the graph
    modules import this one.
    """

    def __init__(self, modules: list[Module]) -> None:
        self.modules = modules
        self._graph = None
        self._effects = None

    @property
    def graph(self):  # -> repro.analysis.callgraph.CallGraph
        if self._graph is None:
            from repro.analysis.callgraph import build_call_graph
            self._graph = build_call_graph(self.modules)
        return self._graph

    @property
    def effects(self):  # -> repro.analysis.effects.EffectAnalysis
        if self._effects is None:
            from repro.analysis.effects import analyze_effects
            self._effects = analyze_effects(self.modules, graph=self.graph)
        return self._effects


class ContextRule(Rule):
    """A project rule that reads the shared interprocedural context."""

    def check_context(self, context: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule_class: type) -> type:
    """Class decorator adding a rule (by its ``code``) to the registry."""
    rule = rule_class()
    if not rule.code:
        raise ValueError(f"{rule_class.__name__} has no code")
    if rule.code in _REGISTRY and type(_REGISTRY[rule.code]) is not rule_class:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return rule_class


def all_rules() -> list[Rule]:
    """Registered rules, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rule_codes() -> list[str]:
    return sorted(_REGISTRY)


class ScopeTracker(ast.NodeVisitor):
    """Tree walk that maintains the function-nesting context rules need.

    Subclasses get :attr:`function_stack` (innermost last) and
    :meth:`in_generator` while their ``visit_*`` methods run.  The
    tracker also records, per function node, whether it contains a
    ``yield`` — the static signature of a simenv process coroutine.
    """

    def __init__(self) -> None:
        self.function_stack: list[ast.AST] = []
        self._generator_cache: dict[ast.AST, bool] = {}

    # -- context ---------------------------------------------------------

    def current_function(self) -> ast.AST | None:
        return self.function_stack[-1] if self.function_stack else None

    def in_generator(self) -> bool:
        """True when the innermost enclosing function contains ``yield``."""
        function = self.current_function()
        if function is None:
            return False
        cached = self._generator_cache.get(function)
        if cached is None:
            cached = _contains_yield(function)
            self._generator_cache[function] = cached
        return cached

    # -- traversal -------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._walk_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._walk_function(node)

    def _walk_function(self, node: ast.AST) -> None:
        self.function_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.function_stack.pop()


def _contains_yield(function: ast.AST) -> bool:
    """Whether ``function``'s own body yields.

    Nested ``def``/``lambda`` scopes are pruned from the walk — their
    yields make *them* generators, not the enclosing function.
    """
    stack = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False
