"""Rule framework for the simulation-safety analyzer.

A :class:`Module` is one parsed source file.  Rules come in two shapes:

* :class:`FileRule` — examines one module at a time.  Subclasses
  implement :meth:`FileRule.check` and yield :class:`Finding`\\ s; the
  :class:`ScopeTracker` helper answers the questions most rules ask
  (what function am I in? is it a generator?).
* :class:`ProjectRule` — examines the whole module set at once, for
  cross-file consistency checks like the protocol/handler/encoder
  triangle.

Rules self-register via the :func:`register` decorator so the runner,
the CLI, and the tests all agree on the active rule set without a
hand-maintained list.

Suppressions are **file-scoped and explicit**: a ``# repro:
allow[SIM001]`` comment anywhere in a file silences that rule for the
whole file.  Every suppression is parsed into a :class:`Suppression`
record so the runner can count them, report them, and gate their
number — an allowance is visible debt, never a silent one.
"""

from __future__ import annotations

import ast
import contextlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` — the human report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True, order=True)
class Suppression:
    """One ``# repro: allow[RULE]`` comment."""

    path: str
    line: int
    rule: str
    reason: str

    def render(self) -> str:
        reason = f" ({self.reason})" if self.reason else ""
        return f"{self.path}:{self.line}: allow[{self.rule}]{reason}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "reason": self.reason,
        }


#: Matches the allow-marker comment form: ``repro:`` then the rule
#: codes in square brackets, optionally ``-- reason`` after them.
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Z0-9_,\s]+)\]"
    r"(?:\s*(?:--|—)\s*(?P<reason>.*))?"
)


@dataclass
class Module:
    """A parsed source file plus everything rules need to inspect it."""

    path: Path
    #: Path as reported in findings — repo-relative where possible.
    display_path: str
    source: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)

    def allowed_rules(self) -> set[str]:
        return {suppression.rule for suppression in self.suppressions}


def parse_module(path: Path, root: Path | None = None) -> Module:
    """Parse ``path`` into a :class:`Module`.

    Raises :class:`SyntaxError` for unparsable source — the runner
    turns that into a finding rather than crashing the whole run.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    display = _display_path(path, root)
    suppressions = _parse_suppressions(source, display)
    return Module(path=path, display_path=display, source=source,
                  tree=tree, suppressions=suppressions)


def _display_path(path: Path, root: Path | None) -> str:
    if root is not None:
        with contextlib.suppress(ValueError):
            return path.resolve().relative_to(root.resolve()).as_posix()
    return path.as_posix()


def _parse_suppressions(source: str, display_path: str) -> list[Suppression]:
    """Collect allow-comments from real COMMENT tokens only, so the
    marker can be *mentioned* in strings and docstrings without
    registering a suppression."""
    suppressions: list[Suppression] = []
    lines = io.StringIO(source)
    try:
        tokens = list(tokenize.generate_tokens(lines.readline))
    except tokenize.TokenError:
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(token.string)
        if match is None:
            continue
        reason = (match.group("reason") or "").strip()
        for rule in match.group("rules").split(","):
            rule = rule.strip()
            if rule:
                suppressions.append(Suppression(
                    path=display_path, line=token.start[0],
                    rule=rule, reason=reason))
    return suppressions


class Rule:
    """Common surface of every rule: a code and a one-line summary."""

    #: Stable identifier, e.g. ``"SIM001"`` — what suppressions name.
    code: str = ""
    #: One-line description shown by ``scripts/check.py --list-rules``.
    summary: str = ""


class FileRule(Rule):
    """A rule that inspects one module at a time."""

    def applies_to(self, module: Module) -> bool:
        """Whether this rule runs on ``module`` (default: every file)."""
        return True

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(path=module.display_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=self.code, message=message)


class ProjectRule(Rule):
    """A rule that inspects the whole module set for consistency."""

    def check_project(self, modules: Iterable[Module]) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule_class: type) -> type:
    """Class decorator adding a rule (by its ``code``) to the registry."""
    rule = rule_class()
    if not rule.code:
        raise ValueError(f"{rule_class.__name__} has no code")
    if rule.code in _REGISTRY and type(_REGISTRY[rule.code]) is not rule_class:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return rule_class


def all_rules() -> list[Rule]:
    """Registered rules, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rule_codes() -> list[str]:
    return sorted(_REGISTRY)


class ScopeTracker(ast.NodeVisitor):
    """Tree walk that maintains the function-nesting context rules need.

    Subclasses get :attr:`function_stack` (innermost last) and
    :meth:`in_generator` while their ``visit_*`` methods run.  The
    tracker also records, per function node, whether it contains a
    ``yield`` — the static signature of a simenv process coroutine.
    """

    def __init__(self) -> None:
        self.function_stack: list[ast.AST] = []
        self._generator_cache: dict[ast.AST, bool] = {}

    # -- context ---------------------------------------------------------

    def current_function(self) -> ast.AST | None:
        return self.function_stack[-1] if self.function_stack else None

    def in_generator(self) -> bool:
        """True when the innermost enclosing function contains ``yield``."""
        function = self.current_function()
        if function is None:
            return False
        cached = self._generator_cache.get(function)
        if cached is None:
            cached = _contains_yield(function)
            self._generator_cache[function] = cached
        return cached

    # -- traversal -------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._walk_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._walk_function(node)

    def _walk_function(self, node: ast.AST) -> None:
        self.function_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.function_stack.pop()


def _contains_yield(function: ast.AST) -> bool:
    """Whether ``function``'s own body yields.

    Nested ``def``/``lambda`` scopes are pruned from the walk — their
    yields make *them* generators, not the enclosing function.
    """
    stack = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False
