"""Protocol-consistency rules (PROTO001, PROTO002).

The wire vocabulary is declared once — the ``OPERATIONS`` table in
``community/protocol.py`` plus ``register_operation(...)`` extension
calls — and then *used* twice: the server's dispatch table maps each
operation to a handler, and clients encode requests for it through
``make_request``.  PROTO001 checks the three corners of that triangle
against each other, in both directions, so a new operation cannot ship
half-wired and a dead table entry cannot linger.

PROTO002 closes the remaining gap between "wired" and "proven": every
declared operation must also appear in the conformance exchange
scripts (``community/exchanges.py``), which both transport backends
replay with byte-identical transcripts.  A new operation therefore
cannot ship without cross-backend wire coverage.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.core import Finding, Module, ProjectRule, register
from repro.analysis.rules.helpers import string_value


@register
class ProtocolTriangleRule(ProjectRule):
    code = "PROTO001"
    summary = ("every declared PS_* operation has a server handler and a "
               "client encoder, and vice versa")

    def check_project(self, modules: Iterable[Module]) -> Iterator[Finding]:
        modules = list(modules)
        protocol = _module_at(modules, "community/protocol.py")
        server = _module_at(modules, "community/server.py")
        if protocol is None or server is None:
            # Partial runs (e.g. pre-commit on changed files) cannot see
            # the triangle; the full-tree CI run does.
            return
        if not _package_complete(modules, protocol):
            # Same reason with a subtler failure mode: operations and
            # encoders live in sibling modules (filetransfer, discovery),
            # so judging the triangle from a subset of the package would
            # report ops as unhandled or undeclared when their module
            # simply was not analyzed.
            return
        constants = _ps_constants(modules)

        declared = _declared_operations(modules, protocol, constants)
        handled = _handler_operations(server, constants)
        encoded = _encoder_operations(modules, constants)

        for op, (module, node) in sorted(declared.items()):
            if op not in handled:
                yield _finding(self, module, node,
                               f"operation {op} is declared but has no "
                               f"server handler in community/server.py")
            if op not in encoded:
                yield _finding(self, module, node,
                               f"operation {op} is declared but no client "
                               f"ever encodes it (no make_request call)")
        for op, (module, node) in sorted(handled.items()):
            if op not in declared:
                yield _finding(self, module, node,
                               f"server handles {op} but the protocol "
                               f"tables do not declare it")
        for op, (module, node) in sorted(encoded.items()):
            if op not in declared:
                yield _finding(self, module, node,
                               f"make_request({op}) encodes an operation "
                               f"the protocol tables do not declare")


@register
class ConformanceCoverageRule(ProjectRule):
    code = "PROTO002"
    summary = ("every declared PS_* operation appears in the conformance "
               "exchange scripts (community/exchanges.py)")

    def check_project(self, modules: Iterable[Module]) -> Iterator[Finding]:
        modules = list(modules)
        protocol = _module_at(modules, "community/protocol.py")
        exchanges = _module_at(modules, "community/exchanges.py")
        if protocol is None or exchanges is None:
            # Partial runs (changed-file mode) or projects without a
            # conformance script module (e.g. analyzer test fixtures)
            # cannot be judged; the full-tree CI run can.
            return
        if not _package_complete(modules, protocol):
            return
        constants = _ps_constants(modules)
        declared = _declared_operations(modules, protocol, constants)
        exercised = _exercised_operations(exchanges, constants)
        for op, (module, node) in sorted(declared.items()):
            if op not in exercised:
                yield _finding(self, module, node,
                               f"operation {op} is declared but never "
                               f"exercised by a conformance exchange in "
                               f"community/exchanges.py")


def _exercised_operations(exchanges: Module,
                          constants: dict[str, str]) -> set[str]:
    """Every PS_* operation the exchange scripts reference.

    Counts ``make_request(<op>, ...)`` calls plus any bare ``PS_*``
    constant or literal (raw malformed-request payloads are spelled as
    dict literals on purpose).
    """
    exercised: set[str] = set()
    for node in ast.walk(exchanges.tree):
        op = _resolve_op(node, constants)
        if op is not None:
            exercised.add(op)
    return exercised


def _finding(rule: ProjectRule, module: Module, node: ast.AST,
             message: str) -> Finding:
    return Finding(path=module.display_path,
                   line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0),
                   rule=rule.code, message=message)


def _package_complete(modules: list[Module], protocol: Module) -> bool:
    """Whether every module of the protocol's package was analyzed."""
    present = {module.path.resolve() for module in modules}
    return all(sibling.resolve() in present
               for sibling in protocol.path.parent.glob("*.py"))


def _module_at(modules: list[Module], suffix: str) -> Module | None:
    for module in modules:
        if module.display_path.endswith(suffix):
            return module
    return None


def _ps_constants(modules: list[Module]) -> dict[str, str]:
    """Project-wide ``PS_NAME = "literal"`` top-level assignments."""
    constants: dict[str, str] = {}
    for module in modules:
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            value = string_value(node.value)
            if value is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id.startswith("PS_"):
                    constants[target.id] = value
    return constants


def _resolve_op(node: ast.AST, constants: dict[str, str]) -> str | None:
    """An operation name spelled as a literal, a constant, or an
    attribute on the protocol module (``protocol.PS_X``)."""
    literal = string_value(node)
    if literal is not None:
        return literal if literal.startswith("PS_") else None
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    if isinstance(node, ast.Attribute):
        return constants.get(node.attr)
    return None


Site = tuple[Module, ast.AST]


def _declared_operations(modules: list[Module], protocol: Module,
                         constants: dict[str, str]) -> dict[str, Site]:
    declared: dict[str, Site] = {}
    operations_table = _operations_dict(protocol)
    if operations_table is not None:
        for key in operations_table.keys:
            if key is None:
                continue
            op = _resolve_op(key, constants)
            if op is not None:
                declared.setdefault(op, (protocol, key))
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and \
                    _call_name(node) == "register_operation" and node.args:
                op = _resolve_op(node.args[0], constants)
                if op is not None:
                    declared.setdefault(op, (module, node))
    return declared


def _operations_dict(protocol: Module) -> ast.Dict | None:
    for node in protocol.tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "OPERATIONS" \
                    and isinstance(value, ast.Dict):
                return value
    return None


def _handler_operations(server: Module,
                        constants: dict[str, str]) -> dict[str, Site]:
    """Keys of every dict literal in server.py that maps operations.

    A dict counts as a dispatch table when every key resolves to a
    ``PS_*`` operation — robust to the table being renamed or split.
    """
    handled: dict[str, Site] = {}
    for node in ast.walk(server.tree):
        if not isinstance(node, ast.Dict) or not node.keys:
            continue
        resolved: list[tuple[str, ast.AST]] = []
        for key in node.keys:
            if key is None:
                break
            op = _resolve_op(key, constants)
            if op is None:
                break
            resolved.append((op, key))
        else:
            for op, key in resolved:
                handled.setdefault(op, (server, key))
    return handled


def _encoder_operations(modules: list[Module],
                        constants: dict[str, str]) -> dict[str, Site]:
    encoded: dict[str, Site] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and \
                    _call_name(node) == "make_request" and node.args:
                op = _resolve_op(node.args[0], constants)
                if op is not None:
                    encoded.setdefault(op, (module, node))
    return encoded


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
