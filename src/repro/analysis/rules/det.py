"""Interprocedural determinism rules (DET001, DET002).

The file-local SIM rules police *direct* reads: ``time.time()`` spelled
inside a sim-path module, a global ``random.random()`` anywhere.  A
one-line helper defeats them — move the read into ``eval/util.py`` and
call it from ``simenv``.  DET001 closes that hole with the effect
fixpoint (:mod:`repro.analysis.effects`): a function in the determinism
scope (``simenv``, ``shard``, ``radio``) that *transitively* reaches a
wall-clock read or an ambient entropy draw is a finding, with the call
chain spelled out.  Direct sites that a file-local rule already flags
(SIM001/SIM002/SHARD002) are not re-reported — DET001 fires exactly
where they are blind.

DET002 guards the ordering stability of what crosses shard and wire
boundaries: an expression whose order derives from an unordered set —
syntactically, or via a call to a function the effect engine marks
``unordered-return`` — must not reach a ``ShardExchange`` payload or a
serialized frame (``serialize``/``serialize_into``/``make_request``).
``sorted(...)`` is the sanctioned fix and launders the taint.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    ContextRule,
    Finding,
    ProjectContext,
    register,
)
from repro.analysis.effects import (
    AMBIENT_RANDOM,
    CPU_TIME,
    GLOBAL_RANDOM_CALLS,
    UNORDERED_RETURN,
    WALL_CLOCK,
    EffectAnalysis,
    EffectOrigin,
    expression_is_set_ordered,
)
from repro.analysis.callgraph import CallGraph, CallSite, FunctionInfo
from repro.analysis.rules.sim import SIM_PATH_PACKAGES

#: Packages whose functions must stay transitively deterministic: the
#: event engine, the sharded world, and the radio medium are exactly
#: the code the bit-exactness gates referee.
DET_SCOPE_PACKAGES = frozenset({"simenv", "shard", "radio"})

#: Where direct wall-clock reads are already a file-local finding
#: (SIM001 on the sim path, SHARD002 in the shard package).
_CLOCK_POLICED = SIM_PATH_PACKAGES | {"shard"}

#: Entropy sources SIM002's name tables flag directly, everywhere.
_SIM002_COVERED = GLOBAL_RANDOM_CALLS | {"random.Random()",
                                         "random.SystemRandom"}


@register
class TransitiveNondeterminismRule(ContextRule):
    code = "DET001"
    summary = ("no wall-clock or ambient-randomness reach into "
               "simenv/shard/radio code, even through helpers in other "
               "modules (interprocedural SIM001/SIM002)")

    def check_context(self, context: ProjectContext) -> Iterator[Finding]:
        graph = context.graph
        effects = context.effects
        for function_id in sorted(graph.functions):
            info = graph.functions[function_id]
            parts = info.package_parts
            if not any(part in DET_SCOPE_PACKAGES for part in parts):
                continue
            for effect in (WALL_CLOCK, CPU_TIME, AMBIENT_RANDOM):
                if effect == CPU_TIME and "shard" in parts:
                    # The shard coordinator's busy accounting is the
                    # sanctioned process_time user; SHARD002 governs it.
                    continue
                for origin in effects.origins_of(function_id, effect):
                    finding = self._judge(graph, effects, info, origin)
                    if finding is not None:
                        yield finding

    def _judge(self, graph: CallGraph, effects: EffectAnalysis,
               info: FunctionInfo,
               origin: EffectOrigin) -> Finding | None:
        holder = graph.functions.get(origin.holder)
        if holder is None:
            return None
        direct = origin.holder == info.function_id
        if origin.effect in (WALL_CLOCK, CPU_TIME):
            if any(part in _CLOCK_POLICED for part in holder.package_parts):
                # The direct read sits where SIM001/SHARD002 already
                # flag it; one finding at the root is enough.
                return None
        else:  # ambient randomness
            if origin.source in _SIM002_COVERED:
                # SIM002 applies to the whole tree: the direct draw is
                # flagged wherever it lives.
                return None
        chain = effects.chain(info.function_id, origin)
        if not direct:
            # Report only on the innermost in-scope function of the
            # chain: callers further out inherit the same origin and
            # would repeat the finding verbatim.
            for callee_id, _line in chain:
                callee = graph.functions.get(callee_id)
                if callee is not None and any(
                        part in DET_SCOPE_PACKAGES
                        for part in callee.package_parts):
                    return None
        line = origin.line if direct else chain[0][1]
        hops = [info.qualname]
        for callee_id, _line in chain:
            callee = graph.functions.get(callee_id)
            hops.append(callee.qualname if callee is not None else callee_id)
        route = " -> ".join([*hops, origin.source])
        kind = {WALL_CLOCK: "wall-clock read",
                CPU_TIME: "CPU-time read",
                AMBIENT_RANDOM: "ambient randomness"}[origin.effect]
        where = (f"{holder.module.display_path}:{origin.line}"
                 if not direct else f"line {origin.line}")
        return Finding(
            path=info.module.display_path, line=line,
            col=info.node.col_offset, rule=self.code,
            message=(f"{kind} reaches {info.qualname} via {route} "
                     f"(direct site {where}); derive time from env.now "
                     f"and entropy from a named env.random.stream(...), "
                     f"or hoist the read off the simulated path"))


#: Call targets whose arguments become exchange payloads or wire bytes.
_WIRE_SINKS = frozenset({"serialize", "serialize_into", "make_request"})
_EXCHANGE_TYPES = frozenset({"ShardExchange"})


@register
class UnorderedPayloadRule(ContextRule):
    code = "DET002"
    summary = ("no set-iteration-ordered data in ShardExchange payloads "
               "or serialized wire frames; sort before it escapes")

    def check_context(self, context: ProjectContext) -> Iterator[Finding]:
        graph = context.graph
        effects = context.effects
        for function_id in sorted(graph.functions):
            info = graph.functions[function_id]
            sites = {id(site.node): site
                     for site in graph.calls.get(function_id, ())}
            tainted = _call_tainted_names(info, sites, effects)
            yield from self._check_function(info, sites, tainted, effects)

    def _check_function(self, info: FunctionInfo,
                        sites: dict[int, CallSite], tainted: set[str],
                        effects: EffectAnalysis) -> Iterator[Finding]:
        exchange_names = _exchange_locals(info.node)
        for node in ast.walk(info.node):
            payloads: list[tuple[ast.expr, str]] = []
            if isinstance(node, ast.Call):
                sink = _sink_name(node)
                if sink in _EXCHANGE_TYPES:
                    payloads = [(arg, f"{sink}(...) payload")
                                for arg in _payload_args(node)]
                elif sink in _WIRE_SINKS:
                    payloads = [(arg, f"{sink}(...) wire payload")
                                for arg in _payload_args(node)]
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id in exchange_names:
                        payloads.append(
                            (node.value,
                             f"{target.value.id}.{target.attr} exchange "
                             f"field"))
            for expr, what in payloads:
                if _payload_tainted(expr, tainted, sites, effects):
                    yield Finding(
                        path=info.module.display_path, line=expr.lineno,
                        col=expr.col_offset, rule=self.code,
                        message=(f"set-iteration order can reach the "
                                 f"{what} in {info.qualname}; shard "
                                 f"exchanges and wire frames must be "
                                 f"ordering-stable — wrap the data in "
                                 f"sorted(...) before it escapes"))


def _sink_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _payload_args(call: ast.Call) -> list[ast.expr]:
    return [*call.args, *[kw.value for kw in call.keywords]]


def _exchange_locals(function: ast.AST) -> set[str]:
    """Names bound to a freshly constructed exchange in this body."""
    names: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Call) and \
                _sink_name(node.value) in _EXCHANGE_TYPES:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _call_tainted_names(info: FunctionInfo, sites: dict[int, CallSite],
                        effects: EffectAnalysis) -> set[str]:
    """Locals assigned from calls to unordered-return functions."""
    tainted: set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Call) and \
                _call_is_unordered(node.value, sites, effects):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    tainted.add(target.id)
    return tainted


def _call_is_unordered(call: ast.Call, sites: dict[int, CallSite],
                       effects: EffectAnalysis) -> bool:
    site = sites.get(id(call))
    if site is None:
        return False
    return any(UNORDERED_RETURN in effects.effects_of(callee)
               for callee in site.callees)


def _payload_tainted(expr: ast.expr, tainted: set[str],
                     sites: dict[int, CallSite],
                     effects: EffectAnalysis) -> bool:
    if isinstance(expr, ast.Call):
        name = _sink_name(expr)
        if name == "sorted":
            return False
        if _call_is_unordered(expr, sites, effects):
            return True
        if name in {"list", "tuple"} and expr.args:
            return _payload_tainted(expr.args[0], tainted, sites, effects)
    return expression_is_set_ordered(expr, tainted)
