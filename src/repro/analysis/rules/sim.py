"""Simulation-determinism rules (SIM001-SIM005).

SIM001-SIM004 encode the contract that makes Table 8 timings and
parallel sweeps byte-identical: simulated code computes *only* from
the simulation state — the event clock, the named random streams, and
the deterministic data structures feeding them.  SIM005 guards the
allocation discipline of the per-event hot loop (DESIGN.md §10).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import FileRule, Finding, Module, ScopeTracker, register
from repro.analysis.effects import (
    BLOCKING_CALLS,
    BLOCKING_PREFIXES,
    CPU_TIME_READS,
    GLOBAL_RANDOM_CALLS,
    WALL_CLOCK_READS,
)
from repro.analysis.rules.helpers import (
    import_aliases,
    in_packages,
    qualified_name,
    statically_a_set,
)

#: Packages whose code runs on the simulated path.  ``eval`` and
#: ``msc`` are deliberately absent: the harness measures wall clocks
#: and writes report files by design.
SIM_PATH_PACKAGES = frozenset(
    {"simenv", "net", "radio", "peerhood", "community", "mobility"}
)

#: Wall-clock reads.  Any of these on the simulated path couples event
#: outcomes to host speed.  The call tables live in
#: :mod:`repro.analysis.effects` — the effect engine and the file-local
#: rules must never disagree about what counts as a clock.  SIM001
#: also bans CPU-time reads here: on the simulated path even
#: ``process_time`` is a host-dependent input (the shard coordinator's
#: accounting is governed separately by SHARD002).
_WALL_CLOCK = WALL_CLOCK_READS | CPU_TIME_READS

#: Module-level functions of :mod:`random` — the shared, process-global
#: generator no named stream controls.
_GLOBAL_RANDOM = GLOBAL_RANDOM_CALLS

#: Blocking or I/O-bound calls that must never run inside a simenv
#: process coroutine — they stall every simulated device at once.
_BLOCKING_PREFIXES = BLOCKING_PREFIXES
_BLOCKING_CALLS = BLOCKING_CALLS


class _SimPathRule(FileRule):
    """Base for rules scoped to the simulated-path packages."""

    def applies_to(self, module: Module) -> bool:
        return in_packages(module.display_path, SIM_PATH_PACKAGES)


@register
class WallClockRule(_SimPathRule):
    code = "SIM001"
    summary = ("no wall-clock reads (time.time/perf_counter/datetime.now) "
               "in sim-path modules")

    def check(self, module: Module) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            qualified = qualified_name(node, aliases)
            if qualified in _WALL_CLOCK:
                yield self.finding(
                    module, node,
                    f"wall-clock read {qualified} on the simulated path; "
                    f"use env.now (simulated seconds) instead")


@register
class GlobalRandomRule(FileRule):
    """SIM002 applies to the whole tree: *every* draw goes through a
    named stream so traces replay and parallel sweeps stay
    byte-identical."""

    code = "SIM002"
    summary = ("no global random module / unseeded random.Random(); draw "
               "from env.random.stream(name)")

    def check(self, module: Module) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                qualified = qualified_name(node.func, aliases)
                if qualified == "random.Random" and not node.args \
                        and not node.keywords:
                    yield self.finding(
                        module, node,
                        "unseeded random.Random() is seeded from the OS; "
                        "derive one via env.random.stream(name) or pass an "
                        "explicit seed")
                elif qualified == "random.SystemRandom":
                    yield self.finding(
                        module, node,
                        "random.SystemRandom draws from the OS entropy pool "
                        "and can never be replayed")
            elif isinstance(node, (ast.Attribute, ast.Name)):
                qualified = qualified_name(node, aliases)
                if qualified in _GLOBAL_RANDOM:
                    yield self.finding(
                        module, node,
                        f"{qualified} uses the process-global generator; "
                        f"draw from a named env.random.stream(...) instead")


@register
class BlockingCallRule(_SimPathRule):
    code = "SIM003"
    summary = ("no blocking calls (time.sleep/socket/file I/O) inside "
               "simenv process coroutines")

    def check(self, module: Module) -> Iterator[Finding]:
        rule = self
        aliases = import_aliases(module.tree)
        findings: list[Finding] = []

        class Visitor(ScopeTracker):
            def visit_Call(self, node: ast.Call) -> None:
                if self.in_generator():
                    message = _blocking_call_message(node, aliases)
                    if message is not None:
                        findings.append(rule.finding(module, node, message))
                self.generic_visit(node)

        Visitor().visit(module.tree)
        yield from findings


def _blocking_call_message(node: ast.Call, aliases: dict[str, str]) -> str | None:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open" \
            and "open" not in aliases:
        return ("builtin open() inside a process coroutine blocks the "
                "event loop; do file I/O outside the simulation or via a "
                "simulated store")
    qualified = qualified_name(func, aliases)
    if qualified is None:
        return None
    if qualified in _BLOCKING_CALLS or \
            qualified.startswith(_BLOCKING_PREFIXES):
        return (f"blocking call {qualified} inside a process coroutine "
                f"stalls every simulated device; yield a simenv timer or "
                f"move the work off the simulated path")
    return None


@register
class UnorderedIterationRule(_SimPathRule):
    code = "SIM004"
    summary = ("no direct iteration over sets in sim-path modules; wrap "
               "in sorted(...)")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                targets = [generator.iter for generator in node.generators]
            else:
                continue
            for target in targets:
                if statically_a_set(target):
                    yield self.finding(
                        module, target,
                        "iteration over an unordered set; the order feeds "
                        "simulation state, so wrap it in sorted(...)")


#: Modules on the per-event hot loop: every scheduled event runs
#: through them, so one allocation here multiplies by the ~75k events
#: a 30-second 1,024-device crowd fires.  Scoped by *filename* inside
#: the sim-path packages because the packages also hold the designated
#: serialization boundary (``net/messages.py`` owns json) and stats
#: snapshots (``dict(...)`` copies in ``faults.py``/``retry.py``) that
#: run once per report, not once per event.
HOT_LOOP_MODULES = frozenset({
    "events.py", "environment.py", "process.py", "clock.py",
    "framing.py", "buffers.py", "medium.py", "sweep.py",
})

#: Serialization calls that re-encode per event; the boundary modules
#: own these, the hot loop reuses their pre-built encoder/decoder.
_HOT_LOOP_SERIALIZE = frozenset({
    "json.dumps", "json.loads", "json.dump", "json.load",
    "copy.copy", "copy.deepcopy", "pickle.dumps", "pickle.loads",
})


@register
class HotLoopAllocationRule(_SimPathRule):
    code = "SIM005"
    summary = ("no json/pickle/copy serialization or dict(...) "
               "copy-construction inside hot-loop modules")

    def applies_to(self, module: Module) -> bool:
        return (super().applies_to(module)
                and module.display_path.rsplit("/", 1)[-1]
                in HOT_LOOP_MODULES)

    def check(self, module: Module) -> Iterator[Finding]:
        rule = self
        aliases = import_aliases(module.tree)
        findings: list[Finding] = []

        class Visitor(ScopeTracker):
            def visit_Call(self, node: ast.Call) -> None:
                # Module-level setup (pre-built encoders, constants)
                # runs once per import and is fine; only function
                # bodies sit on the per-event path.
                if self.current_function() is not None:
                    message = _hot_loop_call_message(node, aliases)
                    if message is not None:
                        findings.append(rule.finding(module, node, message))
                self.generic_visit(node)

        Visitor().visit(module.tree)
        yield from findings


def _hot_loop_call_message(node: ast.Call,
                           aliases: dict[str, str]) -> str | None:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "dict" \
            and "dict" not in aliases and node.args:
        return ("dict(...) copy-construction allocates a fresh mapping "
                "per event on the hot loop; mutate in place or hoist "
                "the copy out of the per-event path")
    qualified = qualified_name(func, aliases)
    if qualified in _HOT_LOOP_SERIALIZE:
        return (f"{qualified} re-serializes per event on the hot loop; "
                f"the boundary module (net/messages.py) owns encoding — "
                f"reuse its pre-built encoder outside the event path")
    return None


