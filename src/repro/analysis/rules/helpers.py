"""Shared AST helpers for the rule set.

The implementations live in :mod:`repro.analysis.astutil` (imported by
the call-graph/effect engine too, which must not trigger this package's
rule-registration side effects); this module re-exports them for the
rules' convenience.
"""

from repro.analysis.astutil import (
    import_aliases,
    in_packages,
    qualified_name,
    statically_a_set,
    string_value,
)

__all__ = [
    "import_aliases",
    "in_packages",
    "qualified_name",
    "statically_a_set",
    "string_value",
]
