"""Sharded-engine safety rules (SHARD001, SHARD002).

The bit-exactness of the sharded engine (DESIGN.md §9/§11) rests on
two invariants the runtime gates can only sample:

* **Ghosts are read-only.**  A ghost replica's state is owned by
  another shard; every mutation must route through the exchange —
  ``apply_exchange`` and its install/uninstall helpers.  A write
  anywhere else silently forks the replica from its owner, and the
  divergence only surfaces if ``verify_ghosts`` happens to run.
  SHARD001 flags attribute/item writes on values drawn from a
  ``ghosts`` mapping, and — via the parameter-mutation fixpoint —
  ghost state handed to a helper that writes to its parameter.

* **Critical-path accounting is CPU time.**  The coordinator measures
  per-shard busy time with ``time.process_time`` precisely because
  N workers timesharing one host must not book each other's wall
  time (DESIGN.md §11).  SHARD002 flags wall-clock reads anywhere in
  the shard package (use ``process_time`` for accounting, ``env.now``
  for simulated time) and ``process_time`` reads *outside* the
  coordinator (``shard/runner.py``) — in engine/device code even CPU
  time is a nondeterministic input.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    ContextRule,
    FileRule,
    Finding,
    Module,
    ProjectContext,
    register,
)
from repro.analysis.effects import (
    CPU_TIME_READS,
    MUTATOR_METHODS,
    WALL_CLOCK_READS,
    call_mutates_argument,
)
from repro.analysis.callgraph import FunctionInfo
from repro.analysis.rules.helpers import (
    import_aliases,
    in_packages,
    qualified_name,
)

_SHARD_PACKAGE = frozenset({"shard"})

#: Functions allowed to write ghost state: the exchange apply path and
#: its population helpers (the migration path runs through them too).
GHOST_WRITE_ALLOWED = frozenset({"apply_exchange", "_install", "_uninstall"})

#: Files allowed to read ``time.process_time``: the coordinator's
#: busy accounting lives in the runner, nowhere else.
CPU_TIME_ALLOWED_FILES = frozenset({"runner.py"})


@register
class GhostMutationRule(ContextRule):
    code = "SHARD001"
    summary = ("ghost-owned DeviceState is read-only outside the "
               "exchange apply path (engine.apply_exchange and its "
               "install helpers)")

    def check_context(self, context: ProjectContext) -> Iterator[Finding]:
        graph = context.graph
        effects = context.effects
        for function_id in sorted(graph.functions):
            info = graph.functions[function_id]
            if not in_packages(info.module.display_path, _SHARD_PACKAGE):
                continue
            if info.name in GHOST_WRITE_ALLOWED:
                continue
            ghost_names = _ghost_bound_names(info.node)
            sites = {id(site.node): site
                     for site in graph.calls.get(function_id, ())}
            for node in ast.walk(info.node):
                yield from self._check_node(info, node, ghost_names,
                                            sites, effects, graph)

    def _check_node(self, info: FunctionInfo, node: ast.AST,
                    ghost_names: set[str], sites, effects,
                    graph) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if _is_ghost_write_target(target, ghost_names):
                    yield self._finding(
                        info, node,
                        "assigns to ghost-owned state; ghosts are "
                        "replicas of another shard's devices — route the "
                        "write through the exchange (apply_exchange)")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in MUTATOR_METHODS and \
                    _expr_is_ghost(func.value, ghost_names):
                yield self._finding(
                    info, node,
                    f"calls mutating .{func.attr}(...) on ghost-owned "
                    f"state outside the exchange apply path")
            else:
                site = sites.get(id(node))
                if site is not None:
                    for position, arg in enumerate(node.args):
                        if not _expr_is_ghost(arg, ghost_names):
                            continue
                        culprit = call_mutates_argument(effects, site,
                                                        position)
                        if culprit is not None:
                            callee = graph.functions[culprit]
                            yield self._finding(
                                info, node,
                                f"passes ghost-owned state to "
                                f"{callee.qualname} "
                                f"({callee.module.display_path}), which "
                                f"mutates that parameter; ghosts are "
                                f"read-only outside the exchange apply "
                                f"path")

    def _finding(self, info: FunctionInfo, node: ast.AST,
                 message: str) -> Finding:
        return Finding(path=info.module.display_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=self.code,
                       message=f"{info.qualname} {message}")


def _ghosts_attribute(node: ast.AST) -> bool:
    """``<anything>.ghosts`` — the ghost bucket of a shard sim."""
    return isinstance(node, ast.Attribute) and node.attr == "ghosts"


def _ghost_value_expr(node: ast.AST) -> bool:
    """An expression that reads a value out of a ghosts mapping."""
    if isinstance(node, ast.Subscript) and _ghosts_attribute(node.value):
        return True
    if isinstance(node, ast.Call) and \
            isinstance(node.func, ast.Attribute) and \
            node.func.attr == "get" and _ghosts_attribute(node.func.value):
        return True
    return False


def _expr_is_ghost(node: ast.AST, ghost_names: set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ghost_names
    return _ghost_value_expr(node)


def _is_ghost_write_target(target: ast.AST, ghost_names: set[str]) -> bool:
    """``g.x = ...`` / ``g[k] = ...`` where ``g`` is ghost-derived."""
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        return _expr_is_ghost(target.value, ghost_names)
    return False


def _ghost_bound_names(function: ast.AST) -> set[str]:
    """Locals bound to ghost values: subscripts, ``.get``, loop targets
    over ``.values()``/``.items()`` of a ghosts mapping."""
    names: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and \
                _ghost_value_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            iterable = node.iter
            target = node.target
            if isinstance(iterable, ast.Call) and \
                    isinstance(iterable.func, ast.Attribute) and \
                    _ghosts_attribute(iterable.func.value):
                method = iterable.func.attr
                if method == "values" and isinstance(target, ast.Name):
                    names.add(target.id)
                elif method == "items" and \
                        isinstance(target, ast.Tuple) and \
                        len(target.elts) == 2 and \
                        isinstance(target.elts[1], ast.Name):
                    names.add(target.elts[1].id)
    return names


@register
class CriticalPathClockRule(FileRule):
    code = "SHARD002"
    summary = ("shard code reads no wall clocks (accounting uses "
               "time.process_time, simulated logic uses env.now); "
               "process_time itself only in shard/runner.py")

    def applies_to(self, module: Module) -> bool:
        return in_packages(module.display_path, _SHARD_PACKAGE)

    def check(self, module: Module) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        filename = module.display_path.rsplit("/", 1)[-1]
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            qualified = qualified_name(node, aliases)
            if qualified in WALL_CLOCK_READS:
                yield self.finding(
                    module, node,
                    f"wall-clock read {qualified} in shard code: "
                    f"critical-path accounting must use "
                    f"time.process_time (wall time books co-scheduled "
                    f"workers' work on a shared host) and simulated "
                    f"logic must use env.now")
            elif qualified in CPU_TIME_READS and \
                    filename not in CPU_TIME_ALLOWED_FILES:
                yield self.finding(
                    module, node,
                    f"{qualified} outside the coordinator's busy "
                    f"accounting (shard/runner.py); shard state must "
                    f"derive from env.now, not host CPU time")
