"""The project rule set.

Importing this package registers every rule with the framework
registry; :func:`repro.analysis.core.all_rules` is the single source
of truth afterwards.
"""

from repro.analysis.core import Rule, register
from repro.analysis.rules import (  # noqa: F401  (registration side effect)
    det,
    proto,
    shard,
    sim,
)


@register
class ParseFailure(Rule):
    """Pseudo-rule the runner reports when a file fails to parse."""

    code = "PARSE001"
    summary = "source file could not be parsed"


@register
class UnusedSuppression(Rule):
    """Pseudo-rule the runner reports for allowances that silence nothing.

    A stale ``# repro: allow[...]`` is debt that outlived its reason;
    deleting it keeps the suppression count honest.
    """

    code = "SUP001"
    summary = "# repro: allow[...] comment that suppresses no finding"
