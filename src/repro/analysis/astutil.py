"""Shared AST helpers for the rule set."""

from __future__ import annotations

import ast


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the qualified import they denote.

    ``import time`` binds ``time -> time``; ``import datetime as dt``
    binds ``dt -> datetime``; ``from time import perf_counter as pc``
    binds ``pc -> time.perf_counter``.  Only import-introduced names
    appear, so rules resolving through this map never mistake a local
    variable for a module.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname is not None:
                    aliases[name.asname] = name.name
                else:
                    # ``import a.b`` binds only the top package ``a``.
                    top = name.name.split(".", 1)[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module is not None:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def qualified_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain rooted at an imported name.

    ``dt.datetime.now`` with ``dt -> datetime`` resolves to
    ``datetime.datetime.now``; chains rooted at anything but an
    imported name resolve to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def string_value(node: ast.AST) -> str | None:
    """The literal string a node spells, if it is one."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def in_packages(display_path: str, packages: frozenset[str]) -> bool:
    """Whether a file lives under one of the named package directories."""
    return any(part in packages for part in display_path.split("/")[:-1])


_SET_METHODS = frozenset({"intersection", "union", "difference",
                          "symmetric_difference"})


def statically_a_set(node: ast.AST) -> bool:
    """Whether an expression is provably a set at this syntax level."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS \
                and statically_a_set(func.value):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
        return statically_a_set(node.left) or statically_a_set(node.right)
    return False
