"""Per-function effect inference over the project call graph.

Each function gets an *effect set* — the determinism-relevant things
running it may do — seeded from its own body and propagated caller-ward
to a fixpoint over :mod:`repro.analysis.callgraph`:

* ``wall-clock`` — reads a host wall clock (``time.time``,
  ``time.perf_counter``, ``datetime.now``...);
* ``cpu-time`` — reads a CPU-time counter (``time.process_time``),
  the sanctioned primitive for critical-path accounting and a
  determinism hazard everywhere else;
* ``ambient-randomness`` — draws entropy no named stream controls
  (the global :mod:`random` functions, unseeded ``random.Random()``,
  ``uuid.uuid4``, ``os.urandom``, anything in :mod:`secrets`);
* ``blocking-io`` — calls that block on the host (``time.sleep``,
  sockets, subprocesses, file I/O);
* ``unordered-return`` — the function's return value can depend on
  the iteration order of an unordered collection (set iteration that
  escapes through ``return`` without a ``sorted(...)``).

The first four propagate along **every** call edge — if a callee may
read the clock, so may its caller.  ``unordered-return`` propagates
only through *return-positioned* calls (``return g(...)`` or ``x =
g(...); return x``): calling an order-unstable helper is harmless
until its result escapes.

Separately, the engine infers **parameter mutation**: which of a
function's parameters it may assign attributes or items on (directly,
or by passing them onward to a mutating callee).  SHARD001 uses this
to catch ghost state handed to a helper that writes to it.

Every inherited effect keeps an origin chain — caller, call line,
next hop, down to the function holding the direct read — so a finding
can say *how* the clock reaches the simulated path, not just that it
does.  The lattice is finite (origins are drawn from direct sites
only) and effect sets grow monotonically, so the worklist fixpoint
terminates on cyclic call graphs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from collections.abc import Iterable

from repro.analysis.callgraph import (
    CallGraph,
    CallSite,
    FunctionId,
    FunctionInfo,
    build_call_graph,
)
from repro.analysis.core import Module
from repro.analysis.astutil import statically_a_set

# -- effect kinds ------------------------------------------------------------

WALL_CLOCK = "wall-clock"
CPU_TIME = "cpu-time"
AMBIENT_RANDOM = "ambient-randomness"
BLOCKING_IO = "blocking-io"
UNORDERED_RETURN = "unordered-return"

#: Kinds that propagate along every call edge.
TRANSITIVE_EFFECTS = frozenset({WALL_CLOCK, CPU_TIME, AMBIENT_RANDOM,
                                BLOCKING_IO})

# -- the canonical call tables (rules.sim builds its sets from these) --------

#: Host wall-clock reads: couple outcomes to when/how fast the host runs.
WALL_CLOCK_READS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: CPU-time reads: legitimate in coordinator busy accounting
#: (``shard/runner.py``), nondeterministic input anywhere else.
CPU_TIME_READS = frozenset({
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
})

#: Module-level functions of :mod:`random` — the shared, process-global
#: generator no named stream controls.
GLOBAL_RANDOM_CALLS = frozenset({
    "random.random", "random.uniform", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.sample", "random.shuffle",
    "random.getrandbits", "random.randbytes", "random.seed",
    "random.getstate", "random.setstate", "random.gauss",
    "random.normalvariate", "random.lognormvariate", "random.expovariate",
    "random.betavariate", "random.gammavariate", "random.paretovariate",
    "random.triangular", "random.vonmisesvariate", "random.weibullvariate",
    "random.binomialvariate",
})

#: Entropy sources beyond the global generator that SIM002's name
#: tables never covered — the effect engine treats them identically.
OS_ENTROPY_CALLS = frozenset({
    "uuid.uuid1", "uuid.uuid4", "os.urandom", "os.getrandom",
    "random.SystemRandom",
})

_SECRETS_PREFIX = "secrets."

#: Blocking or I/O-bound calls.
BLOCKING_PREFIXES = ("socket.", "subprocess.", "urllib.", "http.client.",
                     "requests.", "select.")
BLOCKING_CALLS = frozenset({
    "time.sleep", "os.open", "os.read", "os.write", "os.system",
    "io.open",
})

#: Methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "add", "update", "extend", "insert", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
})


@dataclass(frozen=True)
class EffectOrigin:
    """The direct site an inherited effect traces back to."""

    effect: str
    #: Function whose body contains the direct read/draw/iteration.
    holder: FunctionId
    #: What was read — an external qualified name (``time.time``) or a
    #: short description for syntactic origins (``set iteration``).
    source: str
    #: Line of the direct site, inside ``holder``'s module.
    line: int


#: One propagation step: (callee the effect arrived through, call line).
Step = tuple[FunctionId, int]


class EffectAnalysis:
    """Effect sets, origin chains and parameter mutation at fixpoint."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: function -> origin -> the step it arrived through (None =
        #: the origin's direct site is in this very function).
        self._origins: dict[FunctionId, dict[EffectOrigin, Step | None]] = {}
        #: function -> parameter name -> line of the (possibly
        #: inherited) mutation evidence.
        self._mutated: dict[FunctionId, dict[str, int]] = {}
        #: function -> ``id()`` of call nodes in return position.
        self._return_sites: dict[FunctionId, set[int]] = {}
        self._seed_direct()
        self._fixpoint()

    # -- queries -------------------------------------------------------

    def effects_of(self, function_id: FunctionId) -> set[str]:
        return {origin.effect
                for origin in self._origins.get(function_id, ())}

    def origins_of(self, function_id: FunctionId,
                   effect: str | None = None) -> list[EffectOrigin]:
        origins = self._origins.get(function_id, {})
        keep = [origin for origin in origins
                if effect is None or origin.effect == effect]
        return sorted(keep, key=lambda o: (o.effect, o.holder, o.line,
                                           o.source))

    def chain(self, function_id: FunctionId,
              origin: EffectOrigin) -> list[Step]:
        """Call hops from ``function_id`` down to the origin's holder.

        Empty when the direct site is in ``function_id`` itself.
        """
        steps: list[Step] = []
        current = function_id
        seen = {current}
        while True:
            step = self._origins.get(current, {}).get(origin)
            if step is None:
                return steps
            callee, _line = step
            steps.append(step)
            if callee in seen:  # cyclic graph: chain already witnessed
                return steps
            seen.add(callee)
            current = callee

    def mutated_params(self, function_id: FunctionId) -> dict[str, int]:
        """Parameter names this function may mutate, with witness lines."""
        return dict(self._mutated.get(function_id, {}))

    # -- direct seeding ------------------------------------------------

    def _seed_direct(self) -> None:
        for function_id, info in self.graph.functions.items():
            origins: dict[EffectOrigin, Step | None] = {}
            for site in self.graph.calls.get(function_id, ()):
                effect, source = _call_effect(site)
                if effect is not None:
                    origins[EffectOrigin(
                        effect=effect, holder=function_id,
                        source=source or "", line=site.line)] = None
            for origin in _unordered_return_origins(function_id, info.node):
                origins[origin] = None
            self._origins[function_id] = origins
            self._return_sites[function_id] = _return_call_ids(info.node)
            self._mutated[function_id] = _direct_mutations(info.node)

    # -- fixpoint ------------------------------------------------------

    def _fixpoint(self) -> None:
        pending = list(self.graph.functions)
        in_queue = set(pending)
        while pending:
            callee_id = pending.pop()
            in_queue.discard(callee_id)
            changed_callers = self._push_to_callers(callee_id)
            for caller_id in changed_callers:
                if caller_id not in in_queue:
                    pending.append(caller_id)
                    in_queue.add(caller_id)

    def _push_to_callers(self, callee_id: FunctionId) -> set[FunctionId]:
        changed: set[FunctionId] = set()
        callee_origins = self._origins.get(callee_id, {})
        callee_mutated = self._mutated.get(callee_id, {})
        callee_info = self.graph.functions.get(callee_id)
        for site in self.graph.callers.get(callee_id, ()):
            caller_id = site.caller
            caller_origins = self._origins[caller_id]
            step: Step = (callee_id, site.line)
            for origin in callee_origins:
                if origin in caller_origins:
                    continue
                if origin.effect in TRANSITIVE_EFFECTS:
                    caller_origins[origin] = step
                    changed.add(caller_id)
                elif origin.effect == UNORDERED_RETURN and \
                        id(site.node) in self._return_sites[caller_id]:
                    caller_origins[origin] = step
                    changed.add(caller_id)
            if callee_mutated and callee_info is not None:
                if self._propagate_mutation(site, callee_info,
                                            callee_mutated):
                    changed.add(caller_id)
        return changed

    def _propagate_mutation(self, site: CallSite, callee: FunctionInfo,
                            callee_mutated: dict[str, int]) -> bool:
        """Caller params handed straight to a mutating callee param."""
        caller_info = self.graph.functions.get(site.caller)
        if caller_info is None:
            return False
        caller_params = _param_names(caller_info)
        caller_mutated = self._mutated[site.caller]
        changed = False
        for position, arg in enumerate(site.node.args):
            if not isinstance(arg, ast.Name) or arg.id not in caller_params:
                continue
            target = param_name_for_arg(callee, position,
                                        method_call=_is_method_call(site,
                                                                    callee))
            if target in callee_mutated and arg.id not in caller_mutated:
                caller_mutated[arg.id] = site.line
                changed = True
        for keyword in site.node.keywords:
            arg = keyword.value
            if keyword.arg is None or not isinstance(arg, ast.Name) or \
                    arg.id not in caller_params:
                continue
            if keyword.arg in callee_mutated and \
                    arg.id not in caller_mutated:
                caller_mutated[arg.id] = site.line
                changed = True
        return changed


def analyze_effects(modules: Iterable[Module],
                    graph: CallGraph | None = None) -> EffectAnalysis:
    """Build the call graph (unless given) and run the effect fixpoint."""
    if graph is None:
        graph = build_call_graph(modules)
    return EffectAnalysis(graph)


def call_mutates_argument(analysis: EffectAnalysis, site: CallSite,
                          position: int | None,
                          keyword: str | None = None) -> FunctionId | None:
    """Whether any callee of ``site`` may mutate the given argument.

    Returns the first mutating callee's id (for the finding message),
    or ``None``.  Positional arguments are mapped past ``self`` for
    method-style dispatch.
    """
    for callee_id in site.callees:
        callee = analysis.graph.functions.get(callee_id)
        if callee is None:
            continue
        mutated = analysis.mutated_params(callee_id)
        if keyword is not None:
            if keyword in mutated:
                return callee_id
            continue
        if position is None:
            continue
        target = param_name_for_arg(
            callee, position, method_call=_is_method_call(site, callee))
        if target is not None and target in mutated:
            return callee_id
    return None


def param_name_for_arg(callee: FunctionInfo, position: int,
                       method_call: bool) -> str | None:
    """The callee parameter a positional argument binds to."""
    params = _param_names_ordered(callee)
    if method_call and params and params[0] in {"self", "cls"}:
        params = params[1:]
    if 0 <= position < len(params):
        return params[position]
    return None


# -- direct-effect extraction ------------------------------------------------


def _call_effect(site: CallSite) -> tuple[str | None, str | None]:
    """The direct effect (if any) of one call site."""
    node = site.node
    external = site.external
    func = node.func
    if external is None:
        if isinstance(func, ast.Name) and func.id == "open" \
                and not site.callees:
            return BLOCKING_IO, "open"
        return None, None
    if external in WALL_CLOCK_READS:
        return WALL_CLOCK, external
    if external in CPU_TIME_READS:
        return CPU_TIME, external
    if external in GLOBAL_RANDOM_CALLS or external in OS_ENTROPY_CALLS \
            or external.startswith(_SECRETS_PREFIX):
        return AMBIENT_RANDOM, external
    if external == "random.Random" and not node.args and not node.keywords:
        return AMBIENT_RANDOM, "random.Random()"
    if external in BLOCKING_CALLS or external.startswith(BLOCKING_PREFIXES):
        return BLOCKING_IO, external
    return None, None


def _param_names(info: FunctionInfo) -> set[str]:
    return set(_param_names_ordered(info))


def _param_names_ordered(info: FunctionInfo) -> list[str]:
    args = info.node.args
    return [arg.arg for arg in [*args.posonlyargs, *args.args]]


def _own_body_nodes(function: ast.AST) -> list[ast.AST]:
    """Nodes of the function's own body, nested defs pruned."""
    nodes: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        nodes.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return nodes


def _direct_mutations(function: ast.AST) -> dict[str, int]:
    """Parameters the function body assigns attributes/items on."""
    args = getattr(function, "args", None)
    if args is None:
        return {}
    params = {arg.arg for arg in [*args.posonlyargs, *args.args,
                                  *args.kwonlyargs]}
    params.discard("self")
    params.discard("cls")
    mutated: dict[str, int] = {}

    def note(name: str, line: int) -> None:
        if name in params and name not in mutated:
            mutated[name] = line

    for node in _own_body_nodes(function):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            base = _attribute_or_item_base(target)
            if base is not None:
                note(base, node.lineno)
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in MUTATOR_METHODS and \
                isinstance(node.func.value, ast.Name):
            note(node.func.value.id, node.lineno)
    return mutated


def _attribute_or_item_base(target: ast.expr) -> str | None:
    """``p`` for assignment targets ``p.attr = ...`` / ``p[k] = ...``."""
    if isinstance(target, (ast.Attribute, ast.Subscript)) and \
            isinstance(target.value, ast.Name):
        return target.value.id
    return None


# -- unordered-return detection ----------------------------------------------


def _unordered_return_origins(function_id: FunctionId,
                              function: ast.AST) -> list[EffectOrigin]:
    tainted = _set_tainted_names(function)
    origins: list[EffectOrigin] = []
    for node in _own_body_nodes(function):
        if isinstance(node, ast.Return) and node.value is not None and \
                expression_is_set_ordered(node.value, tainted):
            origins.append(EffectOrigin(
                effect=UNORDERED_RETURN, holder=function_id,
                source="set-ordered return value", line=node.lineno))
    return origins


def _set_tainted_names(function: ast.AST) -> set[str]:
    """Local names whose value order derives from set iteration."""
    tainted: set[str] = set()
    for _ in range(2):  # one re-pass resolves name-to-name chains
        for node in _own_body_nodes(function):
            if isinstance(node, ast.Assign) and \
                    expression_is_set_ordered(node.value, tainted):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
            elif isinstance(node, ast.For) and \
                    statically_a_set(node.iter):
                # ``for x in {..}: acc.append(...)`` — the accumulator
                # inherits the set's iteration order.
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Call) and \
                            isinstance(inner.func, ast.Attribute) and \
                            inner.func.attr in {"append", "add",
                                                "extend"} and \
                            isinstance(inner.func.value, ast.Name):
                        tainted.add(inner.func.value.id)
    return tainted


def expression_is_set_ordered(node: ast.AST, tainted: set[str]) -> bool:
    """Whether an expression's order derives from an unordered set.

    ``sorted(...)`` launders the taint — imposing a total order is
    exactly the sanctioned fix.
    """
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sorted":
                return False
            if func.id in {"list", "tuple"} and node.args:
                return expression_is_set_ordered(node.args[0], tainted)
        return False
    if statically_a_set(node):
        return True
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
        return any(expression_is_set_ordered(gen.iter, tainted)
                   for gen in node.generators)
    if isinstance(node, (ast.Tuple, ast.List)):
        return any(expression_is_set_ordered(item, tainted)
                   for item in node.elts)
    return False


def _return_call_ids(function: ast.AST) -> set[int]:
    """``id()`` of call nodes whose result escapes through ``return``.

    Covers ``return g(...)`` (unless wrapped in ``sorted(...)``) and
    the two-step ``x = g(...)`` ... ``return x`` form.
    """
    returned_names: set[str] = set()
    return_exprs: list[ast.expr] = []
    for node in _own_body_nodes(function):
        if isinstance(node, ast.Return) and node.value is not None:
            return_exprs.append(node.value)
            if isinstance(node.value, ast.Name):
                returned_names.add(node.value.id)

    ids: set[int] = set()

    def collect(node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "sorted":
                return  # sorted(...) re-imposes a total order
            ids.add(id(node))
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Lambda)):
                collect(child)

    for expr in return_exprs:
        collect(expr)
    for node in _own_body_nodes(function):
        if isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Call) and \
                any(isinstance(t, ast.Name) and t.id in returned_names
                    for t in node.targets):
            collect(node.value)
    return ids


# -- small shared helpers ----------------------------------------------------


def _is_method_call(site: CallSite, callee: FunctionInfo) -> bool:
    """Whether the site dispatches as a bound method (``self`` consumed)."""
    return callee.class_name is not None and \
        site.resolution in {"self", "typed", "name"}
