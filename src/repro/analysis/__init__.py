"""Simulation-safety static analysis.

The reproduction's headline artefacts — Table 8 timings, byte-identical
parallel sweeps, replayable MSC traces — rest on invariants the language
cannot express: no wall-clock reads on the simulated path, every random
draw through a named :meth:`~repro.simenv.rng.RandomStreams.stream`,
no blocking calls inside simenv process coroutines, no iteration-order
nondeterminism feeding the event queue or the wire, and a protocol
table that agrees with its server handlers and client encoders.

This package makes those rules mechanical.  :mod:`repro.analysis.core`
is a small AST rule framework (one parse and one tree walk per file,
rules subscribe to node types); :mod:`repro.analysis.rules` holds the
project rules; :mod:`repro.analysis.runner` walks a source tree,
applies file- and project-scoped rules, honours ``# repro:
allow[RULE]`` per-file suppressions, and renders human or JSON
reports.  ``scripts/check.py`` is the CLI; CI blocks on it.
"""

from repro.analysis.core import (
    ContextRule,
    Finding,
    FileRule,
    Module,
    ProjectContext,
    ProjectRule,
    Suppression,
    all_rules,
    parse_module,
    register,
    rule_codes,
)
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.effects import EffectAnalysis, analyze_effects
from repro.analysis.runner import AnalysisReport, analyze_paths, analyze_tree
from repro.analysis import rules as _rules  # noqa: F401  (registers the rule set)

__all__ = [
    "AnalysisReport",
    "CallGraph",
    "ContextRule",
    "EffectAnalysis",
    "FileRule",
    "Finding",
    "Module",
    "ProjectContext",
    "ProjectRule",
    "Suppression",
    "all_rules",
    "analyze_effects",
    "analyze_paths",
    "analyze_tree",
    "build_call_graph",
    "parse_module",
    "register",
    "rule_codes",
]
