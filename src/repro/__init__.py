"""repro — Social Networking on Mobile Environment on top of PeerHood.

A complete Python reproduction of the 2008 LUT thesis: a discrete-event
mobile-environment simulator (mobility + Bluetooth/WLAN/GPRS radios),
the PeerHood peer-to-peer neighbourhood middleware, the PeerHood
Community social-networking application with dynamic group discovery,
and the centralized-SNS baseline used by the paper's evaluation.

Quickstart::

    from repro import Testbed

    bed = Testbed(seed=7)
    alice = bed.add_member("alice", interests=["football", "music"])
    bob = bed.add_member("bob", interests=["football", "movies"])
    bed.run(30)                       # let discovery happen
    print(alice.groups())             # ['football'] - formed dynamically
"""

from repro.simenv import Environment

__version__ = "1.0.0"

__all__ = ["Environment", "__version__"]


def __getattr__(name):
    """Lazily expose the high-level API to avoid import cycles at setup.

    ``from repro import Testbed`` works once the package is fully
    built; importing :mod:`repro` alone stays cheap.
    """
    if name == "Testbed":
        from repro.eval.testbed import Testbed
        return Testbed
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
