"""The ad-hoc connectivity graph.

Nodes are devices holding an enabled adapter for the technology;
edges are live radio links.  The graph is *derived* from the medium on
every query — mobility changes it continuously, so caching would only
create staleness bugs.  networkx carries the graph algorithms.
"""

from __future__ import annotations

from collections import deque

import networkx as nx

from repro.radio.medium import Medium


class NeighborGraph:
    """Connectivity queries over one technology's links."""

    def __init__(self, medium: Medium, technology_name: str) -> None:
        self.medium = medium
        self.technology_name = technology_name

    def snapshot(self) -> nx.Graph:
        """The current connectivity graph as a networkx graph."""
        graph = nx.Graph()
        device_ids = sorted({device_id for (device_id, tech_name), adapter
                             in self.medium._adapters.items()
                             if tech_name == self.technology_name
                             and adapter.enabled})
        graph.add_nodes_from(device_ids)
        for index, a in enumerate(device_ids):
            for b in device_ids[index + 1:]:
                if self.medium.reachable(a, b, self.technology_name):
                    graph.add_edge(a, b)
        return graph

    def neighbors(self, device_id: str) -> list[str]:
        """Direct (1-hop) neighbours."""
        return self.medium.neighbors(device_id, self.technology_name)

    def k_hop_neighbors(self, device_id: str, k: int) -> dict[str, int]:
        """Devices within ``k`` hops, mapped to their hop distance.

        BFS over live links; the origin itself is excluded.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k!r}")
        distances: dict[str, int] = {device_id: 0}
        frontier = deque([device_id])
        while frontier:
            current = frontier.popleft()
            depth = distances[current]
            if depth >= k:
                continue
            for neighbor in self.neighbors(current):
                if neighbor not in distances:
                    distances[neighbor] = depth + 1
                    frontier.append(neighbor)
        distances.pop(device_id)
        return distances

    def shortest_path(self, source: str, target: str) -> list[str] | None:
        """Hop-minimal path, or ``None`` when partitioned.

        This is the *oracle* path used by tests and benches; the
        protocol-level path comes from
        :class:`~repro.adhoc.routing.RouteDiscovery`, which pays
        virtual time for the flood.
        """
        graph = self.snapshot()
        if source not in graph or target not in graph:
            return None
        try:
            return nx.shortest_path(graph, source, target)
        except nx.NetworkXNoPath:
            return None

    def is_connected_component(self, device_ids: list[str]) -> bool:
        """Whether the given devices are mutually reachable (multi-hop)."""
        graph = self.snapshot()
        if any(device_id not in graph for device_id in device_ids):
            return False
        subgraph_nodes: set[str] = set()
        for component in nx.connected_components(graph):
            if device_ids[0] in component:
                subgraph_nodes = component
                break
        return set(device_ids) <= subgraph_nodes
