"""K-hop dynamic group discovery over the ad-hoc overlay.

The Figure 6 algorithm, run beyond radio range: collect the k-hop
neighbourhood from the connectivity graph, discover a route to each
member, open a relayed channel, fetch the interest list with the same
``PS_GETINTERESTLIST`` operation the single-hop engine uses, and match
interests.  Single-hop discovery is the k=1 special case, which is how
the overlay benches compare reach and latency against the paper's
baseline behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Generator

from repro.adhoc.graph import NeighborGraph
from repro.adhoc.relay import open_multihop
from repro.adhoc.routing import RouteDiscovery
from repro.community import protocol
from repro.community.groups import GroupRegistry
from repro.community.profile import ProfileStore
from repro.community.semantics import ExactMatcher, SemanticMatcher
from repro.community.server import SERVICE_NAME
from repro.net.stack import NetworkStack
from repro.radio.technology import Technology
from repro.simenv import Environment


@dataclass(frozen=True)
class OverlayProbe:
    """Outcome of probing one k-hop member.

    Attributes:
        device_id: Probed device.
        hops: Hop distance at probe time.
        elapsed_s: Route discovery + channel setup + request/response.
        member_id: Member found (``None`` on failure / nobody online).
        matched: Interests matched against ours.
    """

    device_id: str
    hops: int
    elapsed_s: float
    member_id: str | None
    matched: tuple[str, ...]


class OverlayGroupDiscovery:
    """One device's k-hop group discovery run."""

    def __init__(self, env: Environment, stack: NetworkStack,
                 graph: NeighborGraph, technology: Technology,
                 store: ProfileStore,
                 matcher: ExactMatcher | SemanticMatcher | None = None) -> None:
        self.env = env
        self.stack = stack
        self.graph = graph
        self.technology = technology
        self.store = store
        self.matcher = matcher if matcher is not None else ExactMatcher()
        self.router = RouteDiscovery(env, graph, stack.device_id)
        self.groups = GroupRegistry()
        self.probes: list[OverlayProbe] = []

    @property
    def device_id(self) -> str:
        """Device this discovery runs on."""
        return self.stack.device_id

    def discover(self, k: int) -> Generator:
        """Process generator: run Figure 6 over the k-hop neighbourhood.

        Membership comes from the connectivity graph and routes from
        on-demand flooding.  Returns the list of :class:`OverlayProbe`
        outcomes; the group registry accumulates matches.
        """
        active = self.store.active
        if active is None:
            raise PermissionError("no member logged in")
        hood = self.graph.k_hop_neighbors(self.device_id, k)
        for device_id in sorted(hood):
            probe = yield from self._probe(device_id, hood[device_id])
            self.probes.append(probe)
        return self.probes

    def discover_gossip(self, k: int, daemon) -> Generator:
        """Protocol-pure variant: expand by gossip, probe by source route.

        Uses :class:`~repro.adhoc.gossip.GossipDiscovery` to learn the
        k-hop membership *and* a route to each member from the daemons
        themselves — no connectivity oracle, no flood — then runs the
        same Figure 6 matching over the learned members.
        """
        from repro.adhoc.gossip import GossipDiscovery

        active = self.store.active
        if active is None:
            raise PermissionError("no member logged in")
        gossip = GossipDiscovery(self.env, self.stack, daemon,
                                 self.technology)
        result = yield from gossip.collect(k)
        for device_id in sorted(result.paths):
            probe = yield from self._probe_along(
                device_id, result.paths[device_id])
            self.probes.append(probe)
        return result

    def _probe_along(self, device_id: str,
                     path: tuple[str, ...]) -> Generator:
        started = self.env.now
        hops = len(path) - 1
        try:
            channel = yield from open_multihop(self.stack, self.technology,
                                               path, SERVICE_NAME)
            channel.send(protocol.make_request(protocol.PS_GETINTERESTLIST))
            reply = yield channel.recv()
            channel.close()
        except (ConnectionError, OSError):
            return OverlayProbe(device_id, hops, self.env.now - started,
                                None, ())
        if (not isinstance(reply, dict)
                or protocol.response_status(reply) != protocol.STATUS_OK):
            return OverlayProbe(device_id, hops, self.env.now - started,
                                None, ())
        member_id = reply["member_id"]
        matched = self._match(member_id, list(reply.get("interests", [])))
        return OverlayProbe(device_id, hops, self.env.now - started,
                            member_id, tuple(matched))

    def _probe(self, device_id: str, hops: int) -> Generator:
        started = self.env.now
        route = yield from self.router.find_route(device_id)
        if route is None:
            return OverlayProbe(device_id, hops, self.env.now - started,
                                None, ())
        try:
            channel = yield from open_multihop(self.stack, self.technology,
                                               route.path, SERVICE_NAME)
        except (ConnectionError, OSError):
            self.router.invalidate(device_id)
            return OverlayProbe(device_id, hops, self.env.now - started,
                                None, ())
        try:
            channel.send(protocol.make_request(protocol.PS_GETINTERESTLIST))
            reply = yield channel.recv()
        except (ConnectionError, OSError):
            reply = None
        finally:
            channel.close()
        if (not isinstance(reply, dict)
                or protocol.response_status(reply) != protocol.STATUS_OK):
            return OverlayProbe(device_id, hops, self.env.now - started,
                                None, ())
        member_id = reply["member_id"]
        matched = self._match(member_id, list(reply.get("interests", [])))
        return OverlayProbe(device_id, hops, self.env.now - started,
                            member_id, tuple(matched))

    def _match(self, member_id: str, interests: list[str]) -> list[str]:
        active = self.store.active
        matched: list[str] = []
        for own_interest in active.interests:
            canonical = self.matcher.canonical(own_interest)
            for remote_interest in interests:
                if self.matcher.same(own_interest, remote_interest):
                    group = self.groups.ensure(canonical, self.env.now)
                    group.add(member_id, self.env.now)
                    group.add(active.member_id, self.env.now)
                    matched.append(canonical)
                    break
        return matched

    # -- result queries ---------------------------------------------------------

    def group_names(self) -> list[str]:
        """Groups with at least one member."""
        return [group.interest for group in self.groups.non_empty()]

    def members_of(self, interest: str) -> list[str]:
        """Members of one overlay group."""
        group = self.groups.get(self.matcher.canonical(interest))
        return sorted(group.members) if group is not None else []

    def reach(self) -> int:
        """Members successfully probed (online, reachable)."""
        return sum(1 for probe in self.probes if probe.member_id is not None)

    def mean_probe_latency(self) -> float | None:
        """Mean per-member probe latency across successful probes."""
        latencies = [probe.elapsed_s for probe in self.probes
                     if probe.member_id is not None]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)
