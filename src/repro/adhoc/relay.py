"""Store-and-forward relays: multi-hop channels from single-hop links.

Every participating device runs a :class:`RelayNode` listening on the
``_relay`` port.  A multi-hop channel from A to D along A-B-C-D is a
chain of ordinary connections (A->B, B->C, C->D) where B and C pump
frames between their two legs; every hop pays its own transfer time,
so an N-hop message costs N single-hop transfers plus relay queueing —
exactly the latency structure the overlay benches measure.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence

from repro.net.connection import Connection
from repro.net.stack import NetworkStack
from repro.radio.technology import Technology
from repro.simenv import Environment

RELAY_PORT = "_relay"

#: Per-frame processing delay at each relay (queue + copy).
RELAY_FORWARD_DELAY_S = 0.002


class RelayNode:
    """The relay service of one device."""

    def __init__(self, env: Environment, stack: NetworkStack,
                 technology: Technology) -> None:
        self.env = env
        self.stack = stack
        self.technology = technology
        self.frames_forwarded = 0
        self.channels_opened = 0
        stack.listen(RELAY_PORT, self._accept)

    @property
    def device_id(self) -> str:
        """Device this relay runs on."""
        return self.stack.device_id

    def _accept(self, upstream: Connection) -> None:
        self.env.spawn(self._serve(upstream),
                       name=f"relay:{self.device_id}<-{upstream.remote_id}")

    def _serve(self, upstream: Connection) -> Generator:
        header = yield upstream.recv()
        if not isinstance(header, dict) or "route" not in header:
            upstream.close()
            return None
        route: list[str] = list(header["route"])
        port: str = header.get("port", "")
        if not route:
            upstream.close()
            return None
        next_hop = route[0]
        try:
            if len(route) == 1:
                downstream = yield from self.stack.connect(
                    next_hop, port, self.technology)
            else:
                downstream = yield from self.stack.connect(
                    next_hop, RELAY_PORT, self.technology)
                downstream.send({"route": route[1:], "port": port})
        except (ConnectionError, OSError):
            upstream.close()
            return None
        self.channels_opened += 1
        self.env.spawn(self._pump(upstream, downstream),
                       name=f"relay:{self.device_id}:up")
        self.env.spawn(self._pump(downstream, upstream),
                       name=f"relay:{self.device_id}:down")
        return None

    def _pump(self, source: Connection, sink: Connection) -> Generator:
        from repro.simenv import Delay

        while True:
            try:
                payload = yield source.recv()
            except (ConnectionError, OSError):
                payload = None
            if payload is None:
                sink.close()
                source.close()
                return None
            yield Delay(RELAY_FORWARD_DELAY_S)
            try:
                sink.send(payload)
                self.frames_forwarded += 1
            except (ConnectionError, OSError):
                source.close()
                return None


class MultiHopConnection:
    """The source's handle on a relayed channel."""

    def __init__(self, first_hop: Connection, path: Sequence[str]) -> None:
        self._connection = first_hop
        self.path = tuple(path)

    @property
    def hops(self) -> int:
        """Link count along the channel."""
        return len(self.path) - 1

    @property
    def closed(self) -> bool:
        """Whether the first hop (and hence the channel) is down."""
        return self._connection.closed

    def send(self, payload) -> float:
        """Send towards the destination; returns first-hop transfer time."""
        return self._connection.send(payload)

    def recv(self):
        """Yieldable for the next end-to-end inbound payload."""
        return self._connection.recv()

    def close(self) -> None:
        """Tear the channel down hop by hop."""
        self._connection.close()


def open_multihop(stack: NetworkStack, technology: Technology,
                  path: Sequence[str], port: str) -> Generator:
    """Process generator opening a channel along ``path`` to ``port``.

    ``path`` starts at the local device and ends at the destination.
    Single-hop paths degrade to a plain direct connection (wrapped for
    interface uniformity).
    """
    if len(path) < 2:
        raise ValueError(f"path needs at least two devices, got {path!r}")
    if path[0] != stack.device_id:
        raise ValueError(f"path must start at {stack.device_id!r}")
    if len(path) == 2:
        connection = yield from stack.connect(path[1], port, technology)
        return MultiHopConnection(connection, path)
    first = yield from stack.connect(path[1], RELAY_PORT, technology)
    first.send({"route": list(path[2:]), "port": port})
    return MultiHopConnection(first, path)
