"""Multi-hop ad-hoc overlay on top of the PeerHood neighbourhood.

The thesis closes with "performance testing during the dynamic group
discovery in the social network on mobile environment ... in order to
analyze the efficiency of such dynamic group discovery **in any
overlay networks**" (§6), citing the ad-hoc dynamic-group work of
Hong & Gerla (2002) and Chang & Hsu (2000).  PeerHood itself is
strictly single-hop: a peer is either in radio range or gone.

This package adds the overlay that future work asks about:

* :mod:`repro.adhoc.graph` — the connectivity graph induced by the
  radio medium, with k-hop neighbourhood queries;
* :mod:`repro.adhoc.routing` — on-demand route discovery (an
  AODV-style expanding flood, charged in virtual time per hop);
* :mod:`repro.adhoc.relay` — store-and-forward relays that chain
  single-hop connections into a usable multi-hop channel;
* :mod:`repro.adhoc.overlay` — k-hop dynamic group discovery: the
  Figure 6 algorithm run over the overlay instead of the radio range.
"""

from repro.adhoc.gossip import GossipDiscovery, GossipResult
from repro.adhoc.graph import NeighborGraph
from repro.adhoc.overlay import OverlayGroupDiscovery
from repro.adhoc.relay import MultiHopConnection, RelayNode, open_multihop
from repro.adhoc.routing import RouteDiscovery, RouteRecord

__all__ = [
    "GossipDiscovery",
    "GossipResult",
    "MultiHopConnection",
    "NeighborGraph",
    "OverlayGroupDiscovery",
    "RelayNode",
    "RouteDiscovery",
    "RouteRecord",
    "open_multihop",
]
