"""Gossip-based neighbourhood expansion: k-hop discovery without an
oracle.

:class:`~repro.adhoc.graph.NeighborGraph` answers k-hop queries from
the medium — an omniscient shortcut fine for benches but not a
protocol.  This module does it the way deployed middleware would:
every PeerHood daemon already knows its 1-hop neighbourhood, and its
control channel shares that table on request (``get_neighbors``).  A
breadth-first expansion then discovers the k-hop neighbourhood hop by
hop, querying each newly-learned device *through the overlay itself*
(source-routed relay channels along the path it was learned on).

The expansion therefore pays full protocol costs — connection setups,
per-hop relayed transfers, one query per device — and returns not just
the member set but a working route to each member, which
:class:`~repro.adhoc.overlay.OverlayGroupDiscovery` can use directly
instead of flooding.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Generator

from repro.adhoc.relay import open_multihop
from repro.net.stack import NetworkStack
from repro.peerhood.daemon import PHD_PORT, PeerHoodDaemon
from repro.radio.technology import Technology
from repro.simenv import Environment


@dataclass(frozen=True)
class GossipResult:
    """Outcome of one expansion.

    Attributes:
        paths: Device id -> source route (this device first).
        queries: ``get_neighbors`` exchanges performed.
        elapsed_s: Virtual time the expansion took.
    """

    paths: dict[str, tuple[str, ...]]
    queries: int
    elapsed_s: float

    def hop_count(self, device_id: str) -> int:
        """Hops to one discovered device."""
        return len(self.paths[device_id]) - 1


class GossipDiscovery:
    """Protocol-level k-hop neighbourhood expansion for one device."""

    def __init__(self, env: Environment, stack: NetworkStack,
                 daemon: PeerHoodDaemon, technology: Technology) -> None:
        self.env = env
        self.stack = stack
        self.daemon = daemon
        self.technology = technology

    @property
    def device_id(self) -> str:
        """Device this expansion runs from."""
        return self.stack.device_id

    def collect(self, k: int) -> Generator:
        """Process generator: expand to ``k`` hops.

        Returns a :class:`GossipResult`.  Devices whose neighbour
        query fails (moved away mid-expansion, no relay) are kept with
        their path but not expanded further.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k!r}")
        started = self.env.now
        queries = 0
        own = self.device_id
        paths: dict[str, tuple[str, ...]] = {}
        # Depth 1: the local daemon's table, no network needed.
        frontier: list[str] = []
        for neighbor_id in sorted(self.daemon.neighbors):
            paths[neighbor_id] = (own, neighbor_id)
            frontier.append(neighbor_id)
        for _depth in range(2, k + 1):
            next_frontier: list[str] = []
            for device_id in frontier:
                neighbor_lists = yield from self._query_neighbors(
                    paths[device_id])
                queries += 1
                if neighbor_lists is None:
                    continue
                for found in neighbor_lists:
                    if found == own or found in paths:
                        continue
                    paths[found] = paths[device_id] + (found,)
                    next_frontier.append(found)
            frontier = sorted(next_frontier)
            if not frontier:
                break
        return GossipResult(paths, queries, self.env.now - started)

    def _query_neighbors(self, path: tuple[str, ...]) -> Generator:
        try:
            channel = yield from open_multihop(self.stack, self.technology,
                                               path, PHD_PORT)
        except (ConnectionError, OSError):
            return None
        try:
            channel.send({"op": "get_neighbors"})
            reply = yield channel.recv()
        except (ConnectionError, OSError):
            return None
        finally:
            channel.close()
        if not isinstance(reply, dict):
            return None
        return list(reply.get("neighbors", []))
