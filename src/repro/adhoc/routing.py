"""On-demand route discovery over the ad-hoc graph.

An AODV-flavoured expanding flood, reduced to its timing essence: the
route request propagates one hop per ``latency`` tick (every node in
BFS level *d* hears the RREQ at ``d x hop_latency``), and the route
reply travels back along the discovered path.  The discovered route is
cached with a lifetime; mobility invalidates it naturally when a hop
breaks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adhoc.graph import NeighborGraph
from repro.simenv import Delay, Environment


@dataclass(frozen=True)
class RouteRecord:
    """A discovered route and its provenance.

    Attributes:
        path: Device ids from source to destination inclusive.
        discovered_at: Virtual time the RREP arrived back.
        discovery_time_s: Time the flood + reply took.
    """

    path: tuple[str, ...]
    discovered_at: float
    discovery_time_s: float

    @property
    def hops(self) -> int:
        """Link count along the route."""
        return len(self.path) - 1


class RouteDiscovery:
    """Route cache + on-demand discovery for one device."""

    def __init__(self, env: Environment, graph: NeighborGraph,
                 device_id: str, *, route_lifetime_s: float = 30.0) -> None:
        self.env = env
        self.graph = graph
        self.device_id = device_id
        self.route_lifetime_s = route_lifetime_s
        self._cache: dict[str, RouteRecord] = {}
        self.floods = 0

    @property
    def hop_latency_s(self) -> float:
        """Per-hop RREQ/RREP propagation latency.

        A control frame per hop: the technology's one-way latency plus
        a small forwarding cost at each relay.
        """
        technology = None
        adapter = self.graph.medium.adapter(self.device_id,
                                            self.graph.technology_name)
        if adapter is not None:
            technology = adapter.technology
        base = technology.latency_s if technology is not None else 0.01
        return base + 0.005

    def cached_route(self, target: str) -> RouteRecord | None:
        """A still-fresh, still-valid cached route, or ``None``."""
        record = self._cache.get(target)
        if record is None:
            return None
        if self.env.now - record.discovered_at > self.route_lifetime_s:
            del self._cache[target]
            return None
        if not self._route_alive(record):
            del self._cache[target]
            return None
        return record

    def _route_alive(self, record: RouteRecord) -> bool:
        medium = self.graph.medium
        return all(medium.reachable(a, b, self.graph.technology_name)
                   for a, b in zip(record.path, record.path[1:],
                                   strict=False))

    def find_route(self, target: str, max_hops: int = 8):
        """Process generator: discover (or reuse) a route to ``target``.

        Returns a :class:`RouteRecord`, or ``None`` when the flood
        found no path within ``max_hops``.
        """
        cached = self.cached_route(target)
        if cached is not None:
            return cached
        started = self.env.now
        self.floods += 1
        path = self.graph.shortest_path(self.device_id, target)
        if path is None or len(path) - 1 > max_hops:
            # The flood still cost time: it expanded to the ring limit.
            yield Delay(self.hop_latency_s * max_hops)
            return None
        hops = len(path) - 1
        # RREQ out (hops x latency) + RREP back along the path.
        yield Delay(self.hop_latency_s * hops * 2.0)
        # Re-validate after the delay - nodes may have moved mid-flood.
        medium = self.graph.medium
        alive = all(medium.reachable(a, b, self.graph.technology_name)
                    for a, b in zip(path, path[1:], strict=False))
        if not alive:
            return None
        record = RouteRecord(tuple(path), self.env.now,
                             self.env.now - started)
        self._cache[target] = record
        return record

    def invalidate(self, target: str) -> None:
        """Drop a cached route (after a forwarding failure)."""
        self._cache.pop(target, None)
