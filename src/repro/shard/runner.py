"""Coordinator for sharded runs, plus the unsharded reference oracle.

:class:`ShardedRunner` drives N :class:`~repro.shard.engine.ShardSim`
slices through the conservative windowed protocol:

1. build the full device list once (deterministically, from the seed);
2. split ownership by the configured partition (vertical strips or a
   2D tile grid), export initial border ghosts;
3. alternate ``run_window`` with a gather/scatter exchange of
   migrations and ghost refreshes through the coordinator;
4. merge per-shard interaction-log segments and event counts.

Shards run either **in-process** (sequentially, for tests and for
``shards=1``) or as **spawned worker processes** (one per shard, the
production path).  Both modes execute the identical ``ShardSim`` code
and route exchanged state through a pickle round-trip, so their
results are byte-identical — the in-process mode is not a separate
implementation, just a different scheduler.

Under a tile partition with ``rebalance=True`` the coordinator merges
the per-tile loads every shard attaches to its exchange and, when the
greedy rebalancer (:mod:`repro.shard.balance`) finds a better
tile→shard map, broadcasts it inside the ``apply`` message.  The map
is a pure function of the merged loads with deterministic tie-breaks,
and loads are themselves deterministic, so both schedulers derive the
identical map sequence — rebalancing never perturbs the simulation,
only *where* it runs.

Every run also accounts two load-quality figures the benchmarks
report: the **imbalance factor** (sum over windows of the busiest
shard's event count, over the per-shard mean — 1.0 is perfect) and the
**critical path** (sum over windows of the slowest shard's busy
seconds — the wall clock an ideal one-core-per-shard host would see,
since the window barrier makes every window as slow as its slowest
shard).

:func:`reference_run` is the lockstep oracle: the same workload on a
single world with no partitioning, no windows and no ghosts.  Its
interaction logs and event counts are what every sharded run must
reproduce exactly.
"""

from __future__ import annotations

import math
import pickle
import sys
import time
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import Connection

from repro.mobility.geometry import Rect
from repro.radio.medium import Medium
from repro.shard.balance import REBALANCE_THRESHOLD, rebalance_map
from repro.shard.devices import (DeviceState, build_clustered_crowd,
                                 build_crowd)
from repro.shard.engine import (SHARD_TECH, LogEntry, ShardConfig, ShardSim,
                                shard_technology)
from repro.shard.partition import TilePartition, halo_width, spec_for
from repro.simenv.environment import Environment
from repro.mobility.world import World

#: Crowd lattice pitch (metres), matching the bench crowd scenarios.
CROWD_PITCH_M = 50.0


def _rss_mb() -> float:
    """Peak resident set size of this process in MiB."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _alloc_begin() -> list:
    """Start gc/tracemalloc accounting (the ``--alloc`` pass).

    Runs inside each worker process so the figures are genuinely
    per-shard; the timed benchmark pass never carries this overhead.
    """
    import gc
    import tracemalloc
    gc.collect()
    before = gc.get_stats()
    tracemalloc.start()
    return before


def _alloc_end(before: list) -> dict[str, int]:
    """Finish the accounting started by :func:`_alloc_begin`."""
    import gc
    import tracemalloc
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    after = gc.get_stats()

    def delta(key: str) -> int:
        return (sum(stats[key] for stats in after)
                - sum(stats[key] for stats in before))

    return {"gc_collections": delta("collections"),
            "gc_collected": delta("collected"),
            "gc_uncollectable": delta("uncollectable"),
            "tracemalloc_peak_kb": peak // 1024}


@dataclass(frozen=True)
class ShardWorkload:
    """Shard-count-independent description of one sharded scenario."""

    count: int
    seed: int
    sim_seconds: float
    bounds: Rect
    tick: float = 1.0
    scan_interval: float = 5.0
    radio_range: float = 60.0
    walker_fraction: float = 0.25
    walker_speed: float = 1.2
    turn_interval: float = 8.0
    window: float = 5.0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count!r}")
        if self.sim_seconds <= 0:
            raise ValueError(
                f"sim_seconds must be positive, got {self.sim_seconds!r}")
        if self.window <= 0 or self.tick <= 0 or self.scan_interval <= 0:
            raise ValueError("window, tick and scan_interval must be positive")

    def max_speed(self) -> float:
        """Fastest any device can move — the halo's speed bound."""
        return self.walker_speed

    def scan_times(self) -> tuple[float, ...]:
        """Global scan schedule: offset half a tick so scans never
        coincide with movement ticks (ordering then follows from time
        alone, independent of per-shard event sequence numbers)."""
        offset = self.tick * 0.5
        times = []
        k = 0
        while True:
            when = offset + k * self.scan_interval
            if when > self.sim_seconds:
                break
            times.append(when)
            k += 1
        return tuple(times)

    def build_devices(self) -> list[DeviceState]:
        """The full deterministic device list (coordinator-side)."""
        return build_crowd(count=self.count, bounds=self.bounds,
                           seed=self.seed,
                           walker_fraction=self.walker_fraction,
                           walker_speed=self.walker_speed,
                           turn_interval=self.turn_interval)


def crowd_workload(count: int, *, seed: int = 11, sim_seconds: float = 30.0,
                   pitch: float = CROWD_PITCH_M,
                   **overrides) -> ShardWorkload:
    """Constant-density crowd workload: area grows with the count."""
    side = pitch * max(2, math.isqrt(max(1, count - 1)) + 1)
    bounds = Rect(0.0, 0.0, side, side)
    return ShardWorkload(count=count, seed=seed, sim_seconds=sim_seconds,
                         bounds=bounds, **overrides)


@dataclass(frozen=True)
class ClusteredWorkload(ShardWorkload):
    """A crowd concentrated in Gaussian hotspots — the clumpy case.

    Same machinery as :class:`ShardWorkload`, different device builder
    (:func:`repro.shard.devices.build_clustered_crowd`).  With
    ``drift_speed > 0`` the hotspots translate coherently across the
    map (moving flash crowds), so the halo speed bound widens to
    ``walker_speed + drift_speed``.
    """

    clusters: int = 3
    cluster_weights: tuple[float, ...] = ()
    hot_fraction: float = 0.6
    sigma_fraction: float = 0.05
    center_spread: float = 0.1
    center_spread_y: float | None = None
    drift_speed: float = 0.0

    def max_speed(self) -> float:
        """Walk and drift velocities add in the worst case."""
        return self.walker_speed + self.drift_speed

    def build_devices(self) -> list[DeviceState]:
        return build_clustered_crowd(
            count=self.count, bounds=self.bounds, seed=self.seed,
            clusters=self.clusters, cluster_weights=self.cluster_weights,
            hot_fraction=self.hot_fraction,
            sigma_fraction=self.sigma_fraction,
            center_spread=self.center_spread,
            center_spread_y=self.center_spread_y,
            drift_speed=self.drift_speed,
            walker_fraction=self.walker_fraction,
            walker_speed=self.walker_speed,
            turn_interval=self.turn_interval)


def clustered_workload(count: int, *, seed: int = 11,
                       sim_seconds: float = 30.0,
                       pitch: float = CROWD_PITCH_M,
                       **overrides) -> ClusteredWorkload:
    """Hotspot crowd at the same area/count scaling as
    :func:`crowd_workload` — only the density distribution differs."""
    side = pitch * max(2, math.isqrt(max(1, count - 1)) + 1)
    bounds = Rect(0.0, 0.0, side, side)
    return ClusteredWorkload(count=count, seed=seed,
                             sim_seconds=sim_seconds, bounds=bounds,
                             **overrides)


@dataclass
class ShardedResult:
    """Merged outcome of one sharded (or reference) run."""

    shards: int
    device_count: int
    sim_seconds: float
    #: Device-attributable events: walker moves + scans + sightings.
    events: int
    #: device id -> time-ordered interaction log (``None`` when the
    #: run skipped log collection for speed).
    logs: dict[str, list[LogEntry]] | None
    #: Ownership hand-offs over the whole run.
    migrations: int
    #: Synchronisation windows executed.
    windows: int
    #: Peak ghost population across shards and windows.
    ghost_peak: int
    #: Max worker peak RSS in MiB (coordinator RSS for in-process runs).
    worker_rss_mb: float
    #: shard id -> device events fired there (diagnostics).
    per_shard_events: dict[int, int]
    #: Partition geometry the run used (``strip`` or ``tile``).
    partition: str = "strip"
    #: Tile count of the grid (0 under a strip partition).
    tiles: int = 0
    #: Window edges at which the coordinator broadcast a new tile map.
    rebalances: int = 0
    #: Total tile reassignments across all rebalances.
    tiles_migrated: int = 0
    #: Load-imbalance factor: sum over windows of the busiest shard's
    #: event count, over the per-shard mean.  1.0 is perfectly level;
    #: ``shards`` means one shard did all the work.
    imbalance_factor: float = 1.0
    #: Sum over windows of the slowest shard's busy seconds (CPU time,
    #: so worker processes contending for cores don't pollute it) — the
    #: wall clock an ideal one-core-per-shard host would need, since
    #: the barrier makes each window as slow as its slowest shard.
    critical_path_seconds: float = 0.0
    #: shard id -> gc/tracemalloc accounting, present only when the
    #: run was started with ``measure_alloc=True``.
    per_shard_alloc: dict[int, dict[str, int]] | None = None


def _clone(state: DeviceState) -> DeviceState:
    """Pickle round-trip — the same isolation a process hop applies."""
    return pickle.loads(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))


def _initial_split(config: ShardConfig, devices: list[DeviceState],
                   ) -> list[tuple[list[DeviceState], list[DeviceState]]]:
    """Per-shard (owned, ghosts) lists for t=0."""
    partition = config.partition.build(config.bounds, config.shards)
    split: list[tuple[list[DeviceState], list[DeviceState]]] = [
        ([], []) for _ in range(config.shards)]
    for state in devices:
        owner = partition.owner_at(state.x, state.y)
        split[owner][0].append(state)
        for target in partition.ghost_shards(state.x, state.y, config.halo):
            if target != owner:
                split[target][1].append(_clone(state))
    return split


def _route(exchanges: list[tuple[list[tuple[int, DeviceState]],
                                 list[tuple[int, DeviceState]]]],
           shards: int) -> list[tuple[list[DeviceState], list[DeviceState]]]:
    """Gather/scatter: bundle every shard's exports per destination."""
    bundles: list[tuple[list[DeviceState], list[DeviceState]]] = [
        ([], []) for _ in range(shards)]
    for migrations, ghosts in exchanges:
        for target, state in migrations:
            bundles[target][0].append(state)
        for target, state in ghosts:
            bundles[target][1].append(state)
    for immigrants, ghost_specs in bundles:
        immigrants.sort(key=lambda state: state.device_id)
        ghost_specs.sort(key=lambda state: state.device_id)
    return bundles


def _merge_logs(segments: list[dict[str, list[LogEntry]]],
                ) -> dict[str, list[LogEntry]]:
    """Concatenate per-shard log segments, time-ordered per device.

    A device that migrated has segments in several shards; every scan
    time is unique per device, so sorting by time reassembles the
    exact single-world log.
    """
    merged: dict[str, list[LogEntry]] = {}
    for segment in segments:
        for device_id, entries in segment.items():
            bucket = merged.get(device_id)
            if bucket is None:
                merged[device_id] = list(entries)
            else:
                bucket.extend(entries)
    for entries in merged.values():
        entries.sort(key=lambda entry: entry[0])
    return merged


class _WindowStats:
    """Coordinator-side per-window accounting and the rebalance driver.

    Feeds on the stats dict every shard attaches to its exchange
    (``window_events``, ``busy_seconds``, ``tile_loads``).  The
    rebalanced map is a pure function of the merged tile loads with
    deterministic tie-breaks, so the in-process and process schedulers
    derive the identical map sequence; busy seconds are host CPU-time
    measurements and feed *only* the critical-path figure, never any
    decision that could perturb the simulation.
    """

    def __init__(self, config: ShardConfig) -> None:
        self.shards = config.shards
        self.threshold = config.rebalance_threshold
        partition = config.partition.build(config.bounds, config.shards)
        self._tile_map: tuple[int, ...] | None = None
        self.tiles = 0
        if isinstance(partition, TilePartition):
            self._tile_map = partition.tile_map
            self.tiles = len(partition.tile_map)
        self.rebalance = config.rebalance and self._tile_map is not None
        self.rebalances = 0
        self.tiles_migrated = 0
        self.critical_path = 0.0
        self._event_max = 0
        self._event_sum = 0

    def window(self, shard_stats: list[dict],
               ) -> tuple[int, ...] | None:
        """Account one window; return a new tile map to broadcast, or
        ``None`` to keep the current one."""
        events = [stats["window_events"] for stats in shard_stats]
        self._event_max += max(events)
        self._event_sum += sum(events)
        self.critical_path += max(stats["busy_seconds"]
                                  for stats in shard_stats)
        if not self.rebalance:
            return None
        merged: dict[int, int] = {}
        for stats in shard_stats:
            for tile, load in stats["tile_loads"].items():
                merged[tile] = merged.get(tile, 0) + load
        assert self._tile_map is not None
        new_map, moves = rebalance_map(self._tile_map, merged, self.shards,
                                       threshold=self.threshold)
        if not moves:
            return None
        self._tile_map = new_map
        self.rebalances += 1
        self.tiles_migrated += moves
        return new_map

    def finish(self, reports: list[dict]) -> None:
        """Account the final window (it has no exchange message)."""
        self._event_max += max(report["final_window_events"]
                               for report in reports)
        self._event_sum += sum(report["final_window_events"]
                               for report in reports)
        self.critical_path += max(report["final_busy_seconds"]
                                  for report in reports)

    @property
    def imbalance_factor(self) -> float:
        if self._event_sum <= 0:
            return 1.0
        return self._event_max * self.shards / self._event_sum


def _worker_report(sim: ShardSim) -> dict:
    return {"shard_id": sim.shard_id,
            "device_events": sim.device_events,
            "logs": sim.logs,
            "migrations": sim.migrations_out,
            "ghost_peak": len(sim.ghosts),
            "final_window_events": sim.final_window_events(),
            "rss_mb": _rss_mb()}


def _shard_worker(conn: Connection, config: ShardConfig, shard_id: int,
                  owned: list[DeviceState],
                  ghosts: list[DeviceState]) -> None:
    """Worker-process entry point: lockstep windows over the pipe."""
    try:
        alloc_before = _alloc_begin() if config.measure_alloc else None
        sim = ShardSim(config, shard_id, owned, ghosts)
        ghost_peak = len(sim.ghosts)
        boundaries = config.boundaries()
        busy = 0.0
        for index, boundary in enumerate(boundaries):
            # CPU time, not wall: on a host with fewer cores than
            # shards the workers timeshare, and a descheduled worker's
            # wall clock would book its neighbours' work as its own.
            started = time.process_time()
            sim.run_window(boundary)
            busy += time.process_time() - started
            if index == len(boundaries) - 1:
                break
            exchange = sim.collect_exchange()
            stats = {"tile_loads": exchange.tile_loads,
                     "window_events": exchange.window_events,
                     "busy_seconds": busy}
            busy = 0.0
            conn.send(("exchange", exchange.migrations, exchange.ghosts,
                       stats))
            message = conn.recv()
            if message[0] != "apply":  # pragma: no cover - protocol guard
                raise RuntimeError(f"unexpected message {message[0]!r}")
            sim.apply_exchange(message[1], message[2], message[3])
            ghost_peak = max(ghost_peak, len(sim.ghosts))
        sim.stop()
        report = _worker_report(sim)
        report["ghost_peak"] = ghost_peak
        report["final_busy_seconds"] = busy
        if alloc_before is not None:
            report["alloc"] = _alloc_end(alloc_before)
        conn.send(("report", report))
    except BaseException as exc:  # noqa: B036 - forwarded to coordinator
        import traceback
        conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
        raise
    finally:
        conn.close()


class ShardedRunner:
    """Partition one workload across shards and run it to completion."""

    def __init__(self, workload: ShardWorkload, shards: int, *,
                 processes: bool | None = None, collect_logs: bool = True,
                 verify_ghosts: bool = False, partition: str = "strip",
                 rebalance: bool = False,
                 rebalance_threshold: float = REBALANCE_THRESHOLD,
                 measure_alloc: bool = False) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        self.workload = workload
        self.shards = shards
        #: Default: worker processes once there is real fan-out.
        self.processes = (shards > 1) if processes is None else processes
        halo = halo_width(workload.radio_range, workload.max_speed(),
                          workload.window)
        spec = spec_for(partition, workload.bounds, shards, halo)
        if rebalance and spec.kind != "tile":
            raise ValueError("rebalancing requires the tile partition "
                             f"(got {partition!r})")
        self.config = ShardConfig(
            seed=workload.seed, bounds=workload.bounds, shards=shards,
            sim_seconds=workload.sim_seconds, tick=workload.tick,
            window=workload.window, radio_range=workload.radio_range,
            halo=halo,
            scan_times=workload.scan_times(), collect_logs=collect_logs,
            verify_ghosts=verify_ghosts, partition=spec,
            rebalance=rebalance, rebalance_threshold=rebalance_threshold,
            measure_alloc=measure_alloc)

    def run(self) -> ShardedResult:
        devices = self.workload.build_devices()
        split = _initial_split(self.config, devices)
        stats = _WindowStats(self.config)
        if self.processes and self.shards > 1:
            reports = self._run_processes(split, stats)
        else:
            reports = self._run_inline(split, stats)
        reports.sort(key=lambda report: report["shard_id"])
        stats.finish(reports)
        logs = None
        if self.config.collect_logs:
            logs = _merge_logs([report["logs"] for report in reports])
        per_shard_alloc = None
        if self.config.measure_alloc:
            per_shard_alloc = {report["shard_id"]: report["alloc"]
                               for report in reports if "alloc" in report}
        return ShardedResult(
            shards=self.shards, device_count=len(devices),
            sim_seconds=self.workload.sim_seconds,
            events=sum(report["device_events"] for report in reports),
            logs=logs,
            migrations=sum(report["migrations"] for report in reports),
            windows=len(self.config.boundaries()),
            ghost_peak=max(report["ghost_peak"] for report in reports),
            worker_rss_mb=max(report["rss_mb"] for report in reports),
            per_shard_events={report["shard_id"]: report["device_events"]
                              for report in reports},
            partition=self.config.partition.kind,
            tiles=stats.tiles,
            rebalances=stats.rebalances,
            tiles_migrated=stats.tiles_migrated,
            imbalance_factor=stats.imbalance_factor,
            critical_path_seconds=stats.critical_path,
            per_shard_alloc=per_shard_alloc)

    # -- in-process scheduler ---------------------------------------------

    def _run_inline(self, split, stats: _WindowStats) -> list[dict]:
        # In-process shards share one interpreter, so the alloc figures
        # are process-wide (exact for shards=1, joint otherwise); the
        # process scheduler is the genuinely per-shard path.
        alloc_before = (_alloc_begin() if self.config.measure_alloc
                        else None)
        sims = [ShardSim(self.config, shard_id, owned, ghosts)
                for shard_id, (owned, ghosts) in enumerate(split)]
        ghost_peaks = [len(sim.ghosts) for sim in sims]
        busy = [0.0] * len(sims)
        boundaries = self.config.boundaries()
        for index, boundary in enumerate(boundaries):
            for sim in sims:
                # Shards run back-to-back in this one process, so
                # per-shard CPU-time deltas attribute work exactly.
                started = time.process_time()
                sim.run_window(boundary)
                busy[sim.shard_id] += time.process_time() - started
            if index == len(boundaries) - 1:
                break
            exchanges = []
            shard_stats = []
            for sim in sims:
                exchange = sim.collect_exchange()
                shard_stats.append({"tile_loads": exchange.tile_loads,
                                    "window_events": exchange.window_events,
                                    "busy_seconds": busy[sim.shard_id]})
                # The pickle round-trip mirrors process-mode isolation:
                # a routed state must never share live objects with the
                # exporting shard.
                exchanges.append(
                    ([(target, _clone(state))
                      for target, state in exchange.migrations],
                     [(target, _clone(state))
                      for target, state in exchange.ghosts]))
            busy = [0.0] * len(sims)
            bundles = _route(exchanges, self.shards)
            new_map = stats.window(shard_stats)
            for sim, (immigrants, ghost_specs) in zip(sims, bundles,
                                                      strict=True):
                sim.apply_exchange(immigrants, ghost_specs, new_map)
                ghost_peaks[sim.shard_id] = max(ghost_peaks[sim.shard_id],
                                                len(sim.ghosts))
        alloc = _alloc_end(alloc_before) if alloc_before is not None else None
        reports = []
        for sim in sims:
            sim.stop()
            report = _worker_report(sim)
            report["ghost_peak"] = ghost_peaks[sim.shard_id]
            report["final_busy_seconds"] = busy[sim.shard_id]
            if alloc is not None:
                report["alloc"] = dict(alloc)
            reports.append(report)
        return reports

    # -- process scheduler ------------------------------------------------

    def _run_processes(self, split, stats: _WindowStats) -> list[dict]:
        context = get_context("spawn")
        workers = []
        pipes: list[Connection] = []
        try:
            for shard_id, (owned, ghosts) in enumerate(split):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_shard_worker,
                    args=(child_conn, self.config, shard_id, owned, ghosts),
                    name=f"shard-{shard_id}", daemon=True)
                process.start()
                child_conn.close()
                workers.append(process)
                pipes.append(parent_conn)
            boundaries = self.config.boundaries()
            for _ in range(len(boundaries) - 1):
                exchanges = [self._recv(conn, "exchange") for conn in pipes]
                bundles = _route([(message[1], message[2])
                                  for message in exchanges], self.shards)
                new_map = stats.window([message[3]
                                        for message in exchanges])
                for conn, (immigrants, ghost_specs) in zip(pipes, bundles,
                                                           strict=True):
                    conn.send(("apply", immigrants, ghost_specs, new_map))
            return [self._recv(conn, "report")[1] for conn in pipes]
        finally:
            for conn in pipes:
                conn.close()
            for process in workers:
                process.join(timeout=60.0)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join(timeout=10.0)

    @staticmethod
    def _recv(conn: Connection, expected: str) -> tuple:
        try:
            message = conn.recv()
        except EOFError as exc:
            raise RuntimeError("shard worker died without a report; "
                               "see worker stderr") from exc
        if message[0] == "error":
            raise RuntimeError(f"shard worker failed:\n{message[1]}")
        if message[0] != expected:  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected {expected!r}, got {message[0]!r}")
        return message


def reference_run(workload: ShardWorkload, *,
                  collect_logs: bool = True) -> ShardedResult:
    """The lockstep oracle: one world, no partition, no windows.

    Deliberately a separate code path from :class:`ShardSim` — it
    shares only the device builder and the scan schedule, so an
    agreement between reference and sharded runs certifies the whole
    window/halo/migration machinery, not a shared bug.
    """
    devices = workload.build_devices()
    env = Environment(seed=workload.seed)
    world = World(env, bounds=workload.bounds, tick=workload.tick,
                  cell_size=workload.radio_range)
    medium = Medium(world)
    technology = shard_technology(workload.radio_range)
    events = 0
    logs: dict[str, list[LogEntry]] = {}

    def count_moves(report) -> None:
        nonlocal events
        events += len(report.moved)

    world.on_moves(count_moves)
    with world.batch():
        for state in devices:
            world.add_node(state.device_id, state.position(), state.model)
            medium.attach(state.device_id, technology)

    def scan(device_id: str) -> None:
        nonlocal events
        listing = medium.neighbors(device_id, SHARD_TECH)
        events += 1 + len(listing)
        if collect_logs:
            logs.setdefault(device_id, []).append(
                (env.now, tuple(listing)))

    for state in devices:
        for base in workload.scan_times():
            when = base + state.scan_phase
            if 0.0 < when <= workload.sim_seconds:
                env.call_at(when, scan, state.device_id)
    started = time.process_time()
    env.run(until=workload.sim_seconds)
    busy = time.process_time() - started
    world.stop()
    return ShardedResult(
        shards=1, device_count=len(devices),
        sim_seconds=workload.sim_seconds, events=events,
        logs=logs if collect_logs else None, migrations=0, windows=1,
        ghost_peak=0, worker_rss_mb=_rss_mb(),
        per_shard_events={0: events},
        critical_path_seconds=busy)
