"""Coordinator for sharded runs, plus the unsharded reference oracle.

:class:`ShardedRunner` drives N :class:`~repro.shard.engine.ShardSim`
slices through the conservative windowed protocol:

1. build the full device list once (deterministically, from the seed);
2. split ownership by strip, export initial border ghosts;
3. alternate ``run_window`` with a gather/scatter exchange of
   migrations and ghost refreshes through the coordinator;
4. merge per-shard interaction-log segments and event counts.

Shards run either **in-process** (sequentially, for tests and for
``shards=1``) or as **spawned worker processes** (one per shard, the
production path).  Both modes execute the identical ``ShardSim`` code
and route exchanged state through a pickle round-trip, so their
results are byte-identical — the in-process mode is not a separate
implementation, just a different scheduler.

:func:`reference_run` is the lockstep oracle: the same workload on a
single world with no partitioning, no windows and no ghosts.  Its
interaction logs and event counts are what every sharded run must
reproduce exactly.
"""

from __future__ import annotations

import math
import pickle
import sys
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import Connection

from repro.mobility.geometry import Rect
from repro.radio.medium import Medium
from repro.shard.devices import DeviceState, build_crowd
from repro.shard.engine import (SHARD_TECH, LogEntry, ShardConfig, ShardSim,
                                shard_technology)
from repro.shard.partition import StripPartition, halo_width
from repro.simenv.environment import Environment
from repro.mobility.world import World

#: Crowd lattice pitch (metres), matching the bench crowd scenarios.
CROWD_PITCH_M = 50.0


def _rss_mb() -> float:
    """Peak resident set size of this process in MiB."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


@dataclass(frozen=True)
class ShardWorkload:
    """Shard-count-independent description of one sharded scenario."""

    count: int
    seed: int
    sim_seconds: float
    bounds: Rect
    tick: float = 1.0
    scan_interval: float = 5.0
    radio_range: float = 60.0
    walker_fraction: float = 0.25
    walker_speed: float = 1.2
    turn_interval: float = 8.0
    window: float = 5.0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count!r}")
        if self.sim_seconds <= 0:
            raise ValueError(
                f"sim_seconds must be positive, got {self.sim_seconds!r}")
        if self.window <= 0 or self.tick <= 0 or self.scan_interval <= 0:
            raise ValueError("window, tick and scan_interval must be positive")

    def scan_times(self) -> tuple[float, ...]:
        """Global scan schedule: offset half a tick so scans never
        coincide with movement ticks (ordering then follows from time
        alone, independent of per-shard event sequence numbers)."""
        offset = self.tick * 0.5
        times = []
        k = 0
        while True:
            when = offset + k * self.scan_interval
            if when > self.sim_seconds:
                break
            times.append(when)
            k += 1
        return tuple(times)

    def build_devices(self) -> list[DeviceState]:
        """The full deterministic device list (coordinator-side)."""
        return build_crowd(count=self.count, bounds=self.bounds,
                           seed=self.seed,
                           walker_fraction=self.walker_fraction,
                           walker_speed=self.walker_speed,
                           turn_interval=self.turn_interval)


def crowd_workload(count: int, *, seed: int = 11, sim_seconds: float = 30.0,
                   pitch: float = CROWD_PITCH_M,
                   **overrides) -> ShardWorkload:
    """Constant-density crowd workload: area grows with the count."""
    side = pitch * max(2, math.isqrt(max(1, count - 1)) + 1)
    bounds = Rect(0.0, 0.0, side, side)
    return ShardWorkload(count=count, seed=seed, sim_seconds=sim_seconds,
                         bounds=bounds, **overrides)


@dataclass
class ShardedResult:
    """Merged outcome of one sharded (or reference) run."""

    shards: int
    device_count: int
    sim_seconds: float
    #: Device-attributable events: walker moves + scans + sightings.
    events: int
    #: device id -> time-ordered interaction log (``None`` when the
    #: run skipped log collection for speed).
    logs: dict[str, list[LogEntry]] | None
    #: Ownership hand-offs over the whole run.
    migrations: int
    #: Synchronisation windows executed.
    windows: int
    #: Peak ghost population across shards and windows.
    ghost_peak: int
    #: Max worker peak RSS in MiB (coordinator RSS for in-process runs).
    worker_rss_mb: float
    #: shard id -> device events fired there (diagnostics).
    per_shard_events: dict[int, int]


def _clone(state: DeviceState) -> DeviceState:
    """Pickle round-trip — the same isolation a process hop applies."""
    return pickle.loads(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))


def _initial_split(config: ShardConfig, devices: list[DeviceState],
                   ) -> list[tuple[list[DeviceState], list[DeviceState]]]:
    """Per-shard (owned, ghosts) lists for t=0."""
    partition = StripPartition(config.bounds, config.shards)
    split: list[tuple[list[DeviceState], list[DeviceState]]] = [
        ([], []) for _ in range(config.shards)]
    for state in devices:
        owner = partition.owner_of(state.x)
        split[owner][0].append(state)
        for target in partition.shards_within(state.x, config.halo):
            if target != owner:
                split[target][1].append(_clone(state))
    return split


def _route(exchanges: list[tuple[list[tuple[int, DeviceState]],
                                 list[tuple[int, DeviceState]]]],
           shards: int) -> list[tuple[list[DeviceState], list[DeviceState]]]:
    """Gather/scatter: bundle every shard's exports per destination."""
    bundles: list[tuple[list[DeviceState], list[DeviceState]]] = [
        ([], []) for _ in range(shards)]
    for migrations, ghosts in exchanges:
        for target, state in migrations:
            bundles[target][0].append(state)
        for target, state in ghosts:
            bundles[target][1].append(state)
    for immigrants, ghost_specs in bundles:
        immigrants.sort(key=lambda state: state.device_id)
        ghost_specs.sort(key=lambda state: state.device_id)
    return bundles


def _merge_logs(segments: list[dict[str, list[LogEntry]]],
                ) -> dict[str, list[LogEntry]]:
    """Concatenate per-shard log segments, time-ordered per device.

    A device that migrated has segments in several shards; every scan
    time is unique per device, so sorting by time reassembles the
    exact single-world log.
    """
    merged: dict[str, list[LogEntry]] = {}
    for segment in segments:
        for device_id, entries in segment.items():
            bucket = merged.get(device_id)
            if bucket is None:
                merged[device_id] = list(entries)
            else:
                bucket.extend(entries)
    for entries in merged.values():
        entries.sort(key=lambda entry: entry[0])
    return merged


def _worker_report(sim: ShardSim) -> dict:
    return {"shard_id": sim.shard_id,
            "device_events": sim.device_events,
            "logs": sim.logs,
            "migrations": sim.migrations_out,
            "ghost_peak": len(sim.ghosts),
            "rss_mb": _rss_mb()}


def _shard_worker(conn: Connection, config: ShardConfig, shard_id: int,
                  owned: list[DeviceState],
                  ghosts: list[DeviceState]) -> None:
    """Worker-process entry point: lockstep windows over the pipe."""
    try:
        sim = ShardSim(config, shard_id, owned, ghosts)
        ghost_peak = len(sim.ghosts)
        boundaries = config.boundaries()
        for index, boundary in enumerate(boundaries):
            sim.run_window(boundary)
            if index == len(boundaries) - 1:
                break
            exchange = sim.collect_exchange()
            conn.send(("exchange", exchange.migrations, exchange.ghosts))
            message = conn.recv()
            if message[0] != "apply":  # pragma: no cover - protocol guard
                raise RuntimeError(f"unexpected message {message[0]!r}")
            sim.apply_exchange(message[1], message[2])
            ghost_peak = max(ghost_peak, len(sim.ghosts))
        sim.stop()
        report = _worker_report(sim)
        report["ghost_peak"] = ghost_peak
        conn.send(("report", report))
    except BaseException as exc:  # noqa: B036 - forwarded to coordinator
        import traceback
        conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
        raise
    finally:
        conn.close()


class ShardedRunner:
    """Partition one workload across shards and run it to completion."""

    def __init__(self, workload: ShardWorkload, shards: int, *,
                 processes: bool | None = None, collect_logs: bool = True,
                 verify_ghosts: bool = False) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        self.workload = workload
        self.shards = shards
        #: Default: worker processes once there is real fan-out.
        self.processes = (shards > 1) if processes is None else processes
        self.config = ShardConfig(
            seed=workload.seed, bounds=workload.bounds, shards=shards,
            sim_seconds=workload.sim_seconds, tick=workload.tick,
            window=workload.window, radio_range=workload.radio_range,
            halo=halo_width(workload.radio_range, workload.walker_speed,
                            workload.window),
            scan_times=workload.scan_times(), collect_logs=collect_logs,
            verify_ghosts=verify_ghosts)

    def run(self) -> ShardedResult:
        devices = self.workload.build_devices()
        split = _initial_split(self.config, devices)
        if self.processes and self.shards > 1:
            reports = self._run_processes(split)
        else:
            reports = self._run_inline(split)
        reports.sort(key=lambda report: report["shard_id"])
        logs = None
        if self.config.collect_logs:
            logs = _merge_logs([report["logs"] for report in reports])
        return ShardedResult(
            shards=self.shards, device_count=len(devices),
            sim_seconds=self.workload.sim_seconds,
            events=sum(report["device_events"] for report in reports),
            logs=logs,
            migrations=sum(report["migrations"] for report in reports),
            windows=len(self.config.boundaries()),
            ghost_peak=max(report["ghost_peak"] for report in reports),
            worker_rss_mb=max(report["rss_mb"] for report in reports),
            per_shard_events={report["shard_id"]: report["device_events"]
                              for report in reports})

    # -- in-process scheduler ---------------------------------------------

    def _run_inline(self, split) -> list[dict]:
        sims = [ShardSim(self.config, shard_id, owned, ghosts)
                for shard_id, (owned, ghosts) in enumerate(split)]
        ghost_peaks = [len(sim.ghosts) for sim in sims]
        boundaries = self.config.boundaries()
        for index, boundary in enumerate(boundaries):
            for sim in sims:
                sim.run_window(boundary)
            if index == len(boundaries) - 1:
                break
            exchanges = []
            for sim in sims:
                exchange = sim.collect_exchange()
                # The pickle round-trip mirrors process-mode isolation:
                # a routed state must never share live objects with the
                # exporting shard.
                exchanges.append(
                    ([(target, _clone(state))
                      for target, state in exchange.migrations],
                     [(target, _clone(state))
                      for target, state in exchange.ghosts]))
            bundles = _route(exchanges, self.shards)
            for sim, (immigrants, ghost_specs) in zip(sims, bundles,
                                                      strict=True):
                sim.apply_exchange(immigrants, ghost_specs)
                ghost_peaks[sim.shard_id] = max(ghost_peaks[sim.shard_id],
                                                len(sim.ghosts))
        reports = []
        for sim in sims:
            sim.stop()
            report = _worker_report(sim)
            report["ghost_peak"] = ghost_peaks[sim.shard_id]
            reports.append(report)
        return reports

    # -- process scheduler ------------------------------------------------

    def _run_processes(self, split) -> list[dict]:
        context = get_context("spawn")
        workers = []
        pipes: list[Connection] = []
        try:
            for shard_id, (owned, ghosts) in enumerate(split):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_shard_worker,
                    args=(child_conn, self.config, shard_id, owned, ghosts),
                    name=f"shard-{shard_id}", daemon=True)
                process.start()
                child_conn.close()
                workers.append(process)
                pipes.append(parent_conn)
            boundaries = self.config.boundaries()
            for _ in range(len(boundaries) - 1):
                exchanges = [self._recv(conn, "exchange") for conn in pipes]
                bundles = _route([(message[1], message[2])
                                  for message in exchanges], self.shards)
                for conn, (immigrants, ghost_specs) in zip(pipes, bundles,
                                                           strict=True):
                    conn.send(("apply", immigrants, ghost_specs))
            return [self._recv(conn, "report")[1] for conn in pipes]
        finally:
            for conn in pipes:
                conn.close()
            for process in workers:
                process.join(timeout=60.0)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join(timeout=10.0)

    @staticmethod
    def _recv(conn: Connection, expected: str) -> tuple:
        try:
            message = conn.recv()
        except EOFError as exc:
            raise RuntimeError("shard worker died without a report; "
                               "see worker stderr") from exc
        if message[0] == "error":
            raise RuntimeError(f"shard worker failed:\n{message[1]}")
        if message[0] != expected:  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected {expected!r}, got {message[0]!r}")
        return message


def reference_run(workload: ShardWorkload, *,
                  collect_logs: bool = True) -> ShardedResult:
    """The lockstep oracle: one world, no partition, no windows.

    Deliberately a separate code path from :class:`ShardSim` — it
    shares only the device builder and the scan schedule, so an
    agreement between reference and sharded runs certifies the whole
    window/halo/migration machinery, not a shared bug.
    """
    devices = workload.build_devices()
    env = Environment(seed=workload.seed)
    world = World(env, bounds=workload.bounds, tick=workload.tick,
                  cell_size=workload.radio_range)
    medium = Medium(world)
    technology = shard_technology(workload.radio_range)
    events = 0
    logs: dict[str, list[LogEntry]] = {}

    def count_moves(report) -> None:
        nonlocal events
        events += len(report.moved)

    world.on_moves(count_moves)
    with world.batch():
        for state in devices:
            world.add_node(state.device_id, state.position(), state.model)
            medium.attach(state.device_id, technology)

    def scan(device_id: str) -> None:
        nonlocal events
        listing = medium.neighbors(device_id, SHARD_TECH)
        events += 1 + len(listing)
        if collect_logs:
            logs.setdefault(device_id, []).append(
                (env.now, tuple(listing)))

    for state in devices:
        for base in workload.scan_times():
            when = base + state.scan_phase
            if 0.0 < when <= workload.sim_seconds:
                env.call_at(when, scan, state.device_id)
    env.run(until=workload.sim_seconds)
    world.stop()
    return ShardedResult(
        shards=1, device_count=len(devices),
        sim_seconds=workload.sim_seconds, events=events,
        logs=logs if collect_logs else None, migrations=0, windows=1,
        ghost_peak=0, worker_rss_mb=_rss_mb(),
        per_shard_events={0: events})
