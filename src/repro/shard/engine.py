"""One shard of the sharded world: its devices, events and medium.

A :class:`ShardSim` owns a slice of the global simulation:

* a private :class:`~repro.simenv.environment.Environment` whose event
  queue holds only this shard's movement ticks and discovery scans —
  the "slice of the event queue" the sharded design calls for;
* a private :class:`~repro.mobility.world.World` (full global bounds,
  so clamping arithmetic is identical everywhere) populated with the
  shard's *owned* devices plus *ghost* replicas of border devices
  owned by other shards;
* a private :class:`~repro.radio.medium.Medium` whose region-stamped
  neighbour cache serves this shard's scans.

Ghosts are full replicas: their mobility models advance through the
same tick schedule and the same float arithmetic as the owner's copy,
so their positions are bit-identical (there is no approximation to
drift).  Owned devices run discovery scans and accrue the interaction
log; ghosts are merely visible.

Between windows the coordinator calls :meth:`collect_exchange` /
:meth:`apply_exchange`: devices that walked into another shard's
territory migrate (their full state moves), and the border ghost set
is refreshed.  A persisting ghost keeps its *local* replica — by the
exactness invariant the incoming snapshot is identical, which
``verify_ghosts=True`` asserts in tests.

Ownership geometry is pluggable (:mod:`repro.shard.partition`): the
engine only ever asks ``owner_at(x, y)`` and ``ghost_shards(x, y,
halo)``, so vertical strips and 2D tile grids run through identical
machinery.  Under a tile partition each exchange also carries
per-tile load counters (owned devices weighted by the discovery
events they fired this window), and the coordinator may hand back a
rebalanced tile→shard map in ``apply_exchange`` — adopted *after* the
incoming traffic is installed, so it governs the next window's
ownership re-evaluation and the reassigned tiles' devices migrate
through the ordinary exchange path one window later.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mobility.geometry import Rect
from repro.mobility.world import MovementReport, World
from repro.radio.medium import Medium
from repro.radio.technology import Technology
from repro.shard.balance import REBALANCE_THRESHOLD
from repro.shard.devices import DeviceState
from repro.shard.partition import PartitionSpec, TilePartition
from repro.simenv.environment import Environment

#: Technology name the shard radio registers under.
SHARD_TECH = "shardlink"

#: One interaction-log record: (sim time, sorted neighbour ids).
LogEntry = tuple[float, tuple[str, ...]]


def shard_technology(radio_range: float) -> Technology:
    """The uniform local radio every shard device carries."""
    return Technology(name=SHARD_TECH, range_m=radio_range,
                      bandwidth_bps=1_000_000.0, latency_s=0.005,
                      setup_time_s=0.0, discovery_time_s=0.0)


@dataclass(frozen=True)
class ShardConfig:
    """Shard-count-independent parameters of one sharded run.

    Every shard receives the same config; only the initial device
    split differs.  ``scan_times`` is the full global scan schedule
    (each owned device scans at ``t + device.scan_phase``), computed
    once by the coordinator so no shard re-derives it with different
    float rounding.
    """

    seed: int
    bounds: Rect
    shards: int
    sim_seconds: float
    tick: float
    window: float
    radio_range: float
    halo: float
    scan_times: tuple[float, ...]
    collect_logs: bool = True
    verify_ghosts: bool = False
    #: Ownership geometry (strip or tile grid); see
    #: :mod:`repro.shard.partition`.
    partition: PartitionSpec = PartitionSpec()
    #: Whether the coordinator may reassign tiles between shards at
    #: window edges (tile partitions only).
    rebalance: bool = False
    #: ``max/mean`` shard-load ratio that triggers a rebalance.
    rebalance_threshold: float = REBALANCE_THRESHOLD
    #: Workers wrap their run in gc/tracemalloc accounting and attach
    #: an ``alloc`` dict to their report (the ``--alloc`` pass).
    measure_alloc: bool = False

    def boundaries(self) -> list[float]:
        """Window-edge times: multiples of ``window`` up to the end.

        The final entry is always ``sim_seconds``; exchanges happen at
        every boundary except the last.
        """
        edges: list[float] = []
        k = 1
        while k * self.window < self.sim_seconds:
            edges.append(k * self.window)
            k += 1
        edges.append(self.sim_seconds)
        return edges


@dataclass
class ShardExchange:
    """One shard's outgoing border traffic at a window edge."""

    #: (destination shard, device state) for devices that changed owner.
    migrations: list[tuple[int, DeviceState]] = field(default_factory=list)
    #: (destination shard, device state) border exports for ghosting.
    ghosts: list[tuple[int, DeviceState]] = field(default_factory=list)
    #: tile index -> load (owned devices weighted by the scan events
    #: they fired this window); empty under a strip partition.
    tile_loads: dict[int, int] = field(default_factory=dict)
    #: Device events this shard fired during the window just ended.
    window_events: int = 0


class GhostDivergenceError(AssertionError):
    """A ghost replica's position diverged from the owner's copy.

    Raised only under ``verify_ghosts=True`` (tests); in production the
    exactness invariant makes this unreachable.
    """


class ShardSim:
    """One region shard's private simulation slice."""

    def __init__(self, config: ShardConfig, shard_id: int,
                 owned: list[DeviceState],
                 ghosts: list[DeviceState]) -> None:
        self.config = config
        self.shard_id = shard_id
        self.partition = config.partition.build(config.bounds, config.shards)
        self.env = Environment(seed=config.seed)
        self.world = World(self.env, bounds=config.bounds, tick=config.tick,
                           cell_size=config.radio_range)
        self.medium = Medium(self.world)
        self.technology = shard_technology(config.radio_range)
        self.owned: dict[str, DeviceState] = {}
        self.ghosts: dict[str, DeviceState] = {}
        #: device id -> this shard's segment of its interaction log.
        self.logs: dict[str, list[LogEntry]] = {}
        #: Device-attributable events fired here: one per owned-walker
        #: movement step, one per scan, one per neighbour sighted.
        #: Infrastructure events (shard tick timers, window plumbing)
        #: are excluded so totals are shard-count-invariant.
        self.device_events = 0
        self.migrations_out = 0
        self._emigrant_ids: list[str] = []
        #: device id -> scan events fired since the last exchange;
        #: aggregated into per-tile loads at collect time, then reset.
        self._scan_events: dict[str, int] = {}
        #: ``device_events`` reading at the last exchange — the delta
        #: is the per-window event count the imbalance factor tracks.
        self._events_at_collect = 0
        self.world.on_moves(self._count_owned_moves)
        with self.world.batch():
            for state in owned:
                self._install(state, self.owned)
            for state in ghosts:
                self._install(state, self.ghosts)

    # -- population --------------------------------------------------------

    def _install(self, state: DeviceState,
                 bucket: dict[str, DeviceState]) -> None:
        bucket[state.device_id] = state
        self.world.add_node(state.device_id, state.position(), state.model)
        self.medium.attach(state.device_id, self.technology)

    def _uninstall(self, device_id: str) -> None:
        self.medium.detach(device_id, SHARD_TECH)
        self.world.remove_node(device_id)

    def _count_owned_moves(self, report: MovementReport) -> None:
        owned = self.owned
        moved = report.moved
        if moved:
            self.device_events += sum(1 for nid in moved if nid in owned)

    # -- running -----------------------------------------------------------

    def run_window(self, until: float) -> None:
        """Advance this shard's slice to ``until`` (a window edge)."""
        start = self.env.now
        scan_times = self.config.scan_times
        call_at = self.env.call_at
        for device_id, state in self.owned.items():
            phase = state.scan_phase
            for base in scan_times:
                when = base + phase
                if start < when <= until:
                    call_at(when, self._scan, device_id)
        self.env.run(until=until)

    def _scan(self, device_id: str) -> None:
        listing = self.medium.neighbors(device_id, SHARD_TECH)
        fired = 1 + len(listing)
        self.device_events += fired
        self._scan_events[device_id] = (
            self._scan_events.get(device_id, 0) + fired)
        if self.config.collect_logs:
            log = self.logs.get(device_id)
            if log is None:
                log = self.logs[device_id] = []
            log.append((self.env.now, tuple(listing)))

    def stop(self) -> None:
        """Stop the world tick timer (ends this shard's busy loop)."""
        self.world.stop()

    # -- window-edge exchange ----------------------------------------------

    def collect_exchange(self) -> ShardExchange:
        """Refresh owned state from the world and package border traffic.

        Ownership is re-evaluated from each device's exact position
        (the same pure float function on every shard).  The old owner
        announces both the migration and the ghost exports for a
        departing device, so a window edge costs exactly one
        gather/scatter round through the coordinator.  Under a tile
        partition the exchange also carries per-tile loads — each
        owned device contributes ``1 + scan events this window`` to
        the tile it stands in — which feed the coordinator's
        rebalancer.
        """
        exchange = ShardExchange()
        halo = self.config.halo
        partition = self.partition
        owner_at = partition.owner_at
        ghost_shards = partition.ghost_shards
        tile_index = (partition.tile_index
                      if isinstance(partition, TilePartition) else None)
        tile_loads = exchange.tile_loads
        scan_events = self._scan_events
        node = self.world.node
        emigrants: list[str] = []
        for device_id, state in self.owned.items():
            position = node(device_id).position
            state.x = position.x
            state.y = position.y
            new_owner = owner_at(state.x, state.y)
            if new_owner != self.shard_id:
                exchange.migrations.append((new_owner, state))
                emigrants.append(device_id)
            for target in ghost_shards(state.x, state.y, halo):
                if target != new_owner:
                    exchange.ghosts.append((target, state))
            if tile_index is not None:
                tile = tile_index(state.x, state.y)
                tile_loads[tile] = (tile_loads.get(tile, 0) + 1
                                    + scan_events.get(device_id, 0))
        self._emigrant_ids = emigrants
        self.migrations_out += len(emigrants)
        exchange.window_events = self.device_events - self._events_at_collect
        self._events_at_collect = self.device_events
        self._scan_events = {}
        return exchange

    def final_window_events(self) -> int:
        """Device events fired since the last exchange (for the last
        window, which has no ``collect_exchange`` call)."""
        return self.device_events - self._events_at_collect

    def adopt_tile_map(self, tile_map: tuple[int, ...]) -> None:
        """Install a rebalanced tile→shard map.

        Takes effect at the *next* ownership re-evaluation
        (``collect_exchange``), where devices standing in reassigned
        tiles migrate through the ordinary exchange path.  Every shard
        adopts the same map at the same window edge, so ownership
        stays a shard-invariant pure function.
        """
        partition = self.partition
        if not isinstance(partition, TilePartition):
            raise ValueError("only tile partitions carry a tile map")
        self.partition = partition.with_map(tile_map)

    def apply_exchange(self, immigrants: list[DeviceState],
                       ghost_specs: list[DeviceState],
                       tile_map: tuple[int, ...] | None = None) -> None:
        """Install the coordinator's routed border traffic.

        Removals run before additions so a device converting between
        owned and ghost (either direction) passes through a clean
        remove/insert; a *persisting* ghost keeps its live local
        replica untouched — the incoming snapshot is bit-identical by
        the exactness invariant.  A non-``None`` ``tile_map`` is
        adopted *after* the install: the incoming traffic was routed
        under the old map, and the new one governs the next window.
        """
        fresh_ghost_ids = {state.device_id for state in ghost_specs}
        with self.world.batch():
            for device_id in self._emigrant_ids:
                self._uninstall(device_id)
                del self.owned[device_id]
            self._emigrant_ids = []
            for device_id in [ghost_id for ghost_id in self.ghosts
                              if ghost_id not in fresh_ghost_ids]:
                self._uninstall(device_id)
                del self.ghosts[device_id]
            for state in immigrants:
                self._install(state, self.owned)
            for state in ghost_specs:
                existing = self.ghosts.get(state.device_id)
                if existing is None:
                    self._install(state, self.ghosts)
                elif self.config.verify_ghosts:
                    local = self.world.node(state.device_id).position
                    if (local.x, local.y) != (state.x, state.y):
                        raise GhostDivergenceError(
                            f"ghost {state.device_id!r} in shard "
                            f"{self.shard_id} at ({local.x!r}, {local.y!r}) "
                            f"but owner reports ({state.x!r}, {state.y!r})")
        if tile_map is not None:
            self.adopt_tile_map(tile_map)

    def __repr__(self) -> str:
        return (f"ShardSim(shard={self.shard_id}/{self.config.shards}, "
                f"t={self.env.now:g}, owned={len(self.owned)}, "
                f"ghosts={len(self.ghosts)})")
