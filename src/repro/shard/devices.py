"""Device state that can cross shard boundaries byte-for-byte.

The sharded engine's correctness rests on *exact ghost replication*: a
shard that imports a foreign device's state must advance it through
bit-identical float arithmetic to the owner's copy.  That requires the
whole mobility state — position, heading, phase, and the random stream
driving direction changes — to travel in one picklable value.

:class:`SeededWalk` is the walker model built for that: the same
bounce-off-the-walls random walk as
:class:`repro.mobility.models.RandomWalk`, but drawing headings from a
self-contained 64-bit LCG (a hundred-byte pickle) instead of a shared
``random.Random`` stream (a ~2.5 KiB Mersenne state per device —
meaningful when a 100,000-device crowd is distributed to workers).
Any :class:`~repro.mobility.models.MobilityModel` whose state pickles
completely works as a shard device model; ``SeededWalk`` is simply the
cheap default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mobility.geometry import Point, Rect
from repro.mobility.models import MobilityModel
from repro.simenv.rng import RandomStreams

#: Interest pool mirroring :data:`repro.eval.workloads.INTEREST_POOL`
#: (kept local so shard workers never import the eval layer).
INTEREST_POOL = (
    "football", "music", "movies", "photography", "travel", "cooking",
    "gaming", "books", "hiking", "cycling", "tennis", "ice hockey",
)

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class SeededWalk:
    """Random walk with a self-contained, picklable random state.

    Step semantics match :class:`repro.mobility.models.RandomWalk`:
    advance along the current heading, re-draw it every
    ``turn_interval`` seconds, bounce off the bounds by reversing.
    The heading stream is a 64-bit LCG seeded per device, so a pickled
    copy resumes the identical draw sequence — the property ghost
    replication depends on.
    """

    def __init__(self, bounds: Rect, speed: float, seed: int,
                 turn_interval: float = 8.0) -> None:
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed!r}")
        if turn_interval <= 0:
            raise ValueError(
                f"turn_interval must be positive, got {turn_interval!r}")
        self._bounds = bounds
        self._speed = speed
        self._turn_interval = turn_interval
        self._state = (seed ^ _LCG_INC) & _LCG_MASK
        self._heading = self._draw_heading()
        self._until_turn = turn_interval

    def _draw_heading(self) -> float:
        self._state = (self._state * _LCG_MULT + _LCG_INC) & _LCG_MASK
        return (self._state >> 11) * (2.0 * math.pi / (1 << 53))

    def step(self, position: Point, dt: float) -> Point:
        """Advance along the heading, re-drawing it periodically."""
        self._until_turn -= dt
        if self._until_turn <= 0.0:
            self._heading = self._draw_heading()
            self._until_turn = self._turn_interval
        moved = position.offset(math.cos(self._heading) * self._speed * dt,
                                math.sin(self._heading) * self._speed * dt)
        clamped = self._bounds.clamp(moved)
        if clamped != moved:
            self._heading = (self._heading + math.pi) % (2.0 * math.pi)
        return clamped


@dataclass
class DeviceState:
    """One device's complete, transferable simulation state.

    This is the unit of both *migration* (ownership hand-off when a
    device walks into another strip) and *ghosting* (border export so
    neighbouring shards see it).  ``x``/``y`` are refreshed from the
    world immediately before export; ``model`` is the live mobility
    model object, whose internal state must pickle exactly
    (``None`` means stationary).
    """

    device_id: str
    x: float
    y: float
    interests: tuple[str, ...] = ()
    model: MobilityModel | None = None
    #: Per-device discovery-scan phase offset in seconds (added to the
    #: global scan schedule; 0 keeps everyone on the shared schedule).
    scan_phase: float = 0.0

    def position(self) -> Point:
        return Point(self.x, self.y)


def build_crowd(*, count: int, bounds: Rect, seed: int,
                walker_fraction: float = 0.25,
                walker_speed: float = 1.2,
                turn_interval: float = 8.0,
                stream: str = "shardcrowd") -> list[DeviceState]:
    """Deterministic jittered-lattice crowd, mirroring
    :func:`repro.eval.workloads.populate_crowd`'s layout.

    Built once by the coordinator and then distributed, so the device
    list — positions, interests, walker assignment, walker seeds — is
    identical at every shard count by construction.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    rng = RandomStreams(seed).stream(stream)
    columns = max(2, math.isqrt(max(1, count - 1)) + 1)
    pitch_x = bounds.width / columns
    pitch_y = bounds.height / columns
    devices: list[DeviceState] = []
    for index in range(count):
        row, column = divmod(index, columns)
        x = bounds.min_x + (column + 0.5 + rng.uniform(-0.3, 0.3)) * pitch_x
        y = bounds.min_y + (row + 0.5 + rng.uniform(-0.3, 0.3)) * pitch_y
        interest_count = rng.randint(1, 4)
        interests = tuple(rng.sample(INTEREST_POOL, interest_count))
        model: MobilityModel | None = None
        if rng.random() < walker_fraction:
            model = SeededWalk(bounds, walker_speed,
                               seed=rng.getrandbits(63),
                               turn_interval=turn_interval)
        devices.append(DeviceState(device_id=f"d{index:06d}", x=x, y=y,
                                   interests=interests, model=model))
    return devices


__all__ = ["DeviceState", "SeededWalk", "build_crowd", "INTEREST_POOL"]
