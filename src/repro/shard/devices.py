"""Device state that can cross shard boundaries byte-for-byte.

The sharded engine's correctness rests on *exact ghost replication*: a
shard that imports a foreign device's state must advance it through
bit-identical float arithmetic to the owner's copy.  That requires the
whole mobility state — position, heading, phase, and the random stream
driving direction changes — to travel in one picklable value.

:class:`SeededWalk` is the walker model built for that: the same
bounce-off-the-walls random walk as
:class:`repro.mobility.models.RandomWalk`, but drawing headings from a
self-contained 64-bit LCG (a hundred-byte pickle) instead of a shared
``random.Random`` stream (a ~2.5 KiB Mersenne state per device —
meaningful when a 100,000-device crowd is distributed to workers).
Any :class:`~repro.mobility.models.MobilityModel` whose state pickles
completely works as a shard device model; ``SeededWalk`` is simply the
cheap default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mobility.geometry import Point, Rect
from repro.mobility.models import MobilityModel
from repro.simenv.rng import RandomStreams

#: Interest pool mirroring :data:`repro.eval.workloads.INTEREST_POOL`
#: (kept local so shard workers never import the eval layer).
INTEREST_POOL = (
    "football", "music", "movies", "photography", "travel", "cooking",
    "gaming", "books", "hiking", "cycling", "tennis", "ice hockey",
)

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class SeededWalk:
    """Random walk with a self-contained, picklable random state.

    Step semantics match :class:`repro.mobility.models.RandomWalk`:
    advance along the current heading, re-draw it every
    ``turn_interval`` seconds, bounce off the bounds by reversing.
    The heading stream is a 64-bit LCG seeded per device, so a pickled
    copy resumes the identical draw sequence — the property ghost
    replication depends on.
    """

    def __init__(self, bounds: Rect, speed: float, seed: int,
                 turn_interval: float = 8.0) -> None:
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed!r}")
        if turn_interval <= 0:
            raise ValueError(
                f"turn_interval must be positive, got {turn_interval!r}")
        self._bounds = bounds
        self._speed = speed
        self._turn_interval = turn_interval
        self._state = (seed ^ _LCG_INC) & _LCG_MASK
        self._heading = self._draw_heading()
        self._until_turn = turn_interval

    def _draw_heading(self) -> float:
        self._state = (self._state * _LCG_MULT + _LCG_INC) & _LCG_MASK
        return (self._state >> 11) * (2.0 * math.pi / (1 << 53))

    def step(self, position: Point, dt: float) -> Point:
        """Advance along the heading, re-drawing it periodically."""
        self._until_turn -= dt
        if self._until_turn <= 0.0:
            self._heading = self._draw_heading()
            self._until_turn = self._turn_interval
        moved = position.offset(math.cos(self._heading) * self._speed * dt,
                                math.sin(self._heading) * self._speed * dt)
        clamped = self._bounds.clamp(moved)
        if clamped != moved:
            self._heading = (self._heading + math.pi) % (2.0 * math.pi)
        return clamped


class DriftWalk(SeededWalk):
    """A :class:`SeededWalk` carried along by a shared drift velocity.

    Models a *moving flash crowd*: every member of a hotspot jitters
    around locally (the inherited random walk) while the whole crowd
    translates at ``(drift_x, drift_y)`` metres per second — so the
    hotspot itself migrates across the map and across whatever
    partition borders lie in its path.  Hitting the world edge
    reflects the drift on the offending axis (and reverses the local
    heading, as the base walk does), keeping the crowd in bounds.
    State is the base walk's LCG plus two floats, so pickled replicas
    resume identically — the ghost-replication requirement.
    """

    def __init__(self, bounds: Rect, speed: float, seed: int,
                 drift_x: float, drift_y: float,
                 turn_interval: float = 8.0) -> None:
        super().__init__(bounds, speed, seed, turn_interval)
        self._drift_x = drift_x
        self._drift_y = drift_y

    def step(self, position: Point, dt: float) -> Point:
        walked = super().step(position, dt)
        moved = walked.offset(self._drift_x * dt, self._drift_y * dt)
        clamped = self._bounds.clamp(moved)
        if clamped.x != moved.x:
            self._drift_x = -self._drift_x
        if clamped.y != moved.y:
            self._drift_y = -self._drift_y
        return clamped


@dataclass
class DeviceState:
    """One device's complete, transferable simulation state.

    This is the unit of both *migration* (ownership hand-off when a
    device walks into another strip) and *ghosting* (border export so
    neighbouring shards see it).  ``x``/``y`` are refreshed from the
    world immediately before export; ``model`` is the live mobility
    model object, whose internal state must pickle exactly
    (``None`` means stationary).
    """

    device_id: str
    x: float
    y: float
    interests: tuple[str, ...] = ()
    model: MobilityModel | None = None
    #: Per-device discovery-scan phase offset in seconds (added to the
    #: global scan schedule; 0 keeps everyone on the shared schedule).
    scan_phase: float = 0.0

    def position(self) -> Point:
        return Point(self.x, self.y)


def build_crowd(*, count: int, bounds: Rect, seed: int,
                walker_fraction: float = 0.25,
                walker_speed: float = 1.2,
                turn_interval: float = 8.0,
                stream: str = "shardcrowd") -> list[DeviceState]:
    """Deterministic jittered-lattice crowd, mirroring
    :func:`repro.eval.workloads.populate_crowd`'s layout.

    Built once by the coordinator and then distributed, so the device
    list — positions, interests, walker assignment, walker seeds — is
    identical at every shard count by construction.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    rng = RandomStreams(seed).stream(stream)
    columns = max(2, math.isqrt(max(1, count - 1)) + 1)
    pitch_x = bounds.width / columns
    pitch_y = bounds.height / columns
    devices: list[DeviceState] = []
    for index in range(count):
        row, column = divmod(index, columns)
        x = bounds.min_x + (column + 0.5 + rng.uniform(-0.3, 0.3)) * pitch_x
        y = bounds.min_y + (row + 0.5 + rng.uniform(-0.3, 0.3)) * pitch_y
        interest_count = rng.randint(1, 4)
        interests = tuple(rng.sample(INTEREST_POOL, interest_count))
        model: MobilityModel | None = None
        if rng.random() < walker_fraction:
            model = SeededWalk(bounds, walker_speed,
                               seed=rng.getrandbits(63),
                               turn_interval=turn_interval)
        devices.append(DeviceState(device_id=f"d{index:06d}", x=x, y=y,
                                   interests=interests, model=model))
    return devices


def build_clustered_crowd(*, count: int, bounds: Rect, seed: int,
                          clusters: int = 3,
                          cluster_weights: tuple[float, ...] = (),
                          hot_fraction: float = 0.6,
                          sigma_fraction: float = 0.05,
                          center_spread: float = 0.1,
                          center_spread_y: float | None = None,
                          drift_speed: float = 0.0,
                          walker_fraction: float = 0.25,
                          walker_speed: float = 1.2,
                          turn_interval: float = 8.0,
                          stream: str = "shardclustered",
                          ) -> list[DeviceState]:
    """Deterministic crowd with Gaussian hotspots — the clumpy case.

    ``hot_fraction`` of the crowd is drawn around ``clusters`` hotspot
    centres (``cluster_weights`` splits it; empty means equal shares)
    with per-axis deviation ``sigma_fraction * min(width, height)``;
    the rest is uniform background.  Centres themselves are drawn
    around a random "venue district" point — within
    ``center_spread`` of the width horizontally and
    ``center_spread_y`` (default: same) of the height vertically —
    mirroring how real venues cluster downtown.  A *tight* horizontal
    spread with a wider vertical one models a main street: every
    hotspot lands in the same vertical strip (starving a strip
    partition completely) while staying separable by a 2D tiling.

    ``drift_speed > 0`` turns the hotspots into *moving* flash crowds:
    every hot member gets a :class:`DriftWalk` sharing its cluster's
    drift direction, so the whole crowd translates coherently.  Cold
    (background) members walk with ``walker_fraction`` probability
    like :func:`build_crowd`'s.

    Built once by the coordinator and then distributed, so the device
    list is identical at every shard count by construction.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters!r}")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(
            f"hot_fraction must be in [0, 1], got {hot_fraction!r}")
    if cluster_weights and len(cluster_weights) != clusters:
        raise ValueError(f"{len(cluster_weights)} weights for "
                         f"{clusters} clusters")
    weights = cluster_weights or tuple(1.0 for _ in range(clusters))
    if any(weight <= 0.0 for weight in weights):
        raise ValueError(f"cluster weights must be positive, got {weights!r}")
    total_weight = sum(weights)
    cumulative: list[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total_weight
        cumulative.append(running)
    cumulative[-1] = 1.0  # float-sum slack must not orphan the last draw

    rng = RandomStreams(seed).stream(stream)
    sigma = sigma_fraction * min(bounds.width, bounds.height)
    district_x = bounds.min_x + rng.uniform(0.3, 0.7) * bounds.width
    district_y = bounds.min_y + rng.uniform(0.3, 0.7) * bounds.height
    spread_x = center_spread * bounds.width
    if center_spread_y is None:
        center_spread_y = center_spread
    spread_y = center_spread_y * bounds.height
    # Keep centres at least one sigma inside the bounds — a centre on
    # the edge would fold half its Gaussian onto the boundary clamp
    # and manufacture an artificial density spike there.
    margin_x = min(sigma, bounds.width / 2.0)
    margin_y = min(sigma, bounds.height / 2.0)
    centers = [(min(bounds.max_x - margin_x,
                    max(bounds.min_x + margin_x,
                        district_x + rng.uniform(-spread_x, spread_x))),
                min(bounds.max_y - margin_y,
                    max(bounds.min_y + margin_y,
                        district_y + rng.uniform(-spread_y, spread_y))))
               for _ in range(clusters)]
    drifts = []
    for _ in range(clusters):
        angle = rng.uniform(0.0, 2.0 * math.pi)
        drifts.append((math.cos(angle) * drift_speed,
                       math.sin(angle) * drift_speed))

    # Inset the clamp so no device starts exactly on the bounds edge
    # (positions stay strictly interior, like the lattice builder's).
    inset = min(1.0, bounds.width / 1000.0, bounds.height / 1000.0)
    lo_x, hi_x = bounds.min_x + inset, bounds.max_x - inset
    lo_y, hi_y = bounds.min_y + inset, bounds.max_y - inset

    devices: list[DeviceState] = []
    for index in range(count):
        hot = rng.random() < hot_fraction
        if hot:
            pick = rng.random()
            cluster = 0
            while cumulative[cluster] < pick:
                cluster += 1
            cx, cy = centers[cluster]
            x = min(hi_x, max(lo_x, cx + rng.gauss(0.0, sigma)))
            y = min(hi_y, max(lo_y, cy + rng.gauss(0.0, sigma)))
        else:
            x = rng.uniform(lo_x, hi_x)
            y = rng.uniform(lo_y, hi_y)
        interest_count = rng.randint(1, 4)
        interests = tuple(rng.sample(INTEREST_POOL, interest_count))
        model: MobilityModel | None = None
        if hot and drift_speed > 0.0:
            drift_x, drift_y = drifts[cluster]
            model = DriftWalk(bounds, walker_speed,
                              seed=rng.getrandbits(63),
                              drift_x=drift_x, drift_y=drift_y,
                              turn_interval=turn_interval)
        elif rng.random() < walker_fraction:
            model = SeededWalk(bounds, walker_speed,
                               seed=rng.getrandbits(63),
                               turn_interval=turn_interval)
        devices.append(DeviceState(device_id=f"d{index:06d}", x=x, y=y,
                                   interests=interests, model=model))
    return devices


__all__ = ["DeviceState", "DriftWalk", "SeededWalk", "build_clustered_crowd",
           "build_crowd", "INTEREST_POOL"]
