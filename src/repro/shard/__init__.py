"""Sharded single-world simulation (``repro.shard``).

``repro.eval.parallel`` fans *independent* runs across processes; this
package partitions **one** simulated world across worker processes.
The spatial grid's plane is split by a pluggable region partition —
equal-width vertical strips, or a 2D tile grid with an explicit
tile→shard map — each shard owning the devices inside its territory:
their slice of the event queue (a per-shard
:class:`~repro.simenv.environment.Environment`), their movement, their
discovery scans and their cached medium state (a per-shard
:class:`~repro.radio.medium.Medium`).

Shards run a conservative time-windowed synchronisation protocol: the
radio range bounds how far apart two interacting devices can be, so a
shard only needs *border state* — devices within one halo width of its
territory — and only at window edges.  The halo width is the lookahead
bound ``radio_range + 2 * max_speed * window``: within one window a
device and a potential neighbour can close at most ``2 * max_speed *
window`` metres, so any pair that could interact during the window is
covered by the exchange that opened it (DESIGN.md §9 gives the full
argument).

Tile partitions additionally support **dynamic re-balancing**
(DESIGN.md §11): shards report per-tile load counters at each window
edge and the coordinator may reassign whole tiles to other shards,
broadcasting the new map at the sync barrier so the ordinary migration
machinery moves the affected devices.  The map only decides *where*
work happens, never what happens, so rebalanced runs stay bit-exact.

Determinism is the contract: a run at any shard count, under any
partition, with or without rebalancing, produces the identical
per-device interaction log and device-event count as the single-shard
run and as the unsharded reference simulation, because ghost replicas
advance through exactly the same float arithmetic as their originals.
``tests/test_shard_engine.py`` pins this against a lockstep oracle and
Hypothesis-generated border-crossing trajectories; CI's
``sharded-equivalence`` job enforces it on every PR via
``scripts/shardcheck.py``.
"""

from repro.shard.balance import (REBALANCE_THRESHOLD, imbalance,
                                 rebalance_map, shard_loads)
from repro.shard.devices import (DeviceState, DriftWalk, SeededWalk,
                                 build_clustered_crowd, build_crowd)
from repro.shard.engine import ShardConfig, ShardSim
from repro.shard.equivalence import (compare_results, interaction_digests,
                                     write_divergence_artifacts)
from repro.shard.partition import (PARTITION_KINDS, PartitionSpec,
                                   StripPartition, TilePartition,
                                   default_tile_map, halo_width,
                                   plan_tile_grid, spec_for)
from repro.shard.runner import (ClusteredWorkload, ShardedResult,
                                ShardedRunner, ShardWorkload,
                                clustered_workload, crowd_workload,
                                reference_run)

__all__ = [
    "ClusteredWorkload",
    "DeviceState",
    "DriftWalk",
    "PARTITION_KINDS",
    "PartitionSpec",
    "REBALANCE_THRESHOLD",
    "SeededWalk",
    "ShardConfig",
    "ShardSim",
    "ShardWorkload",
    "ShardedResult",
    "ShardedRunner",
    "StripPartition",
    "TilePartition",
    "build_clustered_crowd",
    "build_crowd",
    "clustered_workload",
    "compare_results",
    "crowd_workload",
    "default_tile_map",
    "halo_width",
    "imbalance",
    "interaction_digests",
    "plan_tile_grid",
    "rebalance_map",
    "reference_run",
    "shard_loads",
    "spec_for",
    "write_divergence_artifacts",
]
