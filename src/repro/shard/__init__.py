"""Sharded single-world simulation (``repro.shard``).

``repro.eval.parallel`` fans *independent* runs across processes; this
package partitions **one** simulated world across worker processes.
The spatial grid's plane is split into vertical region strips, each
shard owning the devices inside its strip: their slice of the event
queue (a per-shard :class:`~repro.simenv.environment.Environment`),
their movement, their discovery scans and their cached medium state (a
per-shard :class:`~repro.radio.medium.Medium`).

Shards run a conservative time-windowed synchronisation protocol: the
radio range bounds how far apart two interacting devices can be, so a
shard only needs *border state* — devices within one halo width of its
strip — and only at window edges.  The halo width is the lookahead
bound ``radio_range + 2 * max_speed * window``: within one window a
device and a potential neighbour can close at most ``2 * max_speed *
window`` metres, so any pair that could interact during the window is
covered by the exchange that opened it (DESIGN.md §9 gives the full
argument).

Determinism is the contract: a run at any shard count produces the
identical per-device interaction log and device-event count as the
single-shard run and as the unsharded reference simulation, because
ghost replicas advance through exactly the same float arithmetic as
their originals.  ``tests/test_shard_engine.py`` pins this against a
lockstep oracle and Hypothesis-generated border-crossing trajectories;
CI's ``sharded-equivalence`` job enforces it on every PR via
``scripts/shardcheck.py``.
"""

from repro.shard.devices import DeviceState, SeededWalk, build_crowd
from repro.shard.engine import ShardConfig, ShardSim
from repro.shard.equivalence import (compare_results, interaction_digests,
                                     write_divergence_artifacts)
from repro.shard.partition import StripPartition, halo_width
from repro.shard.runner import (ShardedResult, ShardedRunner, ShardWorkload,
                                crowd_workload, reference_run)

__all__ = [
    "DeviceState",
    "SeededWalk",
    "ShardConfig",
    "ShardSim",
    "ShardWorkload",
    "ShardedResult",
    "ShardedRunner",
    "StripPartition",
    "build_crowd",
    "compare_results",
    "crowd_workload",
    "halo_width",
    "interaction_digests",
    "reference_run",
    "write_divergence_artifacts",
]
