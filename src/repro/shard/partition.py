"""Region partition of the world plane into vertical strips.

A partition answers two questions for the sharded engine:

* **Ownership** — which shard owns a device at position ``x``?  The
  plane is cut into ``shards`` equal-width vertical strips; ownership
  is a pure function of the x coordinate, so every shard evaluates the
  same float expression and reaches the same verdict without any
  coordination.
* **Border coverage** — which shards need a device as a *ghost*?  Any
  shard whose strip lies within one halo width of the device could see
  it interact with an owned device during the next window, so the
  owner exports its state there at the window edge.

Strips (rather than a 2D tiling) keep the exchange pattern simple and
the ownership function one comparison; for the crowd workloads the
bench runs, the strip cross-section already holds thousands of devices
before border traffic matters.
"""

from __future__ import annotations

from repro.mobility.geometry import Rect


def halo_width(radio_range: float, max_speed: float, window: float) -> float:
    """Conservative lookahead bound for one synchronisation window.

    A device owned by shard S may drift up to ``max_speed * window``
    metres past its strip edge before the next exchange, and a foreign
    device may simultaneously approach by the same amount; they
    interact when within ``radio_range``.  Any pair that can come
    within radio range during the window is therefore separated by at
    most ``radio_range + 2 * max_speed * window`` at the window's
    opening exchange — the halo width that makes the ghost set
    sufficient for the whole window.
    """
    if radio_range <= 0.0:
        raise ValueError(f"radio_range must be positive, got {radio_range!r}")
    if max_speed < 0.0:
        raise ValueError(f"max_speed must be non-negative, got {max_speed!r}")
    if window <= 0.0:
        raise ValueError(f"window must be positive, got {window!r}")
    return radio_range + 2.0 * max_speed * window


class StripPartition:
    """Equal-width vertical strips over the world bounds.

    Strip ``i`` covers x in ``[min_x + i*w, min_x + (i+1)*w)`` with the
    last strip closed on the right so the whole bounds are covered
    (positions are always clamped into bounds by the world).
    """

    __slots__ = ("bounds", "shards", "strip_width")

    def __init__(self, bounds: Rect, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        self.bounds = bounds
        self.shards = shards
        self.strip_width = bounds.width / shards

    def owner_of(self, x: float) -> int:
        """Shard id owning x — a pure float function, shard-invariant."""
        index = int((x - self.bounds.min_x) // self.strip_width)
        if index < 0:
            return 0
        if index >= self.shards:
            return self.shards - 1
        return index

    def strip_interval(self, shard_id: int) -> tuple[float, float]:
        """``[lo, hi]`` x-interval of one strip."""
        if not 0 <= shard_id < self.shards:
            raise ValueError(f"shard_id {shard_id} out of range "
                             f"[0, {self.shards})")
        lo = self.bounds.min_x + shard_id * self.strip_width
        return (lo, lo + self.strip_width)

    def shards_within(self, x: float, halo: float) -> range:
        """Shard ids whose strip intersects ``[x - halo, x + halo]``.

        This is the ghost routing set for a device at ``x``: every
        listed shard could own a device within interaction distance
        during the coming window.  With a halo wider than a strip the
        range simply spans several shards (correct, just chattier).
        """
        if halo < 0.0:
            raise ValueError(f"halo must be non-negative, got {halo!r}")
        return range(self.owner_of(x - halo), self.owner_of(x + halo) + 1)

    def __repr__(self) -> str:
        return (f"StripPartition({self.shards} strips x "
                f"{self.strip_width:g}m)")
