"""Region partitions of the world plane: vertical strips and 2D tiles.

A partition answers two questions for the sharded engine:

* **Ownership** — which shard owns a device at position ``(x, y)``?
  Ownership is a pure function of the position, so every shard
  evaluates the same float expression and reaches the same verdict
  without any coordination.
* **Border coverage** — which shards need a device as a *ghost*?  Any
  shard whose territory lies within one halo width of the device could
  see it interact with an owned device during the next window, so the
  owner exports its state there at the window edge.

Two geometries implement the :class:`Partition` protocol:

* :class:`StripPartition` — equal-width vertical strips.  Ownership is
  one comparison and the exchange pattern is linear, but a crowd that
  clusters inside one strip collapses the whole run onto one shard.
* :class:`TilePartition` — a grid of tiles with an explicit
  tile→shard map.  Ownership is two floor-divisions and a table
  lookup; ghost routing walks the tiles intersecting the halo box
  (corners included).  Because the map is *data*, the coordinator can
  reassign whole tiles between shards at a sync barrier — the dynamic
  re-balancing that keeps clustered workloads spread across shards
  (:mod:`repro.shard.balance`).

:class:`PartitionSpec` is the picklable description that crosses to
worker processes inside :class:`~repro.shard.engine.ShardConfig`; the
engine materialises the live partition object from it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mobility.geometry import Rect

#: Partition kinds a :class:`PartitionSpec` may name.
PARTITION_KINDS = ("strip", "tile")

#: Default tile granularity: tiles per shard the factory aims for.
#: Enough spare tiles that the greedy rebalancer can shave load in
#: small increments — a whole tile hotter than the per-shard mean can
#: never move, so tiles must be fine enough that one urban hotspot
#: spans several — yet few enough that the tile map stays tiny.
TILES_PER_SHARD = 64

#: Absolute tile-count cap — the map is broadcast at every rebalance,
#: so it must stay cheap to pickle even for 1M-device worlds.
MAX_TILES = 4096


def halo_width(radio_range: float, max_speed: float, window: float) -> float:
    """Conservative lookahead bound for one synchronisation window.

    A device owned by shard S may drift up to ``max_speed * window``
    metres past its territory edge before the next exchange, and a
    foreign device may simultaneously approach by the same amount; they
    interact when within ``radio_range``.  Any pair that can come
    within radio range during the window is therefore separated by at
    most ``radio_range + 2 * max_speed * window`` at the window's
    opening exchange — the halo width that makes the ghost set
    sufficient for the whole window.
    """
    if radio_range <= 0.0:
        raise ValueError(f"radio_range must be positive, got {radio_range!r}")
    if max_speed < 0.0:
        raise ValueError(f"max_speed must be non-negative, got {max_speed!r}")
    if window <= 0.0:
        raise ValueError(f"window must be positive, got {window!r}")
    return radio_range + 2.0 * max_speed * window


class StripPartition:
    """Equal-width vertical strips over the world bounds.

    Strip ``i`` covers x in ``[min_x + i*w, min_x + (i+1)*w)`` with the
    last strip closed on the right so the whole bounds are covered
    (positions are always clamped into bounds by the world).
    """

    __slots__ = ("bounds", "shards", "strip_width")

    def __init__(self, bounds: Rect, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        self.bounds = bounds
        self.shards = shards
        self.strip_width = bounds.width / shards

    def owner_of(self, x: float) -> int:
        """Shard id owning x — a pure float function, shard-invariant."""
        index = int((x - self.bounds.min_x) // self.strip_width)
        if index < 0:
            return 0
        if index >= self.shards:
            return self.shards - 1
        return index

    def owner_at(self, x: float, y: float) -> int:
        """:class:`Partition` ownership — strips ignore ``y``."""
        return self.owner_of(x)

    def strip_interval(self, shard_id: int) -> tuple[float, float]:
        """``[lo, hi]`` x-interval of one strip."""
        if not 0 <= shard_id < self.shards:
            raise ValueError(f"shard_id {shard_id} out of range "
                             f"[0, {self.shards})")
        lo = self.bounds.min_x + shard_id * self.strip_width
        return (lo, lo + self.strip_width)

    def shards_within(self, x: float, halo: float) -> range:
        """Shard ids whose strip intersects ``[x - halo, x + halo]``.

        This is the ghost routing set for a device at ``x``: every
        listed shard could own a device within interaction distance
        during the coming window.  With a halo wider than a strip the
        range simply spans several shards (correct, just chattier).
        """
        if halo < 0.0:
            raise ValueError(f"halo must be non-negative, got {halo!r}")
        return range(self.owner_of(x - halo), self.owner_of(x + halo) + 1)

    def ghost_shards(self, x: float, y: float,
                     halo: float) -> tuple[int, ...]:
        """:class:`Partition` ghost routing — the strip interval set."""
        return tuple(self.shards_within(x, halo))

    def __repr__(self) -> str:
        return (f"StripPartition({self.shards} strips x "
                f"{self.strip_width:g}m)")


class TilePartition:
    """A grid of tiles with an explicit tile→shard assignment.

    The bounds are cut into ``tiles_x`` columns by ``tiles_y`` rows of
    equal tiles, indexed row-major (``tile = row * tiles_x + col``).
    ``tile_map[tile]`` names the owning shard.  Ownership stays a pure
    float function of the position (two floor-divisions, one lookup),
    so every shard reaches the same verdict; the *map* is plain data,
    broadcast by the coordinator whenever the rebalancer reassigns
    tiles.

    Ghost routing intersects the axis-aligned halo box ``[x-h, x+h] x
    [y-h, y+h]`` with the tile grid and collects the owners of every
    touched tile — including diagonal neighbours, so a device sitting
    on a four-tile corner is exported to all four owners.  The box
    over-approximates the halo disc, which is harmless (a spare ghost
    is dead weight, a missing one is a lost interaction), and its edge
    coordinates go through the *same* floor arithmetic as ownership,
    so a device exactly on a tile edge routes consistently.
    """

    __slots__ = ("bounds", "shards", "tiles_x", "tiles_y", "tile_width",
                 "tile_height", "tile_map")

    def __init__(self, bounds: Rect, shards: int,
                 tiles: tuple[int, int],
                 tile_map: tuple[int, ...] | None = None) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        tiles_x, tiles_y = tiles
        if tiles_x < 1 or tiles_y < 1:
            raise ValueError(f"tile grid must be >= 1x1, got {tiles!r}")
        self.bounds = bounds
        self.shards = shards
        self.tiles_x = tiles_x
        self.tiles_y = tiles_y
        self.tile_width = bounds.width / tiles_x
        self.tile_height = bounds.height / tiles_y
        if tile_map is None:
            tile_map = default_tile_map(tiles_x * tiles_y, shards)
        if len(tile_map) != tiles_x * tiles_y:
            raise ValueError(
                f"tile_map has {len(tile_map)} entries for a "
                f"{tiles_x}x{tiles_y} grid ({tiles_x * tiles_y} tiles)")
        bad = [shard for shard in tile_map if not 0 <= shard < shards]
        if bad:
            raise ValueError(f"tile_map names shards {sorted(set(bad))} "
                             f"outside [0, {shards})")
        self.tile_map = tuple(tile_map)

    # -- grid arithmetic ---------------------------------------------------

    def _column_of(self, x: float) -> int:
        column = int((x - self.bounds.min_x) // self.tile_width)
        if column < 0:
            return 0
        if column >= self.tiles_x:
            return self.tiles_x - 1
        return column

    def _row_of(self, y: float) -> int:
        row = int((y - self.bounds.min_y) // self.tile_height)
        if row < 0:
            return 0
        if row >= self.tiles_y:
            return self.tiles_y - 1
        return row

    def tile_index(self, x: float, y: float) -> int:
        """Row-major tile index holding ``(x, y)`` — total and pure."""
        return self._row_of(y) * self.tiles_x + self._column_of(x)

    def tile_bounds(self, tile: int) -> Rect:
        """The rectangle one tile covers."""
        self._check_tile(tile)
        row, column = divmod(tile, self.tiles_x)
        min_x = self.bounds.min_x + column * self.tile_width
        min_y = self.bounds.min_y + row * self.tile_height
        return Rect(min_x, min_y,
                    min_x + self.tile_width, min_y + self.tile_height)

    def _check_tile(self, tile: int) -> None:
        if not 0 <= tile < len(self.tile_map):
            raise ValueError(f"tile {tile} out of range "
                             f"[0, {len(self.tile_map)})")

    # -- Partition protocol ------------------------------------------------

    def owner_at(self, x: float, y: float) -> int:
        """Shard owning ``(x, y)`` — pure function of position + map."""
        return self.tile_map[self.tile_index(x, y)]

    def ghost_shards(self, x: float, y: float,
                     halo: float) -> tuple[int, ...]:
        """Sorted owners of every tile the halo box touches.

        Always contains the owner; covers diagonal (corner) neighbours
        because the box is 2D, not an interval.
        """
        if halo < 0.0:
            raise ValueError(f"halo must be non-negative, got {halo!r}")
        column_lo = self._column_of(x - halo)
        column_hi = self._column_of(x + halo)
        row_lo = self._row_of(y - halo)
        row_hi = self._row_of(y + halo)
        tile_map = self.tile_map
        tiles_x = self.tiles_x
        owners = {tile_map[row * tiles_x + column]
                  for row in range(row_lo, row_hi + 1)
                  for column in range(column_lo, column_hi + 1)}
        return tuple(sorted(owners))

    # -- introspection (rebalancer, tests, diagnostics) --------------------

    def tiles_of_shard(self, shard_id: int) -> tuple[int, ...]:
        """Tile indices currently assigned to one shard."""
        if not 0 <= shard_id < self.shards:
            raise ValueError(f"shard_id {shard_id} out of range "
                             f"[0, {self.shards})")
        return tuple(tile for tile, owner in enumerate(self.tile_map)
                     if owner == shard_id)

    def tile_neighbors(self, tile: int) -> tuple[int, ...]:
        """The up-to-eight grid neighbours of a tile, corners included."""
        self._check_tile(tile)
        row, column = divmod(tile, self.tiles_x)
        neighbors = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                if dr == 0 and dc == 0:
                    continue
                nr, nc = row + dr, column + dc
                if 0 <= nr < self.tiles_y and 0 <= nc < self.tiles_x:
                    neighbors.append(nr * self.tiles_x + nc)
        return tuple(neighbors)

    def neighbor_shards(self, shard_id: int) -> tuple[int, ...]:
        """Shards owning any tile adjacent (incl. corners) to this
        shard's tiles — the set a static exchange topology would use."""
        mine = set(self.tiles_of_shard(shard_id))
        others = {self.tile_map[neighbor]
                  for tile in mine
                  for neighbor in self.tile_neighbors(tile)
                  if self.tile_map[neighbor] != shard_id}
        return tuple(sorted(others))

    def with_map(self, tile_map: tuple[int, ...]) -> TilePartition:
        """A copy of this partition under a new tile→shard map."""
        return TilePartition(self.bounds, self.shards,
                             (self.tiles_x, self.tiles_y), tile_map)

    def __repr__(self) -> str:
        return (f"TilePartition({self.tiles_x}x{self.tiles_y} tiles "
                f"x {self.tile_width:g}x{self.tile_height:g}m "
                f"-> {self.shards} shards)")


def default_tile_map(tiles: int, shards: int) -> tuple[int, ...]:
    """Contiguous row-major blocks, balanced to within one tile.

    Tile ``t`` goes to shard ``t * shards // tiles`` — the same
    integer-arithmetic split everywhere, so every shard derives the
    identical initial map without coordination.
    """
    if tiles < 1:
        raise ValueError(f"tiles must be >= 1, got {tiles!r}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    return tuple(tile * shards // tiles for tile in range(tiles))


def plan_tile_grid(bounds: Rect, shards: int, halo: float, *,
                   tiles_per_shard: int = TILES_PER_SHARD,
                   max_tiles: int = MAX_TILES) -> tuple[int, int]:
    """Pick a tile grid: edges >= halo, ~``tiles_per_shard`` per shard.

    The halo floor keeps the ghost box within a 3x3 tile neighbourhood
    and bounds exchange fan-out; the per-shard target leaves the
    rebalancer enough granularity to shave load in small slices.  The
    grid is clamped so a tiny world still yields a legal (possibly
    1x1) tiling.
    """
    if halo <= 0.0:
        raise ValueError(f"halo must be positive, got {halo!r}")
    max_x = max(1, int(bounds.width // halo))
    max_y = max(1, int(bounds.height // halo))
    target = min(max_tiles, max(shards, shards * tiles_per_shard))
    aspect = bounds.width / bounds.height
    tiles_x = max(1, min(max_x, round((target * aspect) ** 0.5)))
    tiles_y = max(1, min(max_y, round(target / tiles_x)))
    return tiles_x, tiles_y


@dataclass(frozen=True)
class PartitionSpec:
    """Picklable partition description carried by the shard config.

    ``kind`` selects the geometry; ``tiles``/``tile_map`` only apply to
    tile partitions (``tile_map=None`` means the balanced default
    map).  :meth:`build` materialises the live partition object — the
    engine calls it once at start-up and again whenever the
    coordinator broadcasts a rebalanced map.
    """

    kind: str = "strip"
    tiles: tuple[int, int] | None = None
    tile_map: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in PARTITION_KINDS:
            raise ValueError(f"unknown partition kind {self.kind!r}; "
                             f"expected one of {PARTITION_KINDS}")
        if self.kind == "tile" and self.tiles is None:
            raise ValueError("tile partitions need an explicit tile grid")
        if self.kind == "strip" and (self.tiles is not None
                                     or self.tile_map is not None):
            raise ValueError("strip partitions take no tile grid or map")

    def build(self, bounds: Rect,
              shards: int) -> StripPartition | TilePartition:
        """The live partition object for one shard."""
        if self.kind == "strip":
            return StripPartition(bounds, shards)
        assert self.tiles is not None
        return TilePartition(bounds, shards, self.tiles, self.tile_map)


def spec_for(kind: str, bounds: Rect, shards: int,
             halo: float) -> PartitionSpec:
    """The :class:`PartitionSpec` a runner starts from."""
    if kind == "strip":
        return PartitionSpec()
    if kind == "tile":
        tiles = plan_tile_grid(bounds, shards, halo)
        return PartitionSpec(kind="tile", tiles=tiles)
    raise ValueError(f"unknown partition kind {kind!r}; "
                     f"expected one of {PARTITION_KINDS}")
