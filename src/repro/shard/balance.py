"""Load accounting and the greedy tile rebalancer.

The sharded engine's partition is only as good as its match to where
the crowd actually is.  Each exchange window every shard reports a
per-tile load (owned devices weighted by the discovery events they
fired since the last window); the coordinator aggregates those into
per-shard loads and, when the max/mean imbalance crosses a threshold,
asks :func:`rebalance_map` for a better tile→shard map.  The new map
is broadcast inside the ``apply`` message and takes effect at the
*next* window edge, where the ordinary migration machinery hands the
reassigned tiles' devices to their new owners — rebalancing adds no
second state-transfer path, so the bit-exactness argument is untouched
(any map is correct; the map only decides *where* work happens).

The rebalancer is deliberately greedy and conservative: it moves whole
tiles from the most-loaded shard to the least-loaded one, never moves
a tile heavier than half the load gap (every move strictly shrinks the
donor/recipient spread, so the loop terminates), and breaks all ties
by lowest index so every scheduler — in-process or spawned workers —
derives the identical map from the identical loads.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

#: Rebalance when ``max(shard load) / mean(shard load)`` exceeds this.
#: Below ~1.2 the churn of migrating tiles outweighs the balance win.
REBALANCE_THRESHOLD = 1.2

#: Hard cap on tile moves per window — a runaway-loop backstop far
#: above what the strictly-decreasing greedy ever needs.
MAX_MOVES_PER_WINDOW = 256


def shard_loads(tile_map: Sequence[int], tile_loads: Mapping[int, int],
                shards: int) -> list[int]:
    """Per-shard load totals under one tile→shard map."""
    loads = [0] * shards
    for tile, load in tile_loads.items():
        loads[tile_map[tile]] += load
    return loads


def imbalance(loads: Sequence[int | float]) -> float:
    """``max / mean`` of per-shard loads; 1.0 for empty or single."""
    if not loads:
        return 1.0
    total = sum(loads)
    if total <= 0:
        return 1.0
    return max(loads) * len(loads) / total


def rebalance_map(tile_map: Sequence[int], tile_loads: Mapping[int, int],
                  shards: int, *,
                  threshold: float = REBALANCE_THRESHOLD,
                  max_moves: int = MAX_MOVES_PER_WINDOW,
                  ) -> tuple[tuple[int, ...], int]:
    """Greedily reassign tiles until the imbalance is under threshold.

    Returns ``(new_map, moves)``; ``moves == 0`` means the map is
    unchanged (already balanced, or no whole-tile move can help — a
    single tile hotter than the rest of the world cannot be split).
    Pure function of its arguments with deterministic tie-breaks, so
    every scheduler derives the same map.
    """
    if threshold < 1.0:
        raise ValueError(f"threshold must be >= 1.0, got {threshold!r}")
    new_map = list(tile_map)
    loads = shard_loads(new_map, tile_loads, shards)
    total = sum(loads)
    if shards < 2 or total <= 0:
        return tuple(new_map), 0
    mean = total / shards
    moves = 0
    while moves < max_moves:
        donor = max(range(shards), key=lambda shard: (loads[shard], -shard))
        if loads[donor] <= mean * threshold:
            break
        recipient = min(range(shards),
                        key=lambda shard: (loads[shard], shard))
        gap = loads[donor] - loads[recipient]
        if gap <= 0:
            break
        # The heaviest tile that still fits in half the gap: moving
        # weight w changes the spread by 2w, so w <= gap/2 strictly
        # narrows it and never overshoots the recipient past the donor.
        best_tile = -1
        best_load = 0
        for tile, load in sorted(tile_loads.items()):
            if (new_map[tile] == donor and 0 < load <= gap / 2
                    and load > best_load):
                best_load = load
                best_tile = tile
        if best_tile < 0:
            break
        new_map[best_tile] = recipient
        loads[donor] -= best_load
        loads[recipient] += best_load
        moves += 1
    if moves == 0:
        return tuple(tile_map), 0
    return tuple(new_map), moves
