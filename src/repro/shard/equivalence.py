"""Sharded-equivalence checking: digests, diffs and CI artifacts.

The sharded engine's headline claim — any shard count produces the
identical per-device interaction log and device-event count — is
enforced in two places: the lockstep oracle tests
(``tests/test_shard_engine.py``) and CI's blocking
``sharded-equivalence`` job, which runs ``scripts/shardcheck.py`` on
the bench scenarios and calls :func:`compare_results`.  On divergence,
:func:`write_divergence_artifacts` dumps both runs' logs plus a
per-device diff summary so the failing pair can be inspected from the
uploaded CI artifact without re-running anything.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.shard.engine import LogEntry
from repro.shard.runner import ShardedResult


def _canonical_log(entries: list[LogEntry]) -> str:
    """Stable text form of one device's log.

    Times use ``repr`` so two floats digest equal only when they are
    bit-identical — FP drift between runs is exactly what the gate
    must catch, not paper over with rounding.
    """
    return "\n".join(f"{time!r}|{','.join(neighbors)}"
                     for time, neighbors in entries)


def interaction_digests(logs: dict[str, list[LogEntry]]) -> dict[str, str]:
    """Per-device SHA-256 digest of the canonical interaction log."""
    return {device_id: hashlib.sha256(
                _canonical_log(entries).encode()).hexdigest()
            for device_id, entries in logs.items()}


def compare_results(a: ShardedResult, b: ShardedResult,
                    *, label_a: str = "a", label_b: str = "b") -> list[str]:
    """Divergence messages between two runs of the same workload.

    Empty means equivalent: same device population, same total device
    events, and — when both runs collected logs — an identical
    interaction log for every device.
    """
    problems: list[str] = []
    if a.device_count != b.device_count:
        problems.append(f"device_count: {label_a}={a.device_count} "
                        f"{label_b}={b.device_count}")
    if a.events != b.events:
        problems.append(f"events: {label_a}={a.events} {label_b}={b.events}")
    if a.logs is None or b.logs is None:
        if (a.logs is None) != (b.logs is None):
            problems.append("one run collected logs, the other did not")
        return problems
    only_a = sorted(set(a.logs) - set(b.logs))
    only_b = sorted(set(b.logs) - set(a.logs))
    if only_a:
        problems.append(f"devices logged only in {label_a}: {only_a[:5]}"
                        f"{'...' if len(only_a) > 5 else ''}")
    if only_b:
        problems.append(f"devices logged only in {label_b}: {only_b[:5]}"
                        f"{'...' if len(only_b) > 5 else ''}")
    for device_id in sorted(set(a.logs) & set(b.logs)):
        entries_a = a.logs[device_id]
        entries_b = b.logs[device_id]
        if entries_a == entries_b:
            continue
        detail = f"{len(entries_a)} vs {len(entries_b)} entries"
        for index, (ea, eb) in enumerate(zip(entries_a, entries_b,
                                             strict=False)):
            if ea != eb:
                detail = (f"first divergence at entry {index}: "
                          f"{label_a}={ea!r} {label_b}={eb!r}")
                break
        problems.append(f"{device_id}: interaction log differs ({detail})")
    return problems


def _result_payload(result: ShardedResult) -> dict:
    payload = {
        "shards": result.shards,
        "device_count": result.device_count,
        "sim_seconds": result.sim_seconds,
        "events": result.events,
        "migrations": result.migrations,
        "windows": result.windows,
        "ghost_peak": result.ghost_peak,
        "per_shard_events": {str(shard): events for shard, events
                             in sorted(result.per_shard_events.items())},
    }
    if result.logs is not None:
        payload["digests"] = interaction_digests(result.logs)
        payload["logs"] = {
            device_id: [[repr(time), list(neighbors)]
                        for time, neighbors in entries]
            for device_id, entries in sorted(result.logs.items())}
    return payload


def write_divergence_artifacts(directory: Path, scenario: str,
                               a: ShardedResult, b: ShardedResult,
                               problems: list[str], *,
                               label_a: str = "a",
                               label_b: str = "b") -> list[Path]:
    """Dump both runs and the diff summary for CI upload.

    Returns the written paths.  Mirrors the conformance job's
    divergence-transcript pattern: artifacts appear only on failure
    and are self-contained JSON.
    """
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for label, result in ((label_a, a), (label_b, b)):
        path = directory / f"{scenario}_{label}.json"
        path.write_text(json.dumps(_result_payload(result), indent=2,
                                   sort_keys=True) + "\n", encoding="utf-8")
        written.append(path)
    summary = directory / f"{scenario}_diff.txt"
    summary.write_text("\n".join(problems) + "\n", encoding="utf-8")
    written.append(summary)
    return written
