"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs (which build an editable wheel) fail with
``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to
the classic ``setup.py develop`` path, and plain ``pip install -e .``
is configured to take that route via ``--no-build-isolation`` in the
documented install command (see README).
"""

from setuptools import setup

setup()
