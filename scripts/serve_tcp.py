#!/usr/bin/env python
"""Run the PeerHood Community server on real TCP sockets.

The same request/response core the simulation uses
(:class:`repro.community.server.CommunityService`) pumped by the
asyncio backend (:class:`repro.net.tcp.TcpServer`)::

    python scripts/serve_tcp.py serve                    # default demo store
    python scripts/serve_tcp.py serve --port 7710
    python scripts/serve_tcp.py probe --port 7710        # from another shell

``serve`` hosts the conformance demo profile ("bob", sharing two
files); ``probe`` dials the server and performs a discovery handshake,
printing each reply.  Wall-clock timestamps are injected *here* — the
transport and protocol layers never read a clock, so the simulated
path stays deterministic.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.community import protocol  # noqa: E402
from repro.community.exchanges import build_server_store  # noqa: E402
from repro.community.server import CommunityService  # noqa: E402
from repro.net.tcp import TcpServer, dial  # noqa: E402

DEFAULT_PORT = 7710


async def serve(host: str, port: int) -> None:
    started = time.time()
    service = CommunityService(build_server_store(), device_id=f"{host}:{port}",
                               clock=lambda: time.time() - started)
    server = TcpServer(service.handle_request, host=host, port=port)
    await server.start()
    print(f"PeerHoodCommunity serving member "
          f"{service.store.active.member_id!r} on {host}:{server.port} "
          f"(Ctrl-C to stop)")
    try:
        while True:
            await asyncio.sleep(60.0)
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
        print(f"served {service.requests_served} requests "
              f"({service.bad_requests} bad, "
              f"{server.frame_errors} frame errors)")


async def probe(host: str, port: int) -> None:
    connection = await dial(host, port)
    try:
        for request in (
                protocol.make_request(protocol.PS_GETONLINEMEMBERLIST),
                protocol.make_request(protocol.PS_GETINTERESTLIST),
        ):
            await connection.send(request)
            reply = await connection.recv()
            print(f"{request['op']} -> {json.dumps(reply, sort_keys=True)}")
    finally:
        await connection.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in ("serve", "probe"):
        sub = subparsers.add_parser(name)
        sub.add_argument("--host", default="127.0.0.1")
        sub.add_argument("--port", type=int, default=DEFAULT_PORT)
    args = parser.parse_args(argv)
    runner = serve if args.command == "serve" else probe
    try:
        asyncio.run(runner(args.host, args.port))
    except KeyboardInterrupt:
        print()
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
