#!/usr/bin/env python
"""Simulation-safety static analyzer CLI.

Runs the :mod:`repro.analysis` rule set (SIM/PROTO file rules plus the
interprocedural DET/SHARD rules) over the source tree and reports
violations::

    python scripts/check.py                     # whole tree, human report
    python scripts/check.py --json              # JSON report on stdout
    python scripts/check.py --output report.json  # human + JSON artifact
    python scripts/check.py --sarif report.sarif  # SARIF 2.1.0 artifact
    python scripts/check.py --partial src/repro/net/stack.py  # changed files
    python scripts/check.py --list-rules

Exit status: 0 clean, 1 findings or suppression budget exceeded,
2 usage error.  ``# repro: allow[RULE] -- reason`` comments suppress a
rule for one file (or, placed inside a function body, for that
function only); every allowance is counted against
``--max-suppressions`` (default pinned below) so suppressions are
visible, budgeted debt.

Passing an explicit file list is a *partial* run: the call-graph and
cross-file rules see only those modules, so a clean partial run is not
the authoritative verdict — CI's full-tree run is.  ``--partial``
acknowledges that explicitly (pre-commit uses it); without the flag a
file-list run still works but prints the same warning.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import all_rules, analyze_paths, analyze_tree  # noqa: E402
from repro.analysis.sarif import to_sarif  # noqa: E402

#: The committed suppression budget.  The tree currently needs zero
#: allowances; raising this number is a reviewed change, exactly like
#: editing a test expectation.
MAX_SUPPRESSIONS = 0

#: What the full-tree run covers by default.
DEFAULT_TARGET = REPO_ROOT / "src" / "repro"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check.py",
        description="simulation-safety static analysis (SIM/PROTO rules)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files to analyze (default: all of src/repro; "
                             "cross-file rules need the full-tree run)")
    parser.add_argument("--json", action="store_true",
                        help="emit the JSON report on stdout instead of the "
                             "human one")
    parser.add_argument("--output", type=Path, default=None, metavar="FILE",
                        help="also write the JSON report to FILE (CI "
                             "artifact)")
    parser.add_argument("--sarif", type=Path, default=None, metavar="FILE",
                        help="also write a SARIF 2.1.0 report to FILE "
                             "(code-scanning upload)")
    parser.add_argument("--partial", action="store_true",
                        help="acknowledge a changed-file run: project "
                             "rules see only the listed files and the "
                             "verdict is not authoritative")
    parser.add_argument("--max-suppressions", type=int,
                        default=MAX_SUPPRESSIONS, metavar="N",
                        help="fail when more than N # repro: allow[...] "
                             "comments are in force (default %(default)s)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rule set and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}: {rule.summary}")
        return 0

    if args.paths:
        files = []
        for path in args.paths:
            if path.is_dir():
                files.extend(sorted(p for p in path.rglob("*.py")
                                    if "__pycache__" not in p.parts))
            elif path.suffix == ".py":
                files.append(path)
        report = analyze_paths(files, root=REPO_ROOT)
    else:
        if args.partial:
            parser.error("--partial needs an explicit file list; the "
                         "default full-tree run is never partial")
        report = analyze_tree(DEFAULT_TARGET)
        report.root = str(DEFAULT_TARGET)

    over_budget = len(report.suppressions) > args.max_suppressions

    if args.output is not None:
        args.output.write_text(json.dumps(report.to_json(), indent=2) + "\n",
                               encoding="utf-8")
    if args.sarif is not None:
        args.sarif.write_text(json.dumps(to_sarif(report), indent=2) + "\n",
                              encoding="utf-8")
    if report.partial:
        print("warning: partial run over an explicit file list; "
              "call-graph and cross-file rules are not authoritative — "
              "rely on the full-tree run for the final verdict",
              file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_human())
        if over_budget:
            print(f"suppression budget exceeded: {len(report.suppressions)} "
                  f"in force, {args.max_suppressions} allowed")

    return 0 if report.ok and not over_budget else 1


if __name__ == "__main__":
    sys.exit(main())
