#!/usr/bin/env python3
"""Sharded-equivalence gate — compare ``--shards N`` against ``--shards 1``.

For each scenario this runs the sharded engine twice with interaction
logs enabled: once on a single in-process shard and once on N worker
processes.  The two runs must agree on the device-event count and on
every device's full interaction log (times compared bit-exactly).  Any
divergence prints the problems, writes per-run JSON dumps plus a diff
summary under ``--artifacts`` for CI upload, and exits 1.

Run:
    PYTHONPATH=src python scripts/shardcheck.py                  # n64 + n256
    PYTHONPATH=src python scripts/shardcheck.py --shards 7 \\
        --scenario discovery_n1024 --artifacts /tmp/sharddiff
    PYTHONPATH=src python scripts/shardcheck.py --partition tile \\
        --rebalance --scenario crowd_clustered_n256      # tile + rebalancer

Both runs of a pair use the same partition geometry and rebalance
setting (at one shard they are no-ops), so the gate certifies the tile
partition and the dynamic rebalancer against the identical oracle the
strip partition answers to.

This is the script behind CI's blocking ``sharded-equivalence`` job.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.bench import SHARDED_SCENARIOS  # noqa: E402
from repro.shard import (ShardedResult, ShardedRunner,  # noqa: E402
                         compare_results, write_divergence_artifacts)

#: Default scenarios: big enough for real border traffic, small enough
#: to keep the full interaction logs cheap to collect and compare.
DEFAULT_SCENARIOS = ("discovery_n64", "discovery_n256")


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Check sharded runs against the single-shard run.")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        metavar="NAME", choices=sorted(SHARDED_SCENARIOS),
                        help="scenario to check (repeatable; default "
                             f"{', '.join(DEFAULT_SCENARIOS)})")
    parser.add_argument("--shards", type=int, default=4, metavar="N",
                        help="shard count to compare against 1 (default 4)")
    parser.add_argument("--partition", choices=("strip", "tile"),
                        default="strip",
                        help="region geometry both runs use "
                             "(default strip)")
    parser.add_argument("--rebalance", action="store_true",
                        help="enable dynamic tile rebalancing in both "
                             "runs (needs --partition tile)")
    parser.add_argument("--artifacts", type=Path,
                        default=REPO_ROOT / "shard-divergence",
                        help="directory for divergence dumps "
                             "(default: shard-divergence/)")
    args = parser.parse_args(argv)
    if args.shards < 2:
        parser.error(f"--shards must be >= 2 to compare, got {args.shards}")
    if args.rebalance and args.partition != "tile":
        parser.error("--rebalance needs --partition tile")
    return args


def _timed_run(name: str, *, shards: int, processes: bool, partition: str,
               rebalance: bool) -> tuple[ShardedResult, float]:
    runner = ShardedRunner(SHARDED_SCENARIOS[name], shards,
                           processes=processes, collect_logs=True,
                           partition=partition, rebalance=rebalance)
    start = time.perf_counter()
    result = runner.run()
    return result, time.perf_counter() - start


def check_scenario(name: str, shards: int, artifacts: Path, *,
                   partition: str = "strip",
                   rebalance: bool = False) -> bool:
    """Run the pair, compare, dump artifacts on divergence."""
    single, wall_single = _timed_run(name, shards=1, processes=False,
                                     partition=partition,
                                     rebalance=rebalance)
    sharded, wall_sharded = _timed_run(name, shards=shards, processes=True,
                                       partition=partition,
                                       rebalance=rebalance)
    label_a, label_b = "shards1", f"shards{shards}"
    problems = compare_results(single, sharded,
                               label_a=label_a, label_b=label_b)
    print(f"  {name:20s} events {single.events:>9d} vs {sharded.events:>9d}  "
          f"migrations {sharded.migrations:>5d}  "
          f"ghost_peak {sharded.ghost_peak:>4d}  "
          f"rebalances {sharded.rebalances:>3d}  "
          f"imb {sharded.imbalance_factor:5.2f}  "
          f"wall {wall_single:6.2f}s vs {wall_sharded:6.2f}s", flush=True)
    if not problems:
        return True
    print(f"DIVERGENCE in {name} (1 vs {shards} shards):", file=sys.stderr)
    for problem in problems:
        print(f"  - {problem}", file=sys.stderr)
    written = write_divergence_artifacts(artifacts, name, single, sharded,
                                         problems,
                                         label_a=label_a, label_b=label_b)
    for path in written:
        print(f"  wrote {path}", file=sys.stderr)
    return False


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    names = args.scenarios or list(DEFAULT_SCENARIOS)
    detail = args.partition + (" + rebalance" if args.rebalance else "")
    print(f"checking {len(names)} scenario(s), 1 vs {args.shards} shards "
          f"({detail})...")
    ok = True
    for name in names:
        ok = check_scenario(name, args.shards, args.artifacts,
                            partition=args.partition,
                            rebalance=args.rebalance) and ok
    if ok:
        print(f"sharded-equivalence OK ({len(names)} scenario(s), "
              f"--shards {args.shards} == --shards 1)")
        return 0
    print("sharded-equivalence FAILED; artifacts in "
          f"{args.artifacts}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
