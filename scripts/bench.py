#!/usr/bin/env python3
"""Wall-clock benchmark runner — emits ``BENCH_v2.json``.

Times the named scenarios in :mod:`repro.eval.bench` (testbed boot,
discovery rounds at N = 4 through 1024 devices, the Table 8 workflow,
a ``PS_*`` round-trip burst, a file transfer and the seed-101 chaos
replay) and writes a schema-versioned report.

Run:
    PYTHONPATH=src python scripts/bench.py               # full, 3 repeats
    PYTHONPATH=src python scripts/bench.py --quick       # CI mode, 1 repeat
    PYTHONPATH=src python scripts/bench.py --jobs 4      # scenarios in parallel
    PYTHONPATH=src python scripts/bench.py --shards 4    # sharded world engine
    PYTHONPATH=src python scripts/bench.py --shards 4 \\
        --scenario discovery_n100k                       # 100k-device crowd
    PYTHONPATH=src python scripts/bench.py --shards 4 \\
        --partition tile --rebalance \\
        --scenario crowd_clustered_n100k                 # tile + rebalancer
    PYTHONPATH=src python scripts/bench.py --profile     # + cProfile pstats
    PYTHONPATH=src python scripts/bench.py --quick \\
        --check benchmarks/baseline.json                 # regression gate

``--jobs N`` fans scenarios across worker processes; the simulations
are seed-deterministic, so events/sim-time fields match the serial run
exactly, but wall-clock fields contend for the host — keep regression
timing (``--check``) on serial runs.

Exit status: 0 on success, 1 when ``--check`` finds a regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.bench import (SCENARIOS, SHARDED_SCENARIOS,  # noqa: E402
                              ScenarioResult, compare_reports, run_bench)


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Time the wall-clock benchmark scenarios.")
    parser.add_argument("--quick", action="store_true",
                        help="one repeat and reduced workloads (CI mode)")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and dump pstats next to "
                             "the JSON output")
    parser.add_argument("--alloc", action="store_true",
                        help="attach a gc/tracemalloc allocation profile "
                             "to each record (one extra instrumented pass "
                             "per scenario; timed repeats are unaffected)")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        metavar="NAME",
                        choices=sorted(set(SCENARIOS) | set(SHARDED_SCENARIOS)),
                        help="run only this scenario (repeatable); "
                             "discovery_n100k and city_n1M need --shards")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override repeat count (default: 1 quick, 3 full)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for scenario fan-out "
                             "(default 1 = serial; wall timings contend)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run shardable scenarios on N region shards "
                             "(worker processes when N > 1); mutually "
                             "exclusive with --jobs")
    parser.add_argument("--partition", choices=("strip", "tile"),
                        default="strip",
                        help="region geometry for --shards runs: vertical "
                             "strips or a load-balanceable 2D tile grid "
                             "(default strip)")
    parser.add_argument("--rebalance", action="store_true",
                        help="let the coordinator reassign tiles between "
                             "shards at window edges (needs "
                             "--partition tile)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_v2.json",
                        help="report path (default: BENCH_v2.json)")
    parser.add_argument("--check", type=Path, metavar="BASELINE",
                        help="compare against a baseline JSON and exit 1 "
                             "on any >tolerance wall-clock regression")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative slowdown for --check "
                             "(default 0.30)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.shards is not None and args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if args.shards is not None and args.jobs > 1:
        parser.error("--shards and --jobs both multiply processes; "
                     "use one or the other")
    if args.shards is None and (args.partition != "strip" or args.rebalance):
        parser.error("--partition/--rebalance only apply to sharded runs; "
                     "pass --shards N")
    if args.rebalance and args.partition != "tile":
        parser.error("--rebalance needs --partition tile")
    return args


def _print_result(name: str, result: ScenarioResult) -> None:
    print(f"  {name:20s} {result.wall_seconds:8.3f}s wall  "
          f"{result.events_processed:8d} events  "
          f"{result.events_per_sec:10.0f} ev/s  "
          f"{result.rss_mb:7.1f} MiB peak", flush=True)


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    mode = "quick" if args.quick else "full"
    print(f"running {mode} bench "
          f"({len(args.scenarios or SCENARIOS)} scenarios)...")

    profiler = None
    if args.profile:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    report = run_bench(quick=args.quick, scenarios=args.scenarios,
                       repeats=args.repeats, jobs=args.jobs,
                       shards=args.shards, partition=args.partition,
                       rebalance=args.rebalance, alloc=args.alloc,
                       progress=_print_result)
    if profiler is not None:
        profiler.disable()
        pstats_path = args.output.with_suffix(".pstats")
        profiler.dump_stats(str(pstats_path))
        print(f"profile written to {pstats_path}")

    args.output.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n", encoding="utf-8")
    print(f"report written to {args.output}")

    if args.check is not None:
        baseline = json.loads(args.check.read_text(encoding="utf-8"))
        problems = compare_reports(report, baseline,
                                   tolerance=args.tolerance)
        if problems:
            print(f"PERF REGRESSION vs {args.check}:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
