#!/usr/bin/env python3
"""Regenerate the paper's figure artefacts into docs/figures/.

Writes one text file per reproducible figure:

* ``fig11.txt`` .. ``fig17.txt`` — the operation MSCs, re-recorded
  from live runs (compare against the thesis' Figures 11-17);
* ``fig06_algorithm.txt`` — the dynamic group discovery run log
  (device found -> services -> probe -> groups);
* ``table8.txt`` — the measured Table 8 next to the paper's.

Run:
    python scripts/render_figures.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.eval.mscfigures import FIGURE_TITLES, render_figure
from repro.eval.table8 import format_table8, run_table8
from repro.eval.testbed import Testbed
from repro.eval.tracelog import TraceLog


def render_fig6_log() -> str:
    """A narrated single run of the Figure 6 algorithm."""
    bed = Testbed(seed=6, technologies=("bluetooth",))
    log = TraceLog()
    observer = bed.add_member("alice", ["football", "music"])
    bed.add_member("bob", ["football"])
    bed.add_member("carol", ["music", "movies"])
    log.attach_testbed(bed)
    bed.run(40.0)
    lines = ["Figure 6: dynamic group discovery, one live run",
             "=" * 48]
    for entry in log.for_device("alice"):
        lines.append(f"t={entry.time:7.2f}s  {entry.kind:17s} "
                     f"{entry.detail}")
    lines.append("")
    lines.append(f"resulting groups on alice's device: "
                 f"{ {name: observer.app.group_members(name) for name in observer.app.groups()} }")
    bed.stop()
    return "\n".join(lines)


def main() -> int:
    target = Path(sys.argv[1] if len(sys.argv) > 1 else "docs/figures")
    target.mkdir(parents=True, exist_ok=True)
    for figure in sorted(FIGURE_TITLES):
        path = target / f"fig{figure}.txt"
        path.write_text(render_figure(figure, seed=3) + "\n",
                        encoding="utf-8")
        print(f"wrote {path}")
    fig6 = target / "fig06_algorithm.txt"
    fig6.write_text(render_fig6_log() + "\n", encoding="utf-8")
    print(f"wrote {fig6}")
    table8 = target / "table8.txt"
    table8.write_text(format_table8(run_table8(seed=0, trials=3)) + "\n",
                      encoding="utf-8")
    print(f"wrote {table8}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
