#!/usr/bin/env python3
"""Parameter-sweep runner — density and fragmentation curves as JSON.

Each sweep point is an independent seed-deterministic simulation, so
points fan out across worker processes with ``--jobs N`` and merge in
input order.  The output holds only simulation-derived fields (virtual
times, bytes, group counts — no wall clocks), so a parallel run's JSON
is byte-identical to a serial one.

Run:
    PYTHONPATH=src python scripts/sweep.py density                # 2..12, BT
    PYTHONPATH=src python scripts/sweep.py density \\
        --counts 4,8,16,32,64 --wlan --jobs 4                     # crowd scale
    PYTHONPATH=src python scripts/sweep.py fragmentation --jobs 2
    PYTHONPATH=src python scripts/sweep.py hotspot \\
        --hot-fractions 0.0,0.3,0.6,0.9 --shards 4                # imbalance
    PYTHONPATH=src python scripts/sweep.py all --output sweeps.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.sweeps import (density_sweep, fragmentation_sweep,  # noqa: E402
                               hotspot_sweep)

#: Radius for --wlan density clusters: any two points of the disc stay
#: within WLAN range (diameter 56 m < 60 m) while most pairs sit far
#: outside one 10 m Bluetooth huddle.
WLAN_CLUSTER_RADIUS_M = 28.0


def _ints(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part)


def _floats(text: str) -> tuple[float, ...]:
    return tuple(float(part) for part in text.split(",") if part)


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Run neighbourhood parameter sweeps.")
    parser.add_argument("sweep",
                        choices=("density", "fragmentation", "hotspot",
                                 "all"),
                        help="which sweep(s) to run")
    parser.add_argument("--counts", type=_ints, default=(2, 4, 8, 12),
                        metavar="N,N,...",
                        help="density sweep crowd sizes (default 2,4,8,12)")
    parser.add_argument("--pool-sizes", type=_ints, default=(2, 4, 8, 12),
                        metavar="N,N,...",
                        help="fragmentation vocabulary sizes "
                             "(default 2,4,8,12)")
    parser.add_argument("--members", type=int, default=10,
                        help="fragmentation crowd size (default 10)")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default 0)")
    parser.add_argument("--hot-fractions", type=_floats,
                        default=(0.0, 0.3, 0.6, 0.9), metavar="F,F,...",
                        help="hotspot sweep crowd concentrations "
                             "(default 0.0,0.3,0.6,0.9)")
    parser.add_argument("--hotspot-count", type=int, default=256,
                        help="hotspot sweep crowd size (default 256)")
    parser.add_argument("--shards", type=int, default=4,
                        help="hotspot sweep shard count (default 4)")
    parser.add_argument("--wlan", action="store_true",
                        help="density: WLAN-sized cluster (radius "
                             f"{WLAN_CLUSTER_RADIUS_M:g} m, bluetooth+wlan) "
                             "— required past ~16 members")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for point fan-out "
                             "(default 1 = serial)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report here (default: stdout)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if any(not 0.0 <= fraction <= 1.0 for fraction in args.hot_fractions):
        parser.error("--hot-fractions values must be in [0, 1]")
    return args


def run_sweeps(args: argparse.Namespace) -> dict:
    report: dict = {"seed": args.seed}
    if args.sweep in ("density", "all"):
        if args.wlan:
            technologies: tuple[str, ...] = ("bluetooth", "wlan")
            radius = WLAN_CLUSTER_RADIUS_M
        else:
            technologies = ("bluetooth",)
            radius = 8.0
        points = density_sweep(args.counts, args.seed,
                               technologies=technologies, radius=radius,
                               jobs=args.jobs)
        report["density"] = {
            "counts": list(args.counts),
            "technologies": list(technologies),
            "radius_m": radius,
            "points": [dataclasses.asdict(point) for point in points],
        }
    if args.sweep in ("fragmentation", "all"):
        points = fragmentation_sweep(args.pool_sizes, args.members,
                                     args.seed, jobs=args.jobs)
        report["fragmentation"] = {
            "pool_sizes": list(args.pool_sizes),
            "members": args.members,
            "points": [dataclasses.asdict(point) for point in points],
        }
    if args.sweep in ("hotspot", "all"):
        # The hotspot sweep uses its own seed default (13 — the bench
        # scenarios' "main street" draw) unless one was given.
        points = hotspot_sweep(args.hot_fractions, args.hotspot_count,
                               shards=args.shards,
                               seed=args.seed if args.seed else 13,
                               jobs=args.jobs)
        report["hotspot"] = {
            "hot_fractions": list(args.hot_fractions),
            "count": args.hotspot_count,
            "shards": args.shards,
            "points": [dataclasses.asdict(point) for point in points],
        }
    return report


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    report = run_sweeps(args)
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output is None:
        sys.stdout.write(text)
    else:
        args.output.write_text(text, encoding="utf-8")
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
