"""Figures 11-17: the seven client-server operation MSCs.

For each figure the bench re-runs the operation on the live stack,
checks the recorded message sequence equals the paper's chart, renders
the ASCII MSC, and times the run.
"""

from __future__ import annotations

import pytest

from repro.eval.mscfigures import FIGURE_TITLES, record_figure, render_figure

#: figure -> (labels exchanged with the desired server, in order).
EXPECTED_DESIRED_SEQUENCES = {
    11: ["PS_GETONLINEMEMBERLIST", "OK"],
    12: ["PS_GETINTERESTLIST", "OK"],
    13: ["PS_GETPROFILE", "OK"],
    14: ["PS_ADDPROFILECOMMENT", "SUCCESSFULLY_WRITTEN"],
    15: ["PS_GETTRUSTEDFRIEND", "OK"],
    16: ["PS_CHECKTRUSTED", "OK", "PS_GETSHAREDCONTENT", "OK"],
    17: ["PS_MSG", "SUCCESSFULLY_WRITTEN"],
}

#: Figures whose non-desired server answers NO_MEMBERS_YET in the paper.
BROADCAST_FIGURES = {13, 14, 15, 16}


@pytest.mark.parametrize("figure", sorted(FIGURE_TITLES))
def test_msc_figure_sequence_and_rendering(bench, figure):
    recorder, _result = bench(record_figure, figure, 3)

    desired = [event.label for event in
               recorder.messages_between("client:alice", "server:bob")]
    assert desired == EXPECTED_DESIRED_SEQUENCES[figure]

    if figure in BROADCAST_FIGURES:
        other = [event.label for event in
                 recorder.messages_between("client:alice", "server:carol")]
        assert other[-1] == "NO_MEMBERS_YET"

    art = render_figure(figure, seed=3)
    print()
    print(art)
    assert FIGURE_TITLES[figure].split(":")[0] in art
