"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables or figures (see
DESIGN.md §4).  Benches print the regenerated artefact (visible with
``pytest -s``) and assert the *shape* facts the paper's narrative
depends on, since absolute numbers depend on the simulated substrate.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Mark everything in this directory ``bench``.

    The suite is excluded from tier-1 (``testpaths`` points at
    ``tests/``) and runs in CI's nightly non-blocking job via
    ``-m bench``.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture
def bench(benchmark):
    """pytest-benchmark wrapper with settings suited to simulation runs.

    Simulation benches are deterministic and comparatively slow, so a
    few rounds of one iteration each beat pytest-benchmark's default
    auto-calibration.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=3, iterations=1, warmup_rounds=0)

    return run
