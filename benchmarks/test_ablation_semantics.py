"""Ablation: semantic interest matching (the thesis' future work, §6).

Without semantics, "biking" and "cycling" split into two groups
(§5.2.6's reported weakness).  With teaching enabled, the split groups
merge.  The bench quantifies the before/after and times the teach +
re-match pass.
"""

from __future__ import annotations

from repro.eval.ablations import run_semantics_ablation


def test_ablation_semantics_merges_split_groups(bench):
    result = bench(run_semantics_ablation, 21)
    print("Semantics ablation (regenerated §5.2.6 scenario):")
    print(f"  groups before teaching: {sorted(result.groups_before)}")
    print(f"  biking members before:  {sorted(result.biking_members_before)}")
    print(f"  merged members after:   {sorted(result.merged_members_after)}")
    # Before: ben (cycling) is not in ann's biking group.
    assert "ben" not in result.biking_members_before
    assert set(result.biking_members_before) == {"ann", "cat"}
    # After teaching: one merged group holds all three riders.
    assert set(result.merged_members_after) == {"ann", "ben", "cat"}
    # The shared 'music' group was never affected.
    assert "music" in result.groups_before
    assert "music" in result.groups_after
