"""Table 8 — the headline experiment.

Measures all five columns (Facebook/Hi5 x N810/N95, PeerHood
Community) on the paper's four tasks, prints the regenerated table
beside the paper's values, and asserts the result *shape*:

* PeerHood Community beats every SNS column on total time, by roughly
  the paper's 2-4x factor;
* join time is structurally zero for PeerHood (dynamic discovery);
* within each site, the N95 is slower than the N810;
* each measured cell is within 35% of the paper's value.
"""

from __future__ import annotations

import pytest

from repro.eval.table8 import (
    PAPER_TABLE8,
    format_table8,
    run_peerhood_column,
    run_sns_column,
    run_table8,
)
from repro.sns.devices import NOKIA_N810, NOKIA_N95
from repro.sns.sites import FACEBOOK_2008, HI5_2008


@pytest.fixture(scope="module")
def measured():
    return run_table8(seed=0, trials=3)


def test_table8_full_reproduction(bench, measured):
    from repro.eval.validation import format_validation, validate_table8

    print()
    print(format_table8(measured))
    report = validate_table8(measured)
    print()
    print(format_validation(report))
    assert report.shape_holds, report.shape_violations
    assert report.mean_abs_relative < 0.20

    paper = PAPER_TABLE8
    phc = measured["PeerHood Community"]

    # Structural facts of the paper's analysis (§5.2.6).
    assert phc.join_s == 0.0
    for column, times in measured.items():
        if column == "PeerHood Community":
            continue
        assert phc.total_s < times.total_s, column
    # "far more time efficient": 94/45 to 181/45 is 2.1-4.0x.
    ratios = [measured[c].total_s / phc.total_s
              for c in measured if c != "PeerHood Community"]
    assert min(ratios) > 1.8
    assert max(ratios) < 6.0
    # Device ordering within each site.
    assert (measured["Facebook / Nokia N810"].total_s
            < measured["Facebook / Nokia N95"].total_s)
    assert (measured["HI5 / Nokia N810"].total_s
            < measured["HI5 / Nokia N95"].total_s)
    # Cell-level accuracy: each non-zero cell within 35% of the paper.
    for column, times in measured.items():
        expected = paper[column]
        for got, want in ((times.search_s, expected.search_s),
                          (times.join_s, expected.join_s),
                          (times.member_list_s, expected.member_list_s),
                          (times.profile_s, expected.profile_s)):
            if want == 0.0:
                assert got == 0.0
            else:
                assert abs(got - want) / want < 0.35, (column, got, want)

    # Benchmark the cheapest column end to end for the record.
    bench(run_peerhood_column, seed=1, trials=1)


def test_table8_sns_columns_benchmark(bench):
    times = bench(run_sns_column, FACEBOOK_2008, NOKIA_N810,
                  seed=2, trials=1)
    assert times.total_s > 0


def test_table8_n95_network_penalty(bench):
    """The N95's cellular path dominates its slowdown: same site, same
    human, slower network and smaller screen."""

    def both():
        n810 = run_sns_column(HI5_2008, NOKIA_N810, seed=3, trials=2)
        n95 = run_sns_column(HI5_2008, NOKIA_N95, seed=3, trials=2)
        return n810, n95

    n810, n95 = bench(both)
    assert n95.search_s > n810.search_s
    assert n95.profile_s > n810.profile_s
