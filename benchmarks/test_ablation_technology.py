"""Ablation: network technology choice (§5.1).

The thesis argues Bluetooth/WLAN should be "primely used" because the
"cost of data service is low".  The bench measures group-formation
latency and monetary cost per technology and checks that claim.
"""

from __future__ import annotations

from repro.eval.ablations import run_technology_ablation
from repro.eval.reporting import format_table


def test_ablation_technology_choice(bench):
    rows = bench(run_technology_ablation, 3)
    print(format_table(
        ["Technology", "Group formation (s)", "Bytes sent", "Cost"],
        [[row.technology, f"{row.formation_time_s:.2f}",
          row.bytes_sent, f"{row.cost:.4f}"] for row in rows],
        title="Technology ablation (regenerated from §5.1's claims)"))
    by_name = {row.technology: row for row in rows}

    # Local radios are free; GPRS is billed per byte.
    assert by_name["bluetooth"].cost == 0.0
    assert by_name["wlan"].cost == 0.0
    assert by_name["gprs"].cost > 0.0
    # WLAN's broadcast discovery beats Bluetooth's inquiry; the GPRS
    # proxy path is the slowest of the three.
    assert (by_name["wlan"].formation_time_s
            < by_name["bluetooth"].formation_time_s
            < by_name["gprs"].formation_time_s)
    # Every technology does form the group eventually.
    assert all(row.formation_time_s < 60.0 for row in rows)
