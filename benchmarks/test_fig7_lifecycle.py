"""Figure 7: working principle of the reference implementation.

Register service -> get neighbourhood info -> client connects ->
information exchange -> connection terminated.  The bench drives the
full lifecycle and checks each stage's observable effect.
"""

from __future__ import annotations

from repro.community import protocol
from repro.community.server import SERVICE_NAME
from repro.eval.testbed import Testbed


def _lifecycle():
    stages: list[str] = []
    bed = Testbed(seed=7, technologies=("bluetooth",))
    alice = bed.add_member("alice", ["football"])
    bob = bed.add_member("bob", ["football"])

    # Stage 1: the server registered its service in the PHD (Figure 8).
    assert any(s.name == SERVICE_NAME
               for s in bob.device.library.get_service_listing())
    stages.append("server registers PeerHoodCommunity")

    # Stage 2: the daemon collects neighbourhood information.
    bed.run(30.0)
    assert alice.device.library.devices_with_service(SERVICE_NAME) == ["bob"]
    stages.append("neighbourhood information collected")

    # Stage 3: remote client connects to the server.
    def connect():
        connection = yield from alice.app.pool.ensure("bob")
        return connection

    connection = bed.execute(connect())
    stages.append("client connected")

    # Stage 4: information exchange.
    def exchange():
        connection.send(protocol.make_request(
            protocol.PS_GETPROFILE, member_id="bob", requester="alice"))
        reply = yield connection.recv()
        return reply

    reply = bed.execute(exchange())
    assert protocol.response_status(reply) == protocol.STATUS_OK
    stages.append("information exchanged")

    # Stage 5: connection terminated on request.
    connection.close()
    assert connection.closed
    stages.append("connection terminated")
    bed.stop()
    return stages


def test_fig7_working_principle(bench):
    stages = bench(_lifecycle)
    print("Figure 7 (regenerated): " + " -> ".join(stages))
    assert stages == [
        "server registers PeerHoodCommunity",
        "neighbourhood information collected",
        "client connected",
        "information exchanged",
        "connection terminated",
    ]
