"""Table 6: client requests and corresponding server functions.

Benchmarks one round trip of every ``PS_*`` operation over the live
simulated stack and verifies the dispatch map covers the whole table.
"""

from __future__ import annotations

import pytest

from repro.community import protocol
from repro.eval.reporting import format_table
from repro.eval.testbed import Testbed

#: (operation, request kwargs, expected status on the desired server).
TABLE6_CASES = [
    (protocol.PS_GETONLINEMEMBERLIST, {}, protocol.STATUS_OK),
    (protocol.PS_GETINTERESTLIST, {}, protocol.STATUS_OK),
    (protocol.PS_GETINTERESTEDMEMBERLIST, {"interest": "football"},
     protocol.STATUS_OK),
    (protocol.PS_GETPROFILE, {"member_id": "bob", "requester": "alice"},
     protocol.STATUS_OK),
    (protocol.PS_ADDPROFILECOMMENT,
     {"member_id": "bob", "requester": "alice", "comment": "nice"},
     protocol.SUCCESSFULLY_WRITTEN),
    (protocol.PS_CHECKMEMBERID, {"member_id": "bob"}, protocol.STATUS_OK),
    (protocol.PS_MSG, {"receiver": "bob", "sender": "alice",
                       "subject": "s", "body": "b"},
     protocol.SUCCESSFULLY_WRITTEN),
    (protocol.PS_SHAREDCONTENT, {"requester": "alice"},
     protocol.STATUS_OK),
    (protocol.PS_GETTRUSTEDFRIEND, {"member_id": "bob"}, protocol.STATUS_OK),
    (protocol.PS_CHECKTRUSTED, {"member_id": "bob", "requester": "alice"},
     protocol.STATUS_OK),
    (protocol.PS_GETSHAREDCONTENT, {"member_id": "bob",
                                    "requester": "alice"},
     protocol.STATUS_OK),
]


@pytest.fixture(scope="module")
def settled_bed():
    bed = Testbed(seed=6, technologies=("bluetooth",))
    alice = bed.add_member("alice", ["football"])
    bob = bed.add_member("bob", ["football"])
    bob.app.accept_trusted("alice")
    bob.app.share_file("file.bin", 1024)
    bed.run(30.0)
    # Warm the connection pool so benches time the request, not setup.
    bed.execute(alice.app.view_all_members())
    yield bed, alice
    bed.stop()


def test_table6_dispatch_map_is_complete():
    print(format_table(
        ["Operation requested by the client", "Required fields"],
        [[op, ", ".join(fields) or "-"]
         for op, fields in sorted(protocol.OPERATIONS.items())],
        title="Table 6: request vocabulary (regenerated)"))
    table6_ops = {op for op, _, _ in TABLE6_CASES}
    assert table6_ops <= set(protocol.OPERATIONS)


@pytest.mark.parametrize("op,params,expected",
                         TABLE6_CASES, ids=[c[0] for c in TABLE6_CASES])
def test_table6_operation_roundtrip(settled_bed, bench, op, params, expected):
    bed, alice = settled_bed

    def roundtrip():
        def request():
            payload = yield from alice.app.client._single(
                "bob", protocol.make_request(op, **params))
            return payload

        return bed.execute(request())

    payload = bench(roundtrip)
    assert protocol.response_status(payload) == expected


def test_table6_virtual_roundtrip_under_bluetooth_budget(settled_bed):
    """One pooled request-response stays well under a second of
    virtual time on Bluetooth - the protocol is two small frames."""
    bed, alice = settled_bed
    start = bed.env.now

    def request():
        payload = yield from alice.app.client._single(
            "bob", protocol.make_request(protocol.PS_GETONLINEMEMBERLIST))
        return payload

    bed.execute(request())
    assert bed.env.now - start < 1.0
