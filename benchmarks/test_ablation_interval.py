"""Ablation: PHD scan-interval sweep.

§6 names "performance testing during the dynamic group discovery" as
future work; the nearest controllable knob in the middleware is the
daemon's discovery period.  The sweep shows formation latency for a
late-arriving peer is dominated by the interval, while shorter
intervals buy freshness with more radio scans.
"""

from __future__ import annotations

from repro.eval.ablations import run_scan_interval_sweep
from repro.eval.reporting import format_table


def test_ablation_scan_interval_sweep(bench):
    points = bench(run_scan_interval_sweep, (2.0, 5.0, 10.0, 20.0, 40.0), 3)
    print(format_table(
        ["Scan interval (s)", "Formation time (s)", "Scans"],
        [[f"{p.scan_interval_s:g}", f"{p.formation_time_s:.2f}",
          p.scans_performed] for p in points],
        title="Scan-interval ablation (dynamic group discovery)"))

    latencies = [p.formation_time_s for p in points]
    # Longer interval -> strictly later formation for a peer arriving
    # in the idle window.
    assert latencies == sorted(latencies)
    assert latencies[-1] - latencies[0] > 20.0
    # Short intervals scan more (freshness costs radio time).
    assert points[0].scans_performed >= points[-1].scans_performed
    # The formation latency is roughly interval + scan + probe: check
    # the additive structure rather than absolute values.
    deltas = [later.formation_time_s - earlier.formation_time_s
              for earlier, later in zip(points, points[1:], strict=False)]
    interval_deltas = [later.scan_interval_s - earlier.scan_interval_s
                       for earlier, later in zip(points, points[1:],
                                                 strict=False)]
    for latency_gap, interval_gap in zip(deltas, interval_deltas,
                                         strict=True):
        assert abs(latency_gap - interval_gap) < 3.0
