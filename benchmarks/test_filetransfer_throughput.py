"""File-transfer throughput per technology.

Downloads the same shared file over Bluetooth, WLAN and GPRS and
compares achieved goodput against each technology's nominal rate —
connecting the Table 1/§2.4 rate figures to an end-to-end application
behaviour (the trusted file "use" of Table 7).
"""

from __future__ import annotations

import pytest

from repro.eval.reporting import format_table
from repro.eval.testbed import Testbed

FILE_BYTES = 400_000


def _download_over(technology: str) -> tuple[float, float]:
    """Returns (simulated seconds, goodput bits/s) for one download."""
    bed = Testbed(seed=91, technologies=(technology,))
    alice = bed.add_member("alice", ["x"])
    bob = bed.add_member("bob", ["x"])
    bob.app.accept_trusted("alice")
    bob.app.share_file("payload.bin", FILE_BYTES)
    bed.run(40.0)
    start = bed.env.now
    progress = bed.execute(alice.app.download_file("bob", "payload.bin"),
                           timeout=3000.0)
    elapsed = bed.env.now - start
    bed.stop()
    assert progress.complete
    return elapsed, FILE_BYTES * 8.0 / elapsed


@pytest.mark.parametrize("technology", ["bluetooth", "wlan", "gprs"])
def test_filetransfer_throughput(bench, technology):
    elapsed, goodput = bench(_download_over, technology)
    print(f"{technology}: {FILE_BYTES} bytes in {elapsed:.1f} simulated s "
          f"-> {goodput / 1000.0:.0f} kbit/s goodput")
    assert elapsed > 0
    # Goodput can approach but never exceed the nominal link rate.
    nominal = {"bluetooth": 721_000.0, "wlan": 5_500_000.0,
               "gprs": 40_000.0}[technology]
    assert goodput < nominal
    # The chunked request/response protocol should still achieve a
    # reasonable fraction of the link on local radios.
    if technology != "gprs":
        assert goodput > nominal * 0.25


def test_filetransfer_rate_ordering():
    results = {tech: _download_over(tech)
               for tech in ("bluetooth", "wlan", "gprs")}
    print(format_table(
        ["Technology", "Transfer time (s)", "Goodput (kbit/s)"],
        [[tech, f"{elapsed:.1f}", f"{goodput / 1000.0:.0f}"]
         for tech, (elapsed, goodput) in results.items()],
        title=f"Trusted file download of {FILE_BYTES} bytes"))
    assert (results["wlan"][0] < results["bluetooth"][0]
            < results["gprs"][0])
