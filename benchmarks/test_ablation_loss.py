"""Ablation: link-layer frame loss.

The paper's analysis says the application "worked perfectly fine in
short range wireless environment, without any tolerance" (§5.2.6) —
a clean-room result.  This ablation asks what a noisy room costs: the
reliable link (L2CAP-style retransmission) keeps every operation
correct, but loss inflates operation latency.
"""

from __future__ import annotations

import dataclasses

from repro.eval.reporting import format_table
from repro.eval.testbed import Testbed
from repro.radio import standards


def _member_list_time(loss_rate: float) -> float:
    """Virtual seconds for a member-list op under the given loss."""
    original = standards.BLUETOOTH
    lossy = dataclasses.replace(original, frame_loss_rate=loss_rate)
    # The testbed's technology registry reads the module constant;
    # patch it for the run and restore afterwards.
    from repro.eval import testbed as testbed_module

    testbed_module._TECHNOLOGY_BY_NAME["bluetooth"] = lossy
    try:
        bed = Testbed(seed=93, technologies=("bluetooth",))
        alice = bed.add_member("alice", ["x"])
        bed.add_member("bob", ["x"])
        bed.add_member("carol", ["x"])
        bed.run(40.0)
        start = bed.env.now
        members = bed.execute(alice.app.view_all_members(), timeout=600.0)
        elapsed = bed.env.now - start
        bed.stop()
        assert [m["member_id"] for m in members] == ["bob", "carol"]
        return elapsed
    finally:
        testbed_module._TECHNOLOGY_BY_NAME["bluetooth"] = original


def test_ablation_frame_loss(bench):
    rates = (0.0, 0.1, 0.3, 0.5)

    def sweep():
        return {rate: _member_list_time(rate) for rate in rates}

    latencies = bench(sweep)
    print(format_table(
        ["Frame loss rate", "Member-list op (simulated s)"],
        [[f"{rate:.0%}", f"{latency:.3f}"]
         for rate, latency in latencies.items()],
        title="Loss ablation: reliable links trade loss for latency"))
    # Correctness never degrades (asserted inside); latency does.
    assert latencies[0.0] < latencies[0.5]
    ordered = [latencies[rate] for rate in rates]
    assert ordered[0] == min(ordered)
    # Even at 50% loss the operation stays interactive (< 5 s).
    assert latencies[0.5] < 5.0
