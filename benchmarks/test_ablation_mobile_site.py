"""Ablation: would the mobile site have closed the gap?

Table 8's testers drove the *full* Facebook/Hi5 sites from handsets.
The obvious objection is that m.facebook.com existed and was far
lighter.  This ablation replays the Table 8 workflow against a
mobile-site profile: page time shrinks dramatically, but the human
steps (search, scan, join flow) remain, so PeerHood Community's
structural advantage — zero search and zero join — survives the
strongest-reasonable 2008 baseline.
"""

from __future__ import annotations

from repro.eval.reporting import format_table
from repro.eval.table8 import run_peerhood_column, run_sns_column
from repro.sns.devices import NOKIA_N95
from repro.sns.sites import FACEBOOK_2008, FACEBOOK_MOBILE_2008


def test_ablation_mobile_site(bench):
    def measure():
        full = run_sns_column(FACEBOOK_2008, NOKIA_N95, seed=4, trials=3)
        mobile = run_sns_column(FACEBOOK_MOBILE_2008, NOKIA_N95, seed=4,
                                trials=3)
        phc = run_peerhood_column(seed=4, trials=3)
        return full, mobile, phc

    full, mobile, phc = bench(measure)
    print(format_table(
        ["Column", "Search", "Join", "Members", "Profile", "Total"],
        [[name, f"{t.search_s:.0f}", f"{t.join_s:.0f}",
          f"{t.member_list_s:.0f}", f"{t.profile_s:.0f}",
          f"{t.total_s:.0f}"]
         for name, t in (("Facebook full site / N95", full),
                         ("Facebook mobile site / N95", mobile),
                         ("PeerHood Community", phc))],
        title="Mobile-site ablation (seconds)"))

    # The mobile site helps a lot...
    assert mobile.total_s < full.total_s * 0.75
    # ...but cannot remove the structural costs: search still needs
    # typing + scanning, join still needs a round trip.
    assert mobile.search_s > 15.0
    assert mobile.join_s > 3.0
    # PeerHood still wins overall, and join stays zero.
    assert phc.total_s < mobile.total_s
    assert phc.join_s == 0.0
