"""Overlay group discovery: reach vs latency across hop limits.

The §6 future-work experiment: run the Figure 6 algorithm over a
multi-hop ad-hoc overlay and measure what each extra hop buys (more
members in the group) and costs (route discovery + relayed transfer
latency).  Topology: a 7-device Bluetooth chain, every member sharing
one interest, so hop limit alone controls reach.
"""

from __future__ import annotations

import pytest

from repro.adhoc import NeighborGraph, OverlayGroupDiscovery, RelayNode
from repro.eval.reporting import format_table
from repro.eval.testbed import Testbed
from repro.mobility import Point
from repro.radio.standards import BLUETOOTH

CHAIN = 7


def _chain_overlay(k: int):
    bed = Testbed(seed=65, technologies=("bluetooth",))
    members = []
    for index in range(CHAIN):
        members.append(bed.add_member(
            f"n{index}", ["football"],
            position=Point(50.0 + index * 8.0, 100.0)))
        RelayNode(bed.env, members[-1].device.stack, BLUETOOTH)
    bed.run(30.0)
    graph = NeighborGraph(bed.medium, "bluetooth")
    overlay = OverlayGroupDiscovery(bed.env, members[0].device.stack,
                                    graph, BLUETOOTH, members[0].app.store)
    start = bed.env.now
    bed.execute(overlay.discover(k=k), timeout=1200.0)
    elapsed = bed.env.now - start
    bed.stop()
    return overlay, elapsed


@pytest.mark.parametrize("k", [1, 2, 4, 6])
def test_overlay_reach_per_hop_limit(bench, k):
    overlay, elapsed = bench(_chain_overlay, k)
    print(f"k={k}: reach={overlay.reach()} members, "
          f"group size={len(overlay.members_of('football'))}, "
          f"discovery took {elapsed:.2f} simulated s")
    # On a chain, k hops reach exactly k further members.
    assert overlay.reach() == min(k, CHAIN - 1)
    assert len(overlay.members_of("football")) == min(k, CHAIN - 1) + 1


def test_overlay_reach_latency_tradeoff():
    rows = []
    results = {}
    for k in (1, 2, 4, 6):
        overlay, elapsed = _chain_overlay(k)
        results[k] = (overlay.reach(), elapsed,
                      overlay.mean_probe_latency())
        rows.append([k, overlay.reach(), f"{elapsed:.2f}",
                     f"{overlay.mean_probe_latency():.3f}"])
    print(format_table(
        ["k (hop limit)", "Members reached", "Total discovery (s)",
         "Mean probe (s)"],
        rows, title="Overlay dynamic group discovery (§6 future work)"))
    # Reach grows monotonically with k...
    reaches = [results[k][0] for k in (1, 2, 4, 6)]
    assert reaches == sorted(reaches) and reaches[0] < reaches[-1]
    # ...and so does total latency (more members + longer routes).
    totals = [results[k][1] for k in (1, 2, 4, 6)]
    assert totals == sorted(totals) and totals[0] < totals[-1]
    # Per-probe latency also grows: farther members cost more per probe.
    means = [results[k][2] for k in (1, 2, 4, 6)]
    assert means[0] < means[-1]
