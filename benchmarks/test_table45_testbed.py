"""Tables 4 and 5: the reference implementation's test specification.

Regenerates both specification tables from the catalogue and benchmarks
building the corresponding simulated room (Appendix 1) up to a formed
Football group.
"""

from __future__ import annotations

from repro.eval.paperbed import HARDWARE_SPECS, SOFTWARE_SPECS, build_paper_testbed
from repro.eval.reporting import format_table


def test_table4_software_spec(bench):
    def regenerate():
        print(format_table(
            ["Software Used", "Specification"],
            [[spec.software, spec.version] for spec in SOFTWARE_SPECS],
            title="Table 4: software specification (regenerated)"))
        return SOFTWARE_SPECS

    specs = bench(regenerate)
    assert specs[0].software == "PeerHood"
    assert "0.2" in specs[0].version


def test_table5_hardware_spec(bench):
    def regenerate():
        print(format_table(
            ["Hardware Used", "Processor", "Memory", "OS"],
            [[spec.name, spec.processor, f"{spec.memory_mb:g} MB", spec.os]
             for spec in HARDWARE_SPECS],
            title="Table 5: hardware specification (regenerated)"))
        return HARDWARE_SPECS

    specs = bench(regenerate)
    assert [spec.name for spec in specs] == [
        "Desktop PC1", "Desktop PC2", "Laptop (IBM ThinkPad T40)"]


def test_table45_room_6604_buildup(bench):
    """Benchmark standing up the paper's room to a formed group."""

    def build_and_form():
        bed, members = build_paper_testbed(seed=4)
        bed.run(60.0)
        group = members["pc1"].app.group_members("football")
        bed.stop()
        return group

    group = bench(build_and_form)
    assert group == ["pc1", "pc2", "t40"]
