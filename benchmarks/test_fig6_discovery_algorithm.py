"""Figure 6: the dynamic group discovery algorithm.

Two views of the algorithm:

* a pure-computation scaling sweep of the matching step (every own
  interest against every neighbour's interests) over N neighbours and
  M interests — the loop structure drawn in the figure;
* the end-to-end formation time on the live stack, the quantity behind
  Table 8's 11-second "group search" cell.
"""

from __future__ import annotations

from random import Random

from repro.community.discovery import DynamicGroupEngine
from repro.community.groups import GroupRegistry
from repro.community.profile import ProfileStore
from repro.community.semantics import ExactMatcher
from repro.eval.testbed import Testbed
from repro.eval.workloads import INTEREST_POOL


class _FakeEnv:
    now = 0.0


def _bare_engine(own_interests):
    store = ProfileStore()
    store.create_profile("me", "me", "pw", interests=own_interests)
    store.login("me", "pw")
    engine = DynamicGroupEngine.__new__(DynamicGroupEngine)
    engine.store = store
    engine.matcher = ExactMatcher()
    engine.env = _FakeEnv()
    engine.groups = GroupRegistry()
    return engine


def test_fig6_matching_scales_with_neighbours_and_interests(bench):
    rng = Random(6)
    own = list(INTEREST_POOL[:6])
    neighbours = [(f"peer{i:03d}", rng.sample(INTEREST_POOL,
                                              rng.randint(1, 6)))
                  for i in range(200)]

    def match_all():
        engine = _bare_engine(own)
        for member_id, interests in neighbours:
            engine._match_member(member_id, interests)
        return engine.groups

    groups = bench(match_all)
    # Every own interest that at least one neighbour shares has a group
    # containing us and that neighbour.
    for interest in own:
        sharers = [m for m, ints in neighbours if interest in ints]
        group = groups.get(interest)
        if sharers:
            assert group is not None
            assert set(sharers) <= set(group.members)
            assert "me" in group.members
        else:
            assert group is None or len(group) == 0


def test_fig6_refresh_is_idempotent(bench):
    rng = Random(7)
    engine = _bare_engine(list(INTEREST_POOL[:4]))
    engine.directory = {}
    engine.library = None
    for index in range(50):
        interests = rng.sample(INTEREST_POOL, rng.randint(1, 5))
        engine._match_member(f"peer{index}", interests)
        from repro.community.discovery import _PeerEntry
        engine.directory[f"dev{index}"] = _PeerEntry(f"peer{index}",
                                                     interests)
    before = {name: set(engine.groups.get(name).members)
              for name in engine.groups.names()}

    def refresh_twice():
        engine.refresh()
        engine.refresh()
        return {name: set(engine.groups.get(name).members)
                for name in engine.groups.names()}

    after = bench(refresh_twice)
    assert {k: v for k, v in after.items() if v} == \
        {k: v for k, v in before.items() if v}


def test_fig6_end_to_end_formation_time(bench):
    """Live-stack group formation: inquiry + service discovery +
    interest probe.  This is Table 8's 11 s, without the human."""

    def formation():
        bed = Testbed(seed=11, technologies=("bluetooth",))
        observer = bed.add_member("alice", ["football"])
        bed.add_member("bob", ["football"])
        while "football" not in observer.app.my_groups():
            if not bed.env.step():
                raise RuntimeError("no group formed")
        elapsed = bed.env.now
        bed.stop()
        return elapsed

    elapsed = bench(formation)
    print(f"Figure 6 (live): dynamic group formed after {elapsed:.1f} "
          f"virtual seconds (paper's group-search cell: 11 s)")
    assert 5.0 < elapsed < 20.0
