"""Table 7: features of the reference implementation.

Runs every feature row of the table once on a four-device
neighbourhood and benchmarks the complete feature tour.
"""

from __future__ import annotations

from repro.community import protocol
from repro.eval.testbed import Testbed


def _feature_tour() -> dict[str, bool]:
    done: dict[str, bool] = {}
    bed = Testbed(seed=77, semantic=True, technologies=("bluetooth",))
    alice = bed.add_member("alice", ["football", "music"])
    bob = bed.add_member("bob", ["football"])
    carol = bed.add_member("carol", ["music"])
    bed.add_member("dave", ["chess"])
    bed.run(40.0)

    app = alice.app
    # Profiles.
    app.profile.add_interest("hiking")
    done["Add/Edit Profile"] = app.profile.full_name == "Alice"
    done["Add/Edit Personal Interest"] = "hiking" in app.profile.interests
    members = bed.execute(app.view_all_members())
    done["View All Members"] = len(members) == 3
    profile = bed.execute(app.view_member_profile("bob"))
    done["View/Comment Other Members Profile"] = (
        profile is not None
        and bed.execute(app.comment_profile("bob", "hi")))
    bed.execute(bob.app.view_member_profile("alice"))
    done["View Own Viewers and Comments"] = (
        [v.viewer for v in app.profile.viewers] == ["bob"])
    app.store.create_profile("alice-work", "work", "pw2")
    done["Support for Multiple Profiles"] = len(app.store) == 2
    status = bed.execute(app.send_message("bob", "s", "b"))
    done["Send/Receive Messages"] = (
        status == protocol.SUCCESSFULLY_WRITTEN
        and bob.app.profile.inbox[0].sender == "alice")
    services = app.library.get_service_listing()
    done["View all Registered Services"] = any(
        s.name == "PeerHoodCommunity" for s in services)

    # Dynamic groups.
    done["Dynamic Discovery with Common Interest"] = (
        app.group_members("football") == ["alice", "bob"])
    done["View All Groups"] = set(app.groups()) >= {"football", "music"}
    done["View Members of Group"] = app.group_members("music") == [
        "alice", "carol"]
    app.join_group("chess")
    joined = "chess" in app.my_groups()
    app.leave_group("chess")
    done["Join/Leave Manually"] = joined and "chess" not in app.my_groups()

    # Trusted friends.
    bob.app.accept_trusted("alice")
    bob.app.share_file("training.mp4", 5_000_000)
    trusted = bed.execute(app.view_trusted_friends("bob"))
    bob.app.remove_trusted("alice")
    removable = bed.execute(
        app.view_shared_content("bob")) == protocol.NOT_TRUSTED_YET
    bob.app.accept_trusted("alice")
    files = bed.execute(app.view_shared_content("bob"))
    done["Add/View/Remove Trusted"] = trusted == ["alice"] and removable
    done["File Sharing"] = files == [{"name": "training.mp4",
                                      "size": 5_000_000}]
    bed.stop()
    return done


def test_table7_feature_tour(bench):
    done = bench(_feature_tour)
    print("Table 7: features of the reference implementation (exercised)")
    for feature, passed in done.items():
        print(f"  {feature:42s} {'OK' if passed else 'FAIL'}")
    assert all(done.values()), {k: v for k, v in done.items() if not v}
    assert len(done) == 14  # Table 7 has 14 feature rows
