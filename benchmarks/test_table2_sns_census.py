"""Table 2: social networking sites and their registered users.

Regenerates the census table and benchmarks the centralized database
at census-proportional scale: group search cost grows with catalogue
size, which is part of why §3.2 calls group management "the major
issue in SNS".
"""

from __future__ import annotations

from random import Random

from repro.eval.reporting import format_table
from repro.sns.census import CENSUS, seed_database_from_census
from repro.sns.database import SnsDatabase


def _regenerate_table2():
    print(format_table(
        ["SNS", "URL", "Focus", "Registered Users"],
        [[row.site, row.url, row.focus, f"{row.registered_users:,}"]
         for row in CENSUS],
        title="Table 2: SNSs and their registered users (regenerated)"))
    return CENSUS


def test_table2_census(bench):
    census = bench(_regenerate_table2)
    assert len(census) == 8
    assert census[0].site == "MySpace"
    assert census[0].registered_users == 217_000_000
    counts = [row.registered_users for row in census]
    assert counts == sorted(counts, reverse=True)


def test_table2_database_scales_with_census(bench):
    """Seed two sites at the same scale; the bigger census row yields
    the bigger population, and search still works at both sizes."""
    scale = 200_000

    def build_and_search():
        populations = {}
        for row in CENSUS[:2]:  # MySpace and Facebook
            database = SnsDatabase()
            created = seed_database_from_census(database, row, Random(1),
                                                scale=scale)
            hits = database.search_groups("football")
            populations[row.site] = (created, len(hits))
        return populations

    populations = bench(build_and_search)
    assert populations["MySpace"][0] > populations["Facebook"][0]
    assert populations["MySpace"][1] >= 1
