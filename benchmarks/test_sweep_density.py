"""Neighbourhood sweeps: density and interest fragmentation.

The quantitative follow-ups to Figure 2's concept picture: how crowd
size stretches group-formation time, and how a growing interest
vocabulary fragments one crowd into many small groups.
"""

from __future__ import annotations

from repro.eval.reporting import format_table
from repro.eval.sweeps import density_sweep, fragmentation_sweep


def test_density_sweep(bench):
    points = bench(density_sweep, (2, 4, 8), 1)
    print(format_table(
        ["Members", "Complete group at (s)", "Observer bytes"],
        [[p.members, f"{p.complete_at_s:.1f}", p.bytes_sent]
         for p in points],
        title="Density sweep: time to a complete group"))
    times = [p.complete_at_s for p in points]
    assert times == sorted(times)
    # More members -> more probes -> more traffic from the observer.
    traffic = [p.bytes_sent for p in points]
    assert traffic == sorted(traffic)
    # Even a 8-member room completes within one scan cycle or two.
    assert times[-1] < 60.0


def test_fragmentation_sweep(bench):
    points = bench(fragmentation_sweep, (2, 6, 12), 10, 1)
    print(format_table(
        ["Interest pool", "Groups seen", "Largest group", "Singletons"],
        [[p.pool_size, p.groups, p.largest_group, p.singleton_groups]
         for p in points],
        title="Fragmentation sweep: vocabulary size vs group shape"))
    # A tiny vocabulary concentrates everyone into big groups...
    assert points[0].largest_group >= points[-1].largest_group
    # ...and a big vocabulary cannot produce *more* cohesion.
    assert points[0].groups <= points[0].pool_size
    for point in points:
        assert point.largest_group >= 1
