"""Figure 5: groups form and dissolve as devices cross the proximity
boundary.

A walker crosses the observer's Bluetooth range; the bench measures
join lag (physical entry -> group membership) and leave lag (physical
exit -> eviction), the two latencies that make the "social network on
the move" of Figure 5 feel live.
"""

from __future__ import annotations

from repro.eval.testbed import Testbed
from repro.mobility import LinearCrossing, Point

_SPEED = 1.0          # m/s
_ENTRY_X, _EXIT_X = 90.0, 110.0   # 10 m Bluetooth range around x=100


def _run_crossing(seed: int):
    bed = Testbed(seed=seed, technologies=("bluetooth",), scan_interval=5.0)
    observer = bed.add_member("obs", ["football"], position=Point(100, 100))
    bed.add_member("walker", ["football"], position=Point(80, 100),
                   model=LinearCrossing(Point(80, 100), Point(125, 100),
                                        _SPEED))
    entry_t = (_ENTRY_X - 80.0) / _SPEED
    exit_t = (_EXIT_X - 80.0) / _SPEED
    joined_at = left_at = None
    while bed.env.step():
        members = observer.app.group_members("football")
        if joined_at is None and "walker" in members:
            joined_at = bed.env.now
        elif joined_at is not None and "walker" not in members:
            left_at = bed.env.now
            break
        if bed.env.now > 200.0:
            break
    bed.stop()
    assert joined_at is not None and left_at is not None
    return joined_at - entry_t, left_at - exit_t


def test_fig5_membership_tracks_proximity(bench):
    join_lag, leave_lag = bench(_run_crossing, 5)
    print(f"Figure 5 (regenerated): join lag {join_lag:.1f} s after "
          f"physical entry, leave lag {leave_lag:.1f} s after exit")
    # Discovery can only trail physical movement...
    assert join_lag > 0.0
    assert leave_lag > 0.0
    # ...but by no more than a couple of scan periods.
    assert join_lag < 25.0
    assert leave_lag < 25.0


def test_fig5_faster_scans_tighten_the_boundary():
    """Ablation on the same figure: a shorter scan interval reduces
    membership lag.  Intervals are kept below the walker's 20 s
    range-dwell; a 20 s+ period can miss the crossing entirely (both
    scans landing outside the window) — itself a finding the scan-
    interval ablation bench documents."""

    def lag_with_interval(interval: float) -> float:
        bed = Testbed(seed=9, technologies=("bluetooth",),
                      scan_interval=interval)
        observer = bed.add_member("obs", ["football"],
                                  position=Point(100, 100))
        bed.add_member("walker", ["football"], position=Point(80, 100),
                       model=LinearCrossing(Point(80, 100),
                                            Point(125, 100), _SPEED))
        joined_at = None
        while bed.env.step():
            if "walker" in observer.app.group_members("football"):
                joined_at = bed.env.now
                break
            if bed.env.now > 200.0:
                break
        bed.stop()
        assert joined_at is not None
        return joined_at - (_ENTRY_X - 80.0) / _SPEED

    assert lag_with_interval(2.0) < lag_with_interval(8.0)
