"""Figure 2: the dynamic group discovery concept.

One central user with three distinct interests, surrounded by
neighbours; three dynamic groups form around the centre, one per
interest — "three closed boundaries inside the mobile environment
represent three dynamically formed groups".
"""

from __future__ import annotations

from repro.eval.testbed import Testbed


def _figure2_neighbourhood():
    bed = Testbed(seed=2, technologies=("bluetooth",))
    center = bed.add_member("center", ["football", "music", "movies"])
    bed.add_member("f1", ["football"])
    bed.add_member("f2", ["football"])
    bed.add_member("m1", ["music"])
    bed.add_member("v1", ["movies"])
    bed.add_member("v2", ["movies"])
    bed.add_member("loner", ["knitting"])
    bed.run(60.0)
    groups = {name: center.app.group_members(name)
              for name in center.app.groups()}
    bed.stop()
    return groups


def test_fig2_three_groups_around_the_center(bench):
    groups = bench(_figure2_neighbourhood)
    print("Figure 2 (regenerated): dynamic groups around the central user")
    for name, members in sorted(groups.items()):
        print(f"  {name}: {members}")
    assert set(groups) == {"football", "music", "movies"}
    assert groups["football"] == ["center", "f1", "f2"]
    assert groups["music"] == ["center", "m1"]
    assert groups["movies"] == ["center", "v1", "v2"]
    # The centre belongs to all three; the loner to none.
    for members in groups.values():
        assert "center" in members
        assert "loner" not in members
