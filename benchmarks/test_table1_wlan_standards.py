"""Table 1: WLAN standards.

Regenerates the standards table from the code registry and benchmarks
a 1 MB transfer over each standard's parameterised technology, checking
the data-rate ordering the paper tabulates.
"""

from __future__ import annotations

from repro.eval.reporting import format_table
from repro.radio.standards import wlan_standards_table


def _regenerate_table1() -> list:
    rows = wlan_standards_table()
    print(format_table(
        ["Standard", "Data Rate", "Band", "Security"],
        [[row.standard, f"Up to {row.max_rate_mbps:g} Mbps", row.band,
          " and ".join(row.security)] for row in rows],
        title="Table 1: WLAN standards (regenerated)"))
    return rows


def test_table1_wlan_standards(bench):
    rows = bench(_regenerate_table1)

    by_name = {row.standard: row for row in rows}
    # The paper's rate facts.
    assert by_name["IEEE 802.11"].max_rate_mbps == 2.0
    assert by_name["IEEE 802.11b"].max_rate_mbps == 11.0
    assert (by_name["IEEE 802.11a"].max_rate_mbps
            == by_name["IEEE 802.11g"].max_rate_mbps == 54.0)
    # "Relatively shorter range than 802.11b" for 802.11a.
    assert (by_name["IEEE 802.11a"].technology.range_m
            < by_name["IEEE 802.11b"].technology.range_m)
    # Faster standard -> faster 1 MB transfer, matching rate order.
    transfer_times = {row.standard: row.technology.transfer_time(1_000_000)
                      for row in rows}
    assert (transfer_times["IEEE 802.11"] > transfer_times["IEEE 802.11b"]
            > transfer_times["IEEE 802.11g"])


def test_table1_transfer_benchmark(bench):
    rows = wlan_standards_table()

    def sweep():
        return [row.technology.transfer_time(1_000_000) for row in rows]

    times = bench(sweep)
    assert all(t > 0 for t in times)
