"""Table 3: functionality of PeerHood.

Exercises all seven rows of the functionality matrix end to end on a
three-device world and benchmarks the complete cycle.
"""

from __future__ import annotations

from repro.eval.testbed import Testbed
from repro.mobility import LinearCrossing, Point
from repro.peerhood.seamless import SeamlessConnectivityManager


def _exercise_all_seven() -> dict[str, bool]:
    outcome: dict[str, bool] = {}
    bed = Testbed(seed=42)  # bluetooth + wlan
    a = bed.add_device("a", position=Point(100, 100))
    b = bed.add_device("b", position=Point(103, 100))
    b.library.register_service("Echo", {"kind": "test"},
                               lambda conn: None)
    bed.run(30.0)

    # 1. Device discovery.
    outcome["Device Discovery"] = (
        [n.device_id for n in a.library.get_device_listing()] == ["b"])
    # 2. Service discovery (with attributes).
    services = a.library.get_service_listing("b")
    outcome["Service Discovery"] = (
        [s.name for s in services] == ["Echo"]
        and services[0].attribute("kind") == "test")
    # 3. Service sharing: register locally, visible in listings.
    a.library.register_service("Shared", None, lambda conn: None)
    outcome["Service Sharing"] = any(
        s.name == "Shared" for s in a.library.get_service_listing())

    # 4. Connection establishment + 5. data transmission.
    def client():
        connection = yield from a.library.connect("b", "Echo")
        transfer = connection.send({"payload": "x" * 256})
        return connection, transfer

    connection, transfer = bed.execute(client())
    outcome["Connection Establishment"] = not connection.closed
    outcome["Data Transmission"] = transfer > 0.0

    # 6. Active monitoring: a crossing device appears and disappears.
    appeared, disappeared = [], []
    a.library.monitor("walker", on_appear=appeared.append,
                      on_disappear=disappeared.append)
    # The walker must leave *both* radios' ranges (WLAN reaches 60 m),
    # so the crossing ends 75 m away.
    bed.add_device("walker", position=Point(85, 100),
                   model=LinearCrossing(Point(85, 100), Point(175, 100), 1.5))
    bed.run(100.0)
    outcome["Active Monitoring"] = (appeared == ["walker"]
                                    and disappeared == ["walker"])

    # 7. Seamless connectivity: b walks out of BT range; the managed
    # connection migrates to WLAN.
    manager = SeamlessConnectivityManager(a.daemon)
    manager.supervise(connection)
    bed.world.node("b").model = LinearCrossing(bed.world.node("b").position,
                                               Point(135, 100), 2.0)
    bed.run(60.0)
    outcome["Seamless Connectivity"] = (connection.technology.name == "wlan"
                                        and not connection.closed)
    bed.stop()
    return outcome


def test_table3_functionality_matrix(bench):
    outcome = bench(_exercise_all_seven)
    print("Table 3: functionality of PeerHood (exercised)")
    for row, passed in outcome.items():
        print(f"  {row:28s} {'OK' if passed else 'FAIL'}")
    assert all(outcome.values()), outcome
    assert len(outcome) == 7
