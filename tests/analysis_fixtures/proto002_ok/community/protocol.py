"""Two declared operations, both fully wired."""

PS_PING = "PS_PING"
PS_LIST = "PS_LIST"

OPERATIONS = {
    PS_PING: ("sender",),
    PS_LIST: (),
}


def make_request(op, **params):
    return {"op": op, **params}
