"""Conformance scripts exercising every declared operation."""
from proto002_ok.community import protocol

EXCHANGES = [
    protocol.make_request(protocol.PS_PING, sender="alice"),
    protocol.make_request(protocol.PS_LIST),
]
