"""Client encoders for both operations."""
from proto002_ok.community import protocol


def ping():
    return protocol.make_request(protocol.PS_PING, sender="me")


def list_items():
    return protocol.make_request(protocol.PS_LIST)
