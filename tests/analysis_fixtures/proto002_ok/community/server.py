"""Dispatch table covering both declared operations."""
from proto002_ok.community import protocol


class Server:
    def _dispatch(self, op, params):
        handlers = {
            protocol.PS_PING: self._handle_ping,
            protocol.PS_LIST: self._handle_list,
        }
        return handlers[op](params)

    def _handle_ping(self, params):
        return {"status": "OK"}

    def _handle_list(self, params):
        return {"status": "OK", "items": []}
