"""The coordinator's sanctioned busy accounting: process_time only."""

import time


def busy_window():
    return time.process_time()
