"""SIM005 firing fixture: serialization and copies on the hot loop."""

import copy
import json


def fire_event(event, log):
    log.append(json.dumps({"time": event.time}))  # per-event encode
    snapshot = dict(event.state)  # per-event mapping copy
    return copy.deepcopy(snapshot)  # per-event deep copy


_SCHEMA = json.loads('{"ok": true}')  # module-level setup: allowed
