"""Ghost state mutated outside the exchange apply path."""


def _touch(state, stamp):
    state.last_seen = stamp


class ShardSim:
    def __init__(self):
        self.ghosts = {}

    def apply_exchange(self, exchange):
        for key, state in exchange.items():
            self.ghosts[key] = state

    def tick(self, key):
        ghost = self.ghosts[key]
        ghost.last_seen = 0.0  # direct write to a ghost replica
        for state in self.ghosts.values():
            state.update(owner=key)  # in-place mutator on a ghost

    def refresh(self, key, stamp):
        ghost = self.ghosts.get(key)
        _touch(ghost, stamp)  # helper mutates its parameter
