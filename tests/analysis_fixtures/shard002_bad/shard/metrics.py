"""Host clocks misused in shard code outside the coordinator."""

import time


def frame_budget(started):
    return time.time() - started  # wall clock in shard code


def busy_fraction():
    return time.process_time()  # CPU time outside shard/runner.py
