"""The harness may read wall clocks: SIM001 is scoped to sim-path
packages and this file lives under eval/."""
import time


def wall() -> float:
    return time.perf_counter()
