"""Sim-path code laundering nondeterminism through helpers.

Neither read is spelled here, so the file-local SIM001/SIM002 stay
quiet; only the interprocedural DET001 sees through the call chain.
"""

from util.clock import now_seconds
from util.ids import fresh_token


def next_deadline(env):
    return now_seconds() + 5.0


def tag_event(env):
    return fresh_token()
