"""Off-sim-path helper holding the direct wall-clock read."""

import time


def now_seconds():
    return time.time()
