"""Ambient entropy SIM002's name tables never covered (uuid4)."""

import uuid


def fresh_token():
    return uuid.uuid4().hex
