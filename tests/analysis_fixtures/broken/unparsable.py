"""Deliberately unparsable: PARSE001 must quote the offending line."""


def broken(:
    return None
