"""Sim-path code whose helpers derive everything from env state."""

from util.timebase import horizon


def next_deadline(env):
    return horizon(env.now)
