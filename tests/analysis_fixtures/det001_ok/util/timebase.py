"""Pure helper: simulated time in, simulated time out."""


def horizon(now):
    return now + 5.0
