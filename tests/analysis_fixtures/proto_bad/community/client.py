"""Encodes the valid op and one the table never declared."""
from proto_bad.community import protocol


def ping():
    return protocol.make_request(protocol.PS_PING, sender="me")


def rogue():
    return protocol.make_request("PS_ROGUE", sender="me")
