"""Handles an op the table never declared; misses PS_ORPHAN."""
from proto_bad.community import protocol


class Server:
    def _dispatch(self, op, params):
        handlers = {
            protocol.PS_PING: self._handle_ping,
            protocol.PS_UNSENT: self._handle_unsent,
            "PS_GHOST": self._handle_ghost,
        }
        return handlers[op](params)

    def _handle_ping(self, params):
        return {"status": "OK"}

    def _handle_unsent(self, params):
        return {"status": "OK"}

    def _handle_ghost(self, params):
        return {"status": "OK"}
