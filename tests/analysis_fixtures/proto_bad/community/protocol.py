"""A table with every way the triangle can break."""

PS_PING = "PS_PING"
PS_ORPHAN = "PS_ORPHAN"      # declared, never handled, never encoded
PS_UNSENT = "PS_UNSENT"      # declared + handled, never encoded

OPERATIONS = {
    PS_PING: ("sender",),
    PS_ORPHAN: (),
    PS_UNSENT: (),
}


def make_request(op, **params):
    return {"op": op, **params}
