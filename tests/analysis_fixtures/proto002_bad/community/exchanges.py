"""Conformance scripts that forgot PS_UNCOVERED."""
from proto002_bad.community import protocol

EXCHANGES = [
    protocol.make_request(protocol.PS_PING, sender="alice"),
]
