"""Two declared operations; only one is conformance-covered."""

PS_PING = "PS_PING"
PS_UNCOVERED = "PS_UNCOVERED"

OPERATIONS = {
    PS_PING: ("sender",),
    PS_UNCOVERED: (),
}


def make_request(op, **params):
    return {"op": op, **params}
