"""Dispatch covers both ops, so PROTO001 stays quiet here."""
from proto002_bad.community import protocol


class Server:
    def _dispatch(self, op, params):
        handlers = {
            protocol.PS_PING: self._handle_ping,
            protocol.PS_UNCOVERED: self._handle_uncovered,
        }
        return handlers[op](params)

    def _handle_ping(self, params):
        return {"status": "OK"}

    def _handle_uncovered(self, params):
        return {"status": "OK"}
