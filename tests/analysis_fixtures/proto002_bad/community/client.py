"""Both ops are encoded, so only conformance coverage is missing."""
from proto002_bad.community import protocol


def ping():
    return protocol.make_request(protocol.PS_PING, sender="me")


def uncovered():
    return protocol.make_request(protocol.PS_UNCOVERED)
