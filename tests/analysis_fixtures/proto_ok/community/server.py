"""Dispatch table covering every declared operation."""
from proto_ok.community import protocol
from proto_ok.community.extension import PS_ECHO


class Server:
    def _dispatch(self, op, params):
        handlers = {
            protocol.PS_PING: self._handle_ping,
            PS_ECHO: self._handle_echo,
        }
        return handlers[op](params)

    def _handle_ping(self, params):
        return {"status": "OK"}

    def _handle_echo(self, params):
        return {"status": "OK", "text": params["text"]}
