"""Minimal protocol table: one built-in op plus one extension op."""

PS_PING = "PS_PING"

OPERATIONS = {
    PS_PING: ("sender",),
}


def register_operation(op, fields):
    OPERATIONS[op] = tuple(fields)


def make_request(op, **params):
    return {"op": op, **params}
