"""Client encoder for the built-in op."""
from proto_ok.community import protocol


def ping():
    return protocol.make_request(protocol.PS_PING, sender="me")
