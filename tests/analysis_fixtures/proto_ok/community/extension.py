"""An op added via register_operation, encoded and handled."""
from proto_ok.community import protocol

PS_ECHO = "PS_ECHO"
protocol.register_operation(PS_ECHO, ("sender", "text"))


def encode_echo(text):
    return protocol.make_request(PS_ECHO, sender="me", text=text)
