"""SIM005 passing fixture: the hot loop mutates, never re-encodes."""

import json

_ENCODER = json.JSONEncoder(sort_keys=True)  # built once at import


def fire_event(event, log, scratch):
    scratch.clear()  # reuse, don't reallocate
    scratch["time"] = event.time
    log.append(_ENCODER.encode(scratch))
    empty = dict()  # bare constructor: not a copy  # noqa: C408
    return empty
