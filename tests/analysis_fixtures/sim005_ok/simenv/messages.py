"""Boundary-module fixture: same calls, not a hot-loop filename."""

import json


def serialize(payload):
    return json.dumps(payload).encode()


def snapshot(stats):
    return dict(stats)
