"""SIM002 must stay quiet: named streams and seeded Random."""
import random


def draw(env) -> float:
    return env.random.stream("mobility.pause").random()


def derived(seed: int) -> random.Random:
    return random.Random(seed)
