"""SIM002 must fire: global random module and unseeded Random."""
import random


def draw() -> float:
    rng = random.Random()
    return random.random() + rng.random()
