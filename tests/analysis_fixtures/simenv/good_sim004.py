"""SIM004 must stay quiet: sorted() pins the order; membership is fine."""


def fanout(env, peers, extras):
    for peer in sorted(set(peers) | {"gateway"}):
        env.schedule(peer)
    wanted = {"a", "b"}
    return [queue for queue in sorted(wanted.union(extras))], "a" in wanted
