"""A documented allowance: the finding moves to the suppressed list."""
import time

# repro: allow[SIM001] -- fixture: documented false-positive example


def stamp() -> float:
    return time.time()
