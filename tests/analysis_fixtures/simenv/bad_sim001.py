"""SIM001 must fire: wall-clock reads on the simulated path."""
import time
from datetime import datetime


def stamp() -> float:
    return time.perf_counter()


def label() -> str:
    return datetime.now().isoformat()
