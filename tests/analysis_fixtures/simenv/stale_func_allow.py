"""A function-scoped allowance with nothing inside its span to allow.

The file has a real SIM001 finding *outside* the waived function, so
the waiver absorbs zero findings and must surface as SUP001.
"""
import time


def quiet(env):
    # repro: allow[SIM001] -- fixture: stale, nothing blocks here
    return env.now


def stamp():
    return time.perf_counter()
