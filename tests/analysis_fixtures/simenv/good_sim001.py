"""SIM001 must stay quiet: simulated time comes from the environment."""


def stamp(env) -> float:
    return env.now
