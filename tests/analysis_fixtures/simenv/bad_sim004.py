"""SIM004 must fire: direct iteration over unordered sets."""


def fanout(env, peers, extras):
    for peer in set(peers) | {"gateway"}:
        env.schedule(peer)
    return [queue for queue in {"a", "b"}.union(extras)]
