"""An allowance with nothing to allow must surface as SUP001."""

# repro: allow[SIM003] -- fixture: stale, nothing blocks here


def quiet(env):
    yield env
