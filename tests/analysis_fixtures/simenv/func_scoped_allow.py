"""A function-scoped allowance: the waiver covers calibrate() only.

The identical read in schedule() stays a finding — the comment's span
is the enclosing function, not the file.
"""
import time


def calibrate():
    # repro: allow[SIM001] -- fixture: measures the host on purpose
    return time.perf_counter()


def schedule():
    return time.perf_counter()
