"""SIM003 must stay quiet: plain methods may do real I/O (persistence
layers run outside the event loop), and coroutines wait via timers."""
import time


def snapshot(path):
    with open(path) as handle:
        return handle.read()


def patient(env, delay_cls):
    yield delay_cls(0.5)
    return time.strftime  # referencing time is fine; sleeping is not
