"""SIM003 must fire: blocking calls inside a process coroutine."""
import socket
import time


def proc(env):
    time.sleep(0.5)
    sock = socket.create_connection(("localhost", 80))
    with open("/tmp/x") as handle:
        yield handle.read() and sock
