"""Set-iteration order escaping into exchange payloads and wire frames.

The sets never appear in the payload expressions themselves — they
arrive through helper calls the effect engine marks unordered-return.
"""


class ShardExchange:
    def __init__(self, departures, ghosts):
        self.departures = departures
        self.ghosts = ghosts


def _dirty_ids(devices):
    return {device.key for device in devices}


def _neighbor_keys(device):
    return {n.key for n in device.neighbors}


def collect(devices):
    return ShardExchange(departures=(), ghosts=list(_dirty_ids(devices)))


def advertise(transport, device):
    transport.make_request("PS_ADVERT", _neighbor_keys(device))
