"""The sanctioned fix: sorted(...) imposes a total order first."""


class ShardExchange:
    def __init__(self, departures, ghosts):
        self.departures = departures
        self.ghosts = ghosts


def _dirty_ids(devices):
    return {device.key for device in devices}


def collect(devices):
    return ShardExchange(departures=(), ghosts=sorted(_dirty_ids(devices)))


def advertise(transport, device):
    transport.make_request("PS_ADVERT", sorted(n.key for n in device.neighbors))
