"""Ghost writes routed through the exchange apply path; reads are free."""


class ShardSim:
    def __init__(self):
        self.ghosts = {}

    def apply_exchange(self, exchange):
        for key, state in exchange.items():
            ghost = self.ghosts.get(key)
            if ghost is None:
                self._install(key, state)
            else:
                ghost.last_seen = state.last_seen

    def _install(self, key, state):
        self.ghosts[key] = state

    def neighbor_count(self, key):
        ghost = self.ghosts[key]
        return len(ghost.neighbors)
