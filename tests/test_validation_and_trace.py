"""Tests for the calibration validator and the trace log."""

from __future__ import annotations

import pytest

from repro.eval.table8 import PAPER_TABLE8
from repro.eval.testbed import Testbed
from repro.eval.tracelog import TraceLog
from repro.eval.validation import format_validation, validate_table8
from repro.mobility import Point
from repro.sns.workflows import TaskTimes


class TestValidation:
    def test_perfect_match_has_zero_error(self):
        report = validate_table8(dict(PAPER_TABLE8))
        assert report.max_abs_relative == 0.0
        assert report.mean_abs_relative == 0.0
        assert report.shape_holds

    def test_relative_errors_computed(self):
        measured = dict(PAPER_TABLE8)
        measured["Facebook / Nokia N810"] = TaskTimes(58.0 * 1.2, 17.0,
                                                      8.0, 11.0)
        report = validate_table8(measured)
        assert report.max_abs_relative == pytest.approx(0.2)
        assert report.shape_holds

    def test_zero_cells_excluded_from_relative_stats(self):
        report = validate_table8(dict(PAPER_TABLE8))
        join_cells = [cell for cell in report.cells
                      if cell.task == "join_s"
                      and cell.column == "PeerHood Community"]
        assert join_cells[0].relative is None

    def test_shape_violation_nonzero_join(self):
        measured = dict(PAPER_TABLE8)
        measured["PeerHood Community"] = TaskTimes(11.0, 5.0, 15.0, 19.0)
        report = validate_table8(measured)
        assert not report.shape_holds
        assert any("join" in violation
                   for violation in report.shape_violations)

    def test_shape_violation_phc_loses(self):
        measured = dict(PAPER_TABLE8)
        measured["PeerHood Community"] = TaskTimes(200.0, 0.0, 15.0, 19.0)
        report = validate_table8(measured)
        assert any("does not beat" in violation
                   for violation in report.shape_violations)

    def test_shape_violation_device_ordering(self):
        measured = dict(PAPER_TABLE8)
        measured["Facebook / Nokia N95"] = TaskTimes(10.0, 5.0, 5.0, 5.0)
        report = validate_table8(measured)
        assert any("N95" in violation
                   for violation in report.shape_violations)

    def test_format_mentions_worst_cells(self):
        measured = dict(PAPER_TABLE8)
        measured["HI5 / Nokia N810"] = TaskTimes(50.0, 25.0, 36.0, 32.0)
        text = format_validation(validate_table8(measured))
        assert "worst" in text
        assert "member_list_s" in text
        assert "shape claims: all hold" in text


class TestTraceLog:
    def _traced_bed(self):
        bed = Testbed(seed=29, technologies=("bluetooth",))
        log = TraceLog()
        alice = bed.add_member("alice", ["football"])
        bob = bed.add_member("bob", ["football"])
        log.attach_testbed(bed)
        bed.run(40.0)
        return bed, log, alice, bob

    def test_event_counts(self):
        bed, log, _, _ = self._traced_bed()
        summary = log.summary()
        assert summary["device_found"] == 2     # each side finds the other
        assert summary["services_updated"] == 2
        assert summary["group_join"] >= 2       # alice+bob on alice's device
        bed.stop()

    def test_causal_ordering_found_before_join(self):
        bed, log, _, _ = self._traced_bed()
        alice_events = log.for_device("alice")
        kinds = [entry.kind for entry in alice_events]
        assert kinds.index("device_found") < kinds.index("group_join")
        assert (kinds.index("services_updated")
                < kinds.index("group_join"))
        bed.stop()

    def test_departure_traced_as_group_leave(self):
        bed, log, alice, bob = self._traced_bed()
        bed.world.move_node("bob", Point(200, 200))
        bed.run(40.0)
        leaves = log.of_kind("group_leave")
        assert any(entry.detail["member"] == "bob" for entry in leaves)
        losses = log.of_kind("device_lost")
        assert any(entry.detail["device"] == "bob" for entry in losses)
        bed.stop()

    def test_jsonl_round_trip(self, tmp_path):
        bed, log, _, _ = self._traced_bed()
        target = tmp_path / "trace.jsonl"
        count = log.export_jsonl(target)
        assert count == len(log.entries)
        loaded = TraceLog.load_jsonl(target)
        assert loaded.summary() == log.summary()
        assert loaded.entries[0] == log.entries[0]
        bed.stop()

    def test_timestamps_monotone(self):
        bed, log, _, _ = self._traced_bed()
        times = [entry.time for entry in log.entries]
        assert times == sorted(times)
        bed.stop()
