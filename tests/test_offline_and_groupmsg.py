"""Tests for store-and-forward messaging and group-wide messaging."""

from __future__ import annotations

import pytest

from repro.community import protocol
from repro.community.offline import OfflineOutbox
from repro.eval.testbed import Testbed
from repro.mobility import Point


class TestGroupMessaging:
    def test_message_reaches_every_group_member(self, bed, trio):
        alice, bob, carol = trio
        alice.app.join_group("movies")  # bob and carol are both in it
        outcomes = bed.execute(alice.app.send_group_message(
            "movies", "meetup", "cinema at eight?"))
        assert outcomes == {"bob": protocol.SUCCESSFULLY_WRITTEN,
                            "carol": protocol.SUCCESSFULLY_WRITTEN}
        assert bob.app.profile.inbox[0].subject == "meetup"
        assert carol.app.profile.inbox[0].subject == "meetup"

    def test_sender_not_messaged(self, bed, trio):
        alice, _, _ = trio
        outcomes = bed.execute(alice.app.send_group_message(
            "football", "hi", "anyone up?"))
        assert "alice" not in outcomes
        assert alice.app.profile.inbox == []

    def test_requires_login(self, bed, trio):
        alice, _, _ = trio
        alice.app.logout()
        with pytest.raises(PermissionError):
            bed.execute(alice.app.send_group_message("football", "s", "b"))

    def test_empty_group_means_no_sends(self, bed, trio):
        alice, _, _ = trio
        outcomes = bed.execute(alice.app.send_group_message(
            "nonexistent-group", "s", "b"))
        assert outcomes == {}


class TestOfflineOutbox:
    def _bed_with_outbox(self):
        bed = Testbed(seed=87, technologies=("bluetooth",))
        alice = bed.add_member("alice", ["football"])
        outbox = OfflineOutbox(alice.app)
        outbox.install()
        return bed, alice, outbox

    def test_live_send_bypasses_queue(self):
        bed, alice, outbox = self._bed_with_outbox()
        bob = bed.add_member("bob", ["football"])
        bed.run(30.0)
        status = bed.execute(outbox.send_or_queue("bob", "now", "hello"))
        assert status == protocol.SUCCESSFULLY_WRITTEN
        assert outbox.pending == []
        bed.stop()

    def test_message_to_absent_member_is_queued(self):
        bed, alice, outbox = self._bed_with_outbox()
        bed.run(20.0)
        status = bed.execute(outbox.send_or_queue("bob", "later", "hello"))
        assert status == "QUEUED"
        assert [m.member_id for m in outbox.pending] == ["bob"]
        assert outbox.queued_for("bob")[0].subject == "later"
        bed.stop()

    def test_queued_message_delivered_on_reappearance(self):
        bed, alice, outbox = self._bed_with_outbox()
        bed.run(20.0)
        bed.execute(outbox.send_or_queue("bob", "later", "see you"))
        assert outbox.pending
        # Bob arrives; discovery finds him; the outbox flushes.
        bob = bed.add_member("bob", ["football"], position=Point(103, 100))
        bed.run(60.0)
        assert outbox.pending == []
        assert len(outbox.receipts) == 1
        assert [(m.sender, m.subject) for m in bob.app.profile.inbox] == [
            ("alice", "later")]
        bed.stop()

    def test_flush_only_delivers_to_the_right_member(self):
        bed, alice, outbox = self._bed_with_outbox()
        bed.run(20.0)
        bed.execute(outbox.send_or_queue("bob", "for bob", "x"))
        bed.execute(outbox.send_or_queue("dave", "for dave", "y"))
        bed.add_member("bob", ["football"], position=Point(103, 100))
        bed.run(60.0)
        assert [m.member_id for m in outbox.pending] == ["dave"]
        bed.stop()

    def test_install_is_idempotent(self):
        bed, alice, outbox = self._bed_with_outbox()
        outbox.install()
        outbox.install()
        bed.run(5.0)
        bed.stop()

    def test_queue_drains_after_reconnect(self):
        """A member who departs and *returns* gets the queued backlog."""
        bed, alice, outbox = self._bed_with_outbox()
        bob = bed.add_member("bob", ["football"], position=Point(103, 100))
        bed.run(30.0)
        # Bob walks out of Bluetooth range; discovery loses him.
        bed.world.move_node("bob", Point(900, 900))
        bed.run(40.0)
        assert not bed.devices["alice"].daemon.knows("bob")
        status = bed.execute(outbox.send_or_queue("bob", "catch up", "hi"))
        assert status == "QUEUED"
        bed.execute(outbox.send_or_queue("bob", "still here", "hello again"))
        assert len(outbox.queued_for("bob")) == 2
        # Bob walks back; re-discovery + probe + flush must all run.
        bed.world.move_node("bob", Point(103, 100))
        bed.run(90.0)
        assert outbox.pending == []
        assert [receipt.status for receipt in outbox.receipts] == [
            protocol.SUCCESSFULLY_WRITTEN] * 2
        assert [(m.sender, m.subject) for m in bob.app.profile.inbox] == [
            ("alice", "catch up"), ("alice", "still here")]
        bed.stop()

    def test_degraded_send_queues_instead_of_failing(self):
        """Every-link-dead sends queue; the flush delivers later."""
        from repro.net.faults import FaultConfig
        bed, alice, outbox = self._bed_with_outbox()
        bob = bed.add_member("bob", ["football"], position=Point(103, 100))
        bed.run(30.0)
        # All sends fail while bob is still formally in the
        # neighbourhood: the degraded result must queue, not raise.
        injector = bed.enable_faults(FaultConfig(drop_rate=1.0,
                                                 connect_failure_rate=1.0))
        status = bed.execute(outbox.send_or_queue("bob", "rough air", "x"))
        assert status == "QUEUED"
        injector.enabled = False
        # Bob flaps out and back so the reappearance hook fires.
        bed.world.move_node("bob", Point(900, 900))
        bed.run(40.0)
        bed.world.move_node("bob", Point(103, 100))
        bed.run(90.0)
        assert outbox.pending == []
        assert [m.subject for m in bob.app.profile.inbox] == ["rough air"]
        bed.stop()
